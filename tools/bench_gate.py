#!/usr/bin/env python
"""Perf-trajectory regression gate over committed BENCH snapshots.

``tools/bench_report.py`` measures where evaluation time goes; this tool
turns those measurements into a *committed trajectory* and a CI gate:

* ``snapshot`` runs the benchmark suite ``--repeats`` times (min-of-N per
  module, each repeat against a fresh cold cache), measures a
  machine-speed calibration probe, and writes the next numbered snapshot
  under ``benchmarks/history/`` (results + workload fingerprints + meta).
  Committing that file is how a PR publishes its perf claim.
* ``run`` performs the same measurement and compares it against the most
  recent committed snapshot: per-module wall-time budgets **fail** the
  gate on a >20% regression and **warn** on >10%, noise-floored by the
  min-of-N repeats, an absolute-seconds slack, and the calibration-probe
  ratio (so a slower CI runner does not fail the gate by being slower at
  everything).  A module that failed, or that vanished from the current
  run, fails the gate outright -- a broken benchmark must never read as a
  fast one.  The comparison is emitted as a markdown trend table
  (``BENCH_trend.md``) for the CI artifact.
* ``check CURRENT BASELINE`` compares two already-written report/snapshot
  files without executing anything (what the unit tests and docs drive).

A bitwise-identical hot-path rewrite refreshes *two* gates in one
change: the perf snapshot here, and the lint key manifest
(``repro lint refresh-manifest``) -- the rewrite drifts the
AST-normalized hash of the simulation module set without a
``SIMULATION_KEY_VERSION`` bump, which is exactly what the ``KEY001``
lint rule exists to catch (see ``docs/lint.md``).

Run from the repo root::

    python tools/bench_gate.py snapshot --label my-change --repeats 3
    python tools/bench_gate.py run --repeats 3
    python tools/bench_gate.py check BENCH_results.json benchmarks/history/0001-*.json

Exit status: 0 on pass/warn, 1 on fail (or on a malformed snapshot).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HISTORY_DIR = REPO_ROOT / "benchmarks" / "history"
DEFAULT_TREND = REPO_ROOT / "BENCH_trend.md"

#: Gate thresholds: relative regression that warns / fails, and the
#: absolute per-module slack (seconds, at snapshot machine speed) a
#: regression must also exceed -- sub-second jitter on a 2 s module is
#: noise, not a regression.
WARN_PCT = 0.10
FAIL_PCT = 0.20
ABS_FLOOR_S = 1.0

#: Snapshot schema version (the ``meta.schema`` field).
SNAPSHOT_SCHEMA = "bench-snapshot-v1"

_REQUIRED_RESULT_KEYS = {"module", "passed", "returncode", "wall_s", "cache", "summary"}
_REQUIRED_REPORT_KEYS = {
    "total_wall_s", "modules_passed", "modules_failed", "python", "results",
}
_REQUIRED_META_KEYS = {"schema", "label", "created", "repeats", "calibration_s"}


# ---------------------------------------------------------------------------
# Schema validation


def validate_report(report: object) -> list[str]:
    """Structural errors in a BENCH_results.json payload (empty = valid)."""
    errors: list[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    missing = _REQUIRED_REPORT_KEYS - set(report)
    if missing:
        errors.append(f"report is missing keys {sorted(missing)}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        errors.append("report.results must be a non-empty list")
        return errors
    seen: set[str] = set()
    for index, record in enumerate(results):
        if not isinstance(record, dict):
            errors.append(f"results[{index}] must be an object")
            continue
        missing = _REQUIRED_RESULT_KEYS - set(record)
        if missing:
            errors.append(f"results[{index}] is missing keys {sorted(missing)}")
            continue
        module = record["module"]
        if not isinstance(module, str) or not module:
            errors.append(f"results[{index}].module must be a non-empty string")
            continue
        if module in seen:
            errors.append(f"duplicate module record {module!r}")
        seen.add(module)
        if not isinstance(record["passed"], bool):
            errors.append(f"{module}: passed must be a bool")
        wall = record["wall_s"]
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
            errors.append(f"{module}: wall_s must be a non-negative number")
    failed_list = report.get("failed")
    if failed_list is not None:
        actual = sorted(
            r["module"] for r in results
            if isinstance(r, dict) and not r.get("passed", False)
        )
        if sorted(failed_list) != actual:
            errors.append(
                f"report.failed {sorted(failed_list)} disagrees with the "
                f"per-module records {actual}"
            )
    return errors


def validate_snapshot(snapshot: object) -> list[str]:
    """Structural errors in a committed history snapshot (empty = valid)."""
    if not isinstance(snapshot, dict):
        return [f"snapshot must be an object, got {type(snapshot).__name__}"]
    errors: list[str] = []
    meta = snapshot.get("meta")
    if not isinstance(meta, dict):
        errors.append("snapshot.meta must be an object")
    else:
        missing = _REQUIRED_META_KEYS - set(meta)
        if missing:
            errors.append(f"snapshot.meta is missing keys {sorted(missing)}")
        if meta.get("schema") not in (None, SNAPSHOT_SCHEMA):
            errors.append(
                f"unknown snapshot schema {meta.get('schema')!r} "
                f"(this tool reads {SNAPSHOT_SCHEMA})"
            )
        calibration = meta.get("calibration_s")
        if calibration is not None and (
            not isinstance(calibration, (int, float)) or calibration <= 0
        ):
            errors.append("snapshot.meta.calibration_s must be a positive number")
    if "report" not in snapshot:
        errors.append("snapshot.report is missing")
    else:
        errors.extend(validate_report(snapshot["report"]))
    workloads = snapshot.get("workloads")
    if workloads is not None and not isinstance(workloads, dict):
        errors.append("snapshot.workloads must be an object when present")
    return errors


# ---------------------------------------------------------------------------
# Measurement: min-of-N merged reports + the calibration probe


def cache_hit_rate(record: dict) -> float | None:
    """The module's persistent-cache hit rate, ``None`` when unknowable.

    Prefers the precomputed ``cache_hit_rate`` field (written by
    :func:`merge_min_of_n` since the serve PR) and falls back to deriving
    it from the raw ``cache`` hits/misses dict, so snapshots committed
    before the field existed still produce a trend column.  A module that
    never touched the cache (zero lookups) reports ``None``, not 0% --
    "no cache traffic" and "all misses" are different regressions.
    """
    rate = record.get("cache_hit_rate")
    if isinstance(rate, (int, float)) and not isinstance(rate, bool):
        return float(rate)
    cache = record.get("cache")
    if not isinstance(cache, dict):
        return None
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    if not isinstance(hits, (int, float)) or not isinstance(misses, (int, float)):
        return None
    lookups = hits + misses
    if lookups <= 0:
        return None
    return float(hits) / float(lookups)


def peak_rss_mb(record: dict) -> float | None:
    """The module subprocess's peak RSS in MB, ``None`` when unrecorded.

    Optional exactly like ``cache_hit_rate``: snapshots committed before
    the observability PR have no ``max_rss_mb`` field, and they must keep
    validating -- the column is informational, never a gate input.
    """
    rss = record.get("max_rss_mb")
    if isinstance(rss, (int, float)) and not isinstance(rss, bool):
        return float(rss)
    return None


def merge_min_of_n(reports: list[dict]) -> dict:
    """Merge repeated bench reports, keeping the minimum wall per module.

    The min-of-N is the noise floor: scheduler jitter and cache-cold disk
    variance only ever make a run *slower*, so the fastest repeat is the
    best estimate of the code's true cost.  A module must pass in every
    repeat to count as passing; the failing repeat's record (and error)
    wins otherwise.
    """
    if not reports:
        raise ValueError("need at least one report to merge")
    merged: dict[str, dict] = {}
    order: list[str] = []
    for report in reports:
        for record in report["results"]:
            module = record["module"]
            if module not in merged:
                merged[module] = dict(record)
                merged[module]["wall_all"] = [record["wall_s"]]
                order.append(module)
                continue
            best = merged[module]
            best["wall_all"].append(record["wall_s"])
            if not record["passed"]:
                failed = dict(record)
                failed["wall_all"] = best["wall_all"]
                merged[module] = failed
            elif best["passed"] and record["wall_s"] < best["wall_s"]:
                wall_all = best["wall_all"]
                merged[module] = dict(record)
                merged[module]["wall_all"] = wall_all
    records = [merged[module] for module in order]
    for record in records:
        rate = cache_hit_rate(record)
        if rate is not None:
            record["cache_hit_rate"] = round(rate, 4)
    base = dict(reports[0])
    base.update(
        total_wall_s=round(sum(r["wall_s"] for r in records), 3),
        modules_passed=sum(r["passed"] for r in records),
        modules_failed=sum(not r["passed"] for r in records),
        failed=sorted(r["module"] for r in records if not r["passed"]),
        repeats=len(reports),
        results=records,
    )
    return base


def calibration_probe(repeats: int = 3) -> float:
    """Seconds for a fixed python+numpy workload on this machine.

    The probe mirrors the simulator's execution profile -- a Python loop
    dispatching small-array numpy kernels -- but is frozen here, so its
    wall time tracks machine speed, never the code under test.  Budgets
    scale by the probe ratio, letting a snapshot from one machine gate a
    run on another.
    """
    import numpy as np

    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        rng = np.random.default_rng(20220101)
        acc = 0.0
        for _ in range(40):
            block = rng.random((48, 192))
            acc += float(np.sort(block, axis=1)[:, -5:].sum())
            ranks = np.argsort(block, axis=None)
            acc += float(ranks[:64].sum())
        total = 0
        for i in range(150_000):
            total += (i * i) % 97
        acc += total
        best = min(best, time.perf_counter() - started)
    return best


def measure(repeats: int, modules: list[str], timeout: float) -> dict:
    """Run bench_report ``repeats`` times (fresh cold cache each) and merge."""
    from bench_report import main as bench_report_main  # same directory

    reports = []
    for repeat in range(repeats):
        with tempfile.TemporaryDirectory(prefix="repro-bench-gate-") as tmp:
            output = Path(tmp) / "BENCH_results.json"
            argv = ["--output", str(output), "--timeout", str(timeout)]
            for token in modules:
                argv += ["--module", token]
            print(f"== bench repeat {repeat + 1}/{repeats} ==", flush=True)
            bench_report_main(argv)
            with open(output) as handle:
                reports.append(json.load(handle))
            workloads_path = output.parent / "BENCH_workloads.json"
            workloads = None
            if workloads_path.exists():
                with open(workloads_path) as handle:
                    workloads = json.load(handle)
    merged = merge_min_of_n(reports)
    merged["_workloads"] = workloads
    return merged


# ---------------------------------------------------------------------------
# Comparison


@dataclass(frozen=True)
class ModuleTrend:
    """One row of the trend table."""

    module: str
    status: str  # ok | warn | fail | failed | missing | new
    baseline_s: float | None
    current_s: float | None
    note: str = ""
    baseline_hit_rate: float | None = None
    current_hit_rate: float | None = None
    baseline_rss_mb: float | None = None
    current_rss_mb: float | None = None

    @property
    def ratio(self) -> float | None:
        if self.baseline_s and self.current_s is not None:
            return self.current_s / self.baseline_s
        return None


@dataclass(frozen=True)
class GateResult:
    """Outcome of comparing a current report against a baseline snapshot."""

    status: str  # pass | warn | fail
    rows: tuple[ModuleTrend, ...]
    baseline_label: str
    scale: float
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.status != "fail"


def compare(
    current: dict,
    snapshot: dict,
    current_calibration_s: float | None = None,
    warn_pct: float = WARN_PCT,
    fail_pct: float = FAIL_PCT,
    abs_floor_s: float = ABS_FLOOR_S,
) -> GateResult:
    """Gate a current report against a committed baseline snapshot.

    Budgets are per module: baseline wall time scaled by the calibration
    ratio (current probe / snapshot probe).  A regression fails only when
    it exceeds the relative threshold *and* the absolute floor -- min-of-N
    noise on short modules must not flip the gate.
    """
    errors = validate_snapshot(snapshot)
    if errors:
        raise ValueError("malformed baseline snapshot: " + "; ".join(errors))
    errors = validate_report(current)
    if errors:
        raise ValueError("malformed current report: " + "; ".join(errors))

    meta = snapshot["meta"]
    baseline = {r["module"]: r for r in snapshot["report"]["results"]}
    measured = {r["module"]: r for r in current["results"]}

    scale = 1.0
    notes: list[str] = []
    if current_calibration_s and meta.get("calibration_s"):
        scale = current_calibration_s / meta["calibration_s"]
        notes.append(
            f"machine calibration: baseline probe {meta['calibration_s']:.3f}s, "
            f"current probe {current_calibration_s:.3f}s, scale x{scale:.2f}"
        )

    rows: list[ModuleTrend] = []
    worst = "pass"

    def escalate(to: str) -> None:
        nonlocal worst
        ladder = {"pass": 0, "warn": 1, "fail": 2}
        if ladder[to] > ladder[worst]:
            worst = to

    for module, base in baseline.items():
        if not base["passed"]:
            # A baseline that itself failed carries no budget; report-only.
            rows.append(ModuleTrend(module, "new", None,
                                    measured.get(module, {}).get("wall_s"),
                                    "baseline record had failed"))
            continue
        budget = base["wall_s"] * scale
        record = measured.get(module)
        if record is None:
            rows.append(ModuleTrend(module, "missing", budget, None,
                                    "module vanished from the current run"))
            escalate("fail")
            continue
        if not record["passed"]:
            why = (record.get("error") or record.get("summary") or "").strip()
            first = why.splitlines()[-1] if why else "failed"
            rows.append(ModuleTrend(module, "failed", budget, record["wall_s"], first))
            escalate("fail")
            continue
        wall = record["wall_s"]
        over = wall - budget
        if budget > 0 and over > abs_floor_s and wall > budget * (1 + fail_pct):
            rows.append(ModuleTrend(module, "fail", budget, wall,
                                    f"+{over:.2f}s over budget"))
            escalate("fail")
        elif budget > 0 and over > abs_floor_s and wall > budget * (1 + warn_pct):
            rows.append(ModuleTrend(module, "warn", budget, wall,
                                    f"+{over:.2f}s over budget"))
            escalate("warn")
        else:
            rows.append(ModuleTrend(module, "ok", budget, wall))
    for module, record in measured.items():
        if module in baseline:
            continue
        status = "failed" if not record["passed"] else "new"
        if status == "failed":
            escalate("fail")
        rows.append(ModuleTrend(module, status, None, record["wall_s"],
                                "not in baseline snapshot"))

    # Annotate every row with its cache hit rates (trend column; derived
    # from the raw hits/misses for snapshots that predate the field).
    rows = [
        replace(
            row,
            baseline_hit_rate=(
                cache_hit_rate(baseline[row.module])
                if row.module in baseline else None
            ),
            current_hit_rate=(
                cache_hit_rate(measured[row.module])
                if row.module in measured else None
            ),
            baseline_rss_mb=(
                peak_rss_mb(baseline[row.module])
                if row.module in baseline else None
            ),
            current_rss_mb=(
                peak_rss_mb(measured[row.module])
                if row.module in measured else None
            ),
        )
        for row in rows
    ]

    return GateResult(
        status=worst,
        rows=tuple(rows),
        baseline_label=str(meta.get("label", "?")),
        scale=scale,
        notes=tuple(notes),
    )


_STATUS_ICON = {
    "ok": "✅", "warn": "⚠️", "fail": "❌", "failed": "💥",
    "missing": "❌", "new": "🆕",
}


def trend_table(result: GateResult) -> str:
    """The markdown trend table CI uploads as a PR artifact."""
    lines = [
        f"## Bench gate: **{result.status.upper()}** "
        f"(baseline `{result.baseline_label}`)",
        "",
    ]
    for note in result.notes:
        lines.append(f"_{note}_")
        lines.append("")
    lines += [
        "| module | baseline budget (s) | current (s) | ratio | "
        "cache hit (base → cur) | peak RSS MB (base → cur) | status |",
        "|---|---:|---:|---:|---:|---:|---|",
    ]

    def pct(rate: float | None) -> str:
        return f"{100.0 * rate:.0f}%" if rate is not None else "–"

    def mb(rss: float | None) -> str:
        return f"{rss:.0f}" if rss is not None else "–"

    for row in sorted(result.rows, key=lambda r: r.module):
        base = f"{row.baseline_s:.2f}" if row.baseline_s is not None else "–"
        cur = f"{row.current_s:.2f}" if row.current_s is not None else "–"
        ratio = f"x{row.ratio:.2f}" if row.ratio is not None else "–"
        hit = f"{pct(row.baseline_hit_rate)} → {pct(row.current_hit_rate)}"
        rss = f"{mb(row.baseline_rss_mb)} → {mb(row.current_rss_mb)}"
        icon = _STATUS_ICON.get(row.status, "?")
        note = f" {row.note}" if row.note else ""
        lines.append(
            f"| {row.module} | {base} | {cur} | {ratio} | {hit} | {rss} "
            f"| {icon} {row.status}{note} |"
        )
    lines += [
        "",
        f"Thresholds: fail >{FAIL_PCT:.0%}, warn >{WARN_PCT:.0%}, "
        f"absolute floor {ABS_FLOOR_S:.1f}s; budgets are min-of-N walls "
        "scaled by the machine-calibration probe.  Cache hit rates are "
        "persistent-cache hits/(hits+misses) per module ('–' = no cache "
        "traffic); peak RSS is the module subprocess's high-water mark "
        "('–' = recorded before the column existed); the gate is "
        "informational on both columns.",
        "",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# History


def history_snapshots(history_dir: Path) -> list[Path]:
    """Committed snapshots, oldest first (numeric filename prefix)."""
    return sorted(history_dir.glob("[0-9][0-9][0-9][0-9]-*.json"))


def latest_snapshot(history_dir: Path) -> Path | None:
    snapshots = history_snapshots(history_dir)
    return snapshots[-1] if snapshots else None


def next_snapshot_path(history_dir: Path, label: str) -> Path:
    slug = re.sub(r"[^a-z0-9]+", "-", label.lower()).strip("-") or "snapshot"
    snapshots = history_snapshots(history_dir)
    number = 1
    if snapshots:
        number = int(snapshots[-1].name.split("-", 1)[0]) + 1
    return history_dir / f"{number:04d}-{slug}.json"


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or None
    except OSError:
        return None


def build_snapshot(report: dict, label: str, calibration_s: float) -> dict:
    workloads = report.pop("_workloads", None)
    return {
        "meta": {
            "schema": SNAPSHOT_SCHEMA,
            "label": label,
            "created": time.strftime("%Y-%m-%d"),
            "commit": _git_commit(),
            "repeats": report.get("repeats", 1),
            "calibration_s": round(calibration_s, 4),
        },
        "report": report,
        "workloads": workloads,
    }


# ---------------------------------------------------------------------------
# CLI


def _load_json(path: str | Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _as_snapshot(payload: dict) -> dict:
    """Accept either a raw report or a full snapshot as the baseline."""
    if "report" in payload and "meta" in payload:
        return payload
    return {
        "meta": {
            "schema": SNAPSHOT_SCHEMA, "label": "raw-report",
            "created": "?", "repeats": payload.get("repeats", 1),
            "calibration_s": None,
        },
        "report": payload,
        "workloads": None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--repeats", type=int, default=3,
                        help="min-of-N benchmark repeats (default 3)")
    common.add_argument("--module", action="append", default=[],
                        help="restrict to modules containing this token")
    common.add_argument("--timeout", type=float, default=1800.0,
                        help="per-module timeout in seconds")
    common.add_argument("--history", default=str(HISTORY_DIR),
                        help="snapshot directory (default benchmarks/history)")

    run = sub.add_parser("run", parents=[common],
                         help="measure and gate against the latest snapshot")
    run.add_argument("--trend", default=str(DEFAULT_TREND),
                     help="markdown trend table output path")
    run.add_argument("--report-out", default=None,
                     help="also write the merged min-of-N report JSON here")

    snap = sub.add_parser("snapshot", parents=[common],
                          help="measure and write the next history snapshot")
    snap.add_argument("--label", required=True,
                      help="snapshot label, e.g. 'pre-vectorization'")

    check = sub.add_parser("check", help="compare two existing files, no runs")
    check.add_argument("current", help="BENCH_results.json (or snapshot) path")
    check.add_argument("baseline", help="baseline snapshot path")
    check.add_argument("--calibration", type=float, default=None,
                       help="current-machine probe seconds (default: measure)")
    check.add_argument("--trend", default=str(DEFAULT_TREND))

    args = parser.parse_args(argv)
    sys.path.insert(0, str(Path(__file__).resolve().parent))

    if args.command == "check":
        current_payload = _load_json(args.current)
        current = (current_payload["report"]
                   if "report" in current_payload and "meta" in current_payload
                   else current_payload)
        snapshot = _as_snapshot(_load_json(args.baseline))
        calibration = args.calibration
        if calibration is None and snapshot["meta"].get("calibration_s"):
            calibration = calibration_probe()
        result = compare(current, snapshot, calibration)
        table = trend_table(result)
        Path(args.trend).write_text(table)
        print(table)
        return 0 if result.ok else 1

    history_dir = Path(args.history)
    report = measure(args.repeats, args.module, args.timeout)
    calibration = calibration_probe()
    print(f"calibration probe: {calibration:.3f}s")

    if args.command == "snapshot":
        history_dir.mkdir(parents=True, exist_ok=True)
        snapshot = build_snapshot(report, args.label, calibration)
        errors = validate_snapshot(snapshot)
        if errors:
            print("refusing to write malformed snapshot:", file=sys.stderr)
            for error in errors:
                print(f"  - {error}", file=sys.stderr)
            return 1
        path = next_snapshot_path(history_dir, args.label)
        with open(path, "w") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        failed = snapshot["report"]["failed"]
        print(f"wrote {path.relative_to(REPO_ROOT)} "
              f"({snapshot['report']['modules_passed']} modules, "
              f"min-of-{args.repeats}, {len(failed)} failed)")
        return 0 if not failed else 1

    # run: gate against the latest committed snapshot.
    latest = latest_snapshot(history_dir)
    if args.report_out:
        slim = {k: v for k, v in report.items() if k != "_workloads"}
        with open(args.report_out, "w") as handle:
            json.dump(slim, handle, indent=2)
    if latest is None:
        print(f"no snapshot under {history_dir}; commit one with "
              f"'python tools/bench_gate.py snapshot --label <label>'",
              file=sys.stderr)
        return 1
    snapshot = _load_json(latest)
    result = compare(report, snapshot, calibration)
    table = trend_table(result)
    Path(args.trend).write_text(table)
    print(table)
    print(f"gate vs {latest.name}: {result.status.upper()}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
