#!/usr/bin/env python
"""Documentation checker: code blocks must run, links must resolve.

Two passes over the repo's markdown:

1. **Code blocks.**  Every fenced ````` ```python ````` block in
   ``docs/*.md`` is *executed*, in file order, in one namespace per file
   (so a later block can use an earlier block's imports -- the same
   doctest-style contract a reader assumes when following a guide top to
   bottom).  Blocks in ``README.md`` are compile-checked only: the README
   quickstart showcases a full-suite evaluation that is deliberately too
   heavy for a lint gate.  A block annotated with an HTML comment
   ``<!-- docs-check: skip -->`` on the line directly above its fence is
   skipped entirely.
2. **Links.**  Every relative markdown link target (``[x](docs/foo.md)``,
   images included) must exist on disk.  External links (``http(s)://``,
   ``mailto:``) and pure in-page anchors (``#section``) are not checked.

Exit status 0 when everything passes; 1 with a per-failure report
otherwise.  Run from the repo root::

    python tools/check_docs.py

The checker adds ``src/`` to ``sys.path`` itself, so no ``PYTHONPATH``
setup is needed.
"""

from __future__ import annotations

import re
import sys
import traceback
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files whose python blocks are executed.
EXEC_GLOBS = ("docs/*.md",)

#: Files whose python blocks are only compiled (and links checked).
COMPILE_GLOBS = ("README.md",)

SKIP_MARKER = "docs-check: skip"

_FENCE_RE = re.compile(r"^```(\w*)\s*$")
# [text](target) -- but not images' alt brackets differently; images share
# the same (target) shape with a leading !, which this matches too.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@dataclass
class CodeBlock:
    path: Path
    line: int  # 1-based line of the opening fence
    language: str
    source: str
    skipped: bool


def extract_blocks(path: Path) -> list[CodeBlock]:
    blocks: list[CodeBlock] = []
    lines = path.read_text().splitlines()
    in_block = False
    language = ""
    start = 0
    buf: list[str] = []
    skip_next = False
    for i, raw in enumerate(lines, start=1):
        fence = _FENCE_RE.match(raw.strip())
        if not in_block:
            if fence:
                in_block = True
                language = fence.group(1).lower()
                start = i
                buf = []
            elif SKIP_MARKER in raw:
                skip_next = True
            else:
                # The marker only applies to the line directly above a
                # fence; any other intervening line cancels it.
                skip_next = False
            continue
        if raw.strip() == "```":
            blocks.append(
                CodeBlock(path, start, language, "\n".join(buf), skip_next)
            )
            in_block = False
            skip_next = False
        else:
            buf.append(raw)
    return blocks


def check_code(path: Path, execute: bool) -> list[str]:
    """Compile (and optionally run) a file's python blocks; return errors."""
    errors: list[str] = []
    namespace: dict = {"__name__": f"docs_check_{path.stem}"}
    for block in extract_blocks(path):
        if block.language != "python":
            continue
        where = f"{path.relative_to(REPO_ROOT)}:{block.line}"
        if block.skipped:
            print(f"  skip  {where} (marked {SKIP_MARKER!r})")
            continue
        try:
            code = compile(block.source, where, "exec")
        except SyntaxError:
            errors.append(f"{where}: syntax error\n{traceback.format_exc()}")
            continue
        if not execute:
            print(f"  ok    {where} (compile only)")
            continue
        try:
            exec(code, namespace)
        except Exception:
            errors.append(f"{where}: raised\n{traceback.format_exc()}")
        else:
            print(f"  ok    {where} (executed)")
    return errors


def check_links(path: Path) -> list[str]:
    """Every relative link target must exist on disk; return errors."""
    errors: list[str] = []
    text = path.read_text()
    # Drop fenced blocks: code samples may contain bracket/paren noise.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: broken link {target!r} "
                f"(no such file: {relative})"
            )
    return errors


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures: list[str] = []
    seen = 0
    for globs, execute in ((EXEC_GLOBS, True), (COMPILE_GLOBS, False)):
        for pattern in globs:
            for path in sorted(REPO_ROOT.glob(pattern)):
                seen += 1
                print(f"checking {path.relative_to(REPO_ROOT)}")
                failures += check_code(path, execute=execute)
                failures += check_links(path)
    if seen == 0:
        print("error: no documentation files found", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} documentation failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"- {failure}", file=sys.stderr)
        return 1
    print(f"\nall documentation checks passed ({seen} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
