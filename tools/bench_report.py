#!/usr/bin/env python
"""Machine-readable benchmark report: wall-time + cache stats per module.

Runs every ``benchmarks/test_*.py`` module in its own pytest process and
writes ``BENCH_results.json`` -- one record per module with its wall time,
pass/fail status, and the unified two-tier cache counters of its shared
session (dumped by the ``REPRO_BENCH_STATS_JSON`` hook in
``benchmarks/conftest.py``).  All modules share one persistent cache
directory (``REPRO_BENCH_CACHE_DIR``), so the per-module hit rates record
the warm-up trajectory: early modules simulate, later ones read.  A module
that raises (or whose subprocess dies) is recorded as failed -- with the
failing output preserved in its record's ``error`` field and its name in
the top-level ``failed`` list -- and the run continues, so partial
trajectories always land and a downstream gate sees exactly what broke.

Alongside the trajectory it writes ``BENCH_workloads.json``: one record
per workload the bench run can exercise -- every registry preset plus
every ``examples/workloads/*.json`` spec -- with its content fingerprint,
layer count, MACs and sparsity ratios.  Diffing two of these shows exactly
which workload definitions changed between runs (a fingerprint change
means every cached result for that workload was invalidated).

These are the perf-trajectory artifacts CI uploads on every run; diffing
two reports shows where evaluation time went.  Run from the repo root::

    python tools/bench_report.py                      # all modules
    python tools/bench_report.py --module table6 --module fig5
    python tools/bench_report.py --output /tmp/BENCH_results.json

Exit status is 0 when every selected module passed, 1 otherwise (the
reports are written either way).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS = REPO_ROOT / "benchmarks"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_results.json"
WORKLOADS_BASENAME = "BENCH_workloads.json"
EXAMPLE_SPECS = REPO_ROOT / "examples" / "workloads"


def discover(filters: list[str]) -> list[Path]:
    modules = sorted(BENCHMARKS.glob("test_*.py"))
    if filters:
        modules = [
            path
            for path in modules
            if any(token.lower() in path.stem.lower() for token in filters)
        ]
    return modules


def run_module(path: Path, cache_dir: str, timeout: float) -> dict:
    """One pytest process for one module; returns its report record."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        stats_path = handle.name
    env = dict(
        os.environ,
        REPRO_BENCH_CACHE_DIR=cache_dir,
        REPRO_BENCH_STATS_JSON=stats_path,
        PYTHONPATH=os.pathsep.join(
            [str(REPO_ROOT / "src"), os.environ.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep),
    )
    started = time.perf_counter()
    error: str | None = None
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(path), "-q", "--no-header",
             "-p", "no:cacheprovider"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        returncode = proc.returncode
        tail = "\n".join(proc.stdout.strip().splitlines()[-3:])
        if returncode != 0:
            # Record *why* in the report, not just on the console: the last
            # pytest output lines plus any stderr tail.  Without this a
            # failing module shows up as a bare FAIL row and a downstream
            # gate cannot distinguish "slow" from "broken".
            err_lines = (proc.stdout.strip().splitlines()[-15:]
                         + proc.stderr.strip().splitlines()[-5:])
            error = "\n".join(line for line in err_lines if line)
    except subprocess.TimeoutExpired:
        returncode = -1
        tail = f"timed out after {timeout:.0f}s"
        error = tail
    wall_s = time.perf_counter() - started

    cache: dict | None = None
    try:
        with open(stats_path) as handle:
            cache = json.load(handle)
    except (OSError, json.JSONDecodeError):
        pass  # module failed before the session fixture tore down
    finally:
        try:
            os.unlink(stats_path)
        except OSError:
            pass

    max_rss_mb: float | None = None
    if cache is not None and "max_rss_kb" in cache:
        # The conftest smuggles the subprocess's peak RSS through the stats
        # file; it is not a cache counter, so lift it out of the dict.
        max_rss_mb = round(cache.pop("max_rss_kb") / 1024.0, 1)

    return {
        "module": path.stem,
        "passed": returncode == 0,
        "returncode": returncode,
        "wall_s": round(wall_s, 3),
        "max_rss_mb": max_rss_mb,
        "cache": cache,
        "summary": tail,
        "error": error,
    }


def workload_records() -> list[dict]:
    """One fingerprint record per registry preset and example spec."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.workloads.registry import WORKLOADS, parse_workload

    def record(workload, source: str) -> dict:
        return {**workload.describe(), "source": source}

    records = [record(workload, "registry") for workload in WORKLOADS]
    for path in sorted(EXAMPLE_SPECS.glob("*.json")):
        rel = str(path.relative_to(REPO_ROOT))
        try:
            records.append(record(parse_workload(str(path)), rel))
        except ValueError as exc:
            print(f"warning: skipping workload spec {rel}: {exc}", file=sys.stderr)
            records.append({"name": path.stem, "source": rel, "error": str(exc)})
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="emit BENCH_results.json (wall time + cache stats "
        "per benchmark module)"
    )
    parser.add_argument(
        "--module", action="append", default=[],
        help="only modules whose name contains this token (repeatable)",
    )
    parser.add_argument(
        "--output", default=str(DEFAULT_OUTPUT),
        help=f"report path (default: {DEFAULT_OUTPUT.name} in the repo root)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared persistent-cache dir (default: a fresh temp dir, so "
        "the report records a cold-to-warm trajectory)",
    )
    parser.add_argument(
        "--timeout", type=float, default=1800.0,
        help="per-module timeout in seconds",
    )
    args = parser.parse_args(argv)

    modules = discover(args.module)
    if not modules:
        print(f"error: no benchmark module matches {args.module}", file=sys.stderr)
        return 1

    cache_ctx: tempfile.TemporaryDirectory | None = None
    if args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_ctx = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = cache_ctx.name

    records = []
    try:
        for path in modules:
            try:
                record = run_module(path, cache_dir, args.timeout)
            except Exception as exc:  # fail soft: partial trajectories land
                print(
                    f"warning: benchmark module {path.stem} raised "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
                record = {
                    "module": path.stem,
                    "passed": False,
                    "returncode": -2,
                    "wall_s": 0.0,
                    "max_rss_mb": None,
                    "cache": None,
                    "summary": f"runner error: {exc}",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            status = "ok " if record["passed"] else "FAIL"
            hits = (record["cache"] or {}).get("hits", "?")
            misses = (record["cache"] or {}).get("misses", "?")
            rss = record.get("max_rss_mb")
            print(
                f"{status} {record['module']:40s} {record['wall_s']:8.2f}s  "
                f"cache {hits}h/{misses}m"
                + (f"  rss {rss:.0f}MB" if rss is not None else "")
            )
            records.append(record)
    finally:
        if cache_ctx is not None:
            cache_ctx.cleanup()

    report = {
        "total_wall_s": round(sum(r["wall_s"] for r in records), 3),
        "modules_passed": sum(r["passed"] for r in records),
        "modules_failed": sum(not r["passed"] for r in records),
        # Failures stay first-class in the report (name + why), so a
        # downstream regression gate can fail loudly instead of letting a
        # broken module silently vanish from the comparison.
        "failed": sorted(r["module"] for r in records if not r["passed"]),
        "full_eval": os.environ.get("REPRO_FULL_EVAL", "0") == "1",
        "python": sys.version.split()[0],
        "results": records,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)

    workloads_path = Path(args.output).parent / WORKLOADS_BASENAME
    try:
        workloads = workload_records()
        with open(workloads_path, "w") as handle:
            json.dump({"workloads": workloads}, handle, indent=2)
        print(f"wrote {workloads_path}: {len(workloads)} workload fingerprints")
    except Exception as exc:  # fail soft: the trajectory report still lands
        print(
            f"warning: could not write {workloads_path}: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
        )

    print(
        f"\nwrote {args.output}: {report['modules_passed']} passed, "
        f"{report['modules_failed']} failed, "
        f"{report['total_wall_s']:.1f}s total"
    )
    return 0 if report["modules_failed"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
