"""Scenario: one edge accelerator, four kinds of models (the Griffin pitch).

An edge NPU is fixed at tape-out but must run whatever models ship later:
dense transformers with GeLU, ReLU CNNs, pruned CNNs, and fully sparse
networks (paper Sec. I).  This script deploys the same Griffin core against
all four categories and shows how it morphs -- and compares it with a plain
dual-sparse design that cannot.

Run:  python examples/hybrid_deployment.py
"""

from repro import GRIFFIN, ModelCategory, SPARSE_AB_STAR, Session, SimulationOptions
from repro.core.metrics import effective_tops_per_watt, geometric_mean
from repro.hw.cost import cost_of, gated_power_mw, griffin_category_power_mw, griffin_cost

#: One representative workload per category, as Table I maps them.
DEPLOYMENT = [
    (ModelCategory.DENSE, "BERT", "transformer with GeLU, no pruning"),
    (ModelCategory.A, "ResNet50", "ReLU CNN, no pruning"),
    (ModelCategory.B, "BERT", "movement-pruned transformer (GeLU)"),
    (ModelCategory.AB, "ResNet50", "pruned ReLU CNN"),
]


def main() -> None:
    options = SimulationOptions(passes_per_gemm=3, max_t_steps=96)
    griffin_row = griffin_cost(GRIFFIN)
    dual_row = cost_of(SPARSE_AB_STAR)
    session = Session()  # cache-backed: a re-run simulates nothing

    print(f"{'category':10s} {'workload':10s} {'Griffin mode':22s} "
          f"{'speedup':>8s} {'TOPS/W':>7s}   vs plain dual-sparse")
    gains = []
    for category, name, description in DEPLOYMENT:
        mode = GRIFFIN.config_for(category)
        res = session.simulate(name, GRIFFIN, category, options)
        dual = session.simulate(name, SPARSE_AB_STAR, category, options)
        # Power is category-dependent: idle sparse machinery clock-gates.
        eff = effective_tops_per_watt(
            res.speedup, griffin_category_power_mw(GRIFFIN, griffin_row, category)
        )
        dual_eff = effective_tops_per_watt(
            dual.speedup, gated_power_mw(dual_row, SPARSE_AB_STAR, category)
        )
        gain = eff / dual_eff
        gains.append(gain)
        print(f"{category.value:10s} {name:10s} {mode.label:22s} "
              f"{res.speedup:7.2f}x {eff:7.1f}   {gain:5.2f}x  ({description})")

    print(f"\nGeomean efficiency gain of morphing over plain dual sparse: "
          f"{geometric_mean(gains):.2f}x")
    print("The gain concentrates exactly where the paper says it should: "
          "single-sparse models, where the dual design downgrades but "
          "Griffin re-purposes its ABUF/adder trees (Table III).")


if __name__ == "__main__":
    main()
