"""Quickstart: one session, one sparse design, one pruned network.

Opens a :class:`repro.Session` -- the unified evaluation entry point,
backed by the persistent layer-result cache -- runs pruned ResNet-50 on
the paper's starred weight-sparse design ``Sparse.B*(4,0,1,on)``, and
reports speedup, hardware overhead, and effective efficiency against the
dense baseline.

Run:  python examples/quickstart.py    (near-instant on a warm cache)
"""

from repro import ModelCategory, Session, SimulationOptions, overhead_of, parse_design
from repro.core.metrics import effective_tops_per_watt


def main() -> None:
    options = SimulationOptions(passes_per_gemm=4, max_t_steps=96)
    star = parse_design("Sparse.B*")
    baseline = parse_design("Dense")

    with Session() as session:
        # 1. How fast? Cycle-simulate the pruned model (DNN.B category).
        result = session.simulate("ResNet50", star, ModelCategory.B, options)
        print(f"{result.network} on {star.label}:")
        print(f"  dense latency : {result.dense_cycles:,} cycles")
        print(f"  sparse latency: {result.cycles:,.0f} cycles")
        print(f"  speedup       : {result.speedup:.2f}x")

        # 2. At what hardware cost? (Table II overheads + Table VII-style cost.)
        config = star.config_for(ModelCategory.B)
        ovh = overhead_of(config)
        cost = star.cost()
        base = baseline.cost()
        print(f"  ABUF depth {ovh.abuf_depth}, AMUX fan-in {ovh.amux_fanin}, "
              f"adder trees {ovh.adder_trees}, metadata {ovh.metadata_bits}b")
        print(f"  power {cost.total_power_mw:.0f} mW (dense {base.total_power_mw:.0f} mW), "
              f"area {cost.total_area_kum2:.0f} kum2 (dense {base.total_area_kum2:.0f})")

        # 3. Was it worth it? Effective TOPS/W (Definition V.1).
        eff = effective_tops_per_watt(result.speedup, cost.total_power_mw)
        eff_base = effective_tops_per_watt(1.0, base.total_power_mw)
        print(f"  effective {eff:.1f} TOPS/W vs dense {eff_base:.1f} TOPS/W "
              f"({eff / eff_base:.2f}x)")

        stats = session.stats
        print(f"  persistent cache: {stats.hits} hits, {stats.misses} misses "
              f"[{session.cache_dir}]")


if __name__ == "__main__":
    main()
