"""Quickstart: evaluate one sparse design on one pruned network.

Builds the paper's starred weight-sparse design ``Sparse.B*(4,0,1,on)``,
runs pruned ResNet-50 through the cycle simulator, and reports speedup,
hardware overhead, and effective efficiency against the dense baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    ModelCategory,
    SPARSE_B_STAR,
    SimulationOptions,
    benchmark,
    dense,
    overhead_of,
    simulate_network,
)
from repro.core.metrics import effective_tops_per_watt
from repro.hw.cost import cost_of


def main() -> None:
    net = benchmark("ResNet50").network
    options = SimulationOptions(passes_per_gemm=4, max_t_steps=96)

    # 1. How fast? Cycle-simulate the pruned model (DNN.B category).
    result = simulate_network(net, SPARSE_B_STAR, ModelCategory.B, options)
    print(f"{net.name} on {SPARSE_B_STAR.label}:")
    print(f"  dense latency : {result.dense_cycles:,} cycles")
    print(f"  sparse latency: {result.cycles:,.0f} cycles")
    print(f"  speedup       : {result.speedup:.2f}x")

    # 2. At what hardware cost? (Table II overheads + Table VII-style cost.)
    ovh = overhead_of(SPARSE_B_STAR)
    cost = cost_of(SPARSE_B_STAR)
    base = cost_of(dense())
    print(f"  ABUF depth {ovh.abuf_depth}, AMUX fan-in {ovh.amux_fanin}, "
          f"adder trees {ovh.adder_trees}, metadata {ovh.metadata_bits}b")
    print(f"  power {cost.total_power_mw:.0f} mW (dense {base.total_power_mw:.0f} mW), "
          f"area {cost.total_area_kum2:.0f} kum2 (dense {base.total_area_kum2:.0f})")

    # 3. Was it worth it? Effective TOPS/W (Definition V.1).
    eff = effective_tops_per_watt(result.speedup, cost.total_power_mw)
    eff_base = effective_tops_per_watt(1.0, base.total_power_mw)
    print(f"  effective {eff:.1f} TOPS/W vs dense {eff_base:.1f} TOPS/W "
          f"({eff / eff_base:.2f}x)")


if __name__ == "__main__":
    main()
