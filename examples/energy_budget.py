"""Scenario: fit a pruned-CNN workload into an edge energy budget.

A camera product runs pruned ReLU ResNet-50 continuously and has a 2 mJ
per-frame energy budget.  This script walks the candidate designs from
cheapest to most capable, reports latency / energy / EDP per inference
(using the clock-gated per-category power), and picks the cheapest design
that meets the budget -- the deployment-side mirror of the paper's
efficiency story.

Run:  python examples/energy_budget.py
"""

from repro.config import GRIFFIN, ModelCategory, SPARSE_AB_STAR, SPARSE_B_STAR, dense
from repro.hw.cost import griffin_category_power_mw, griffin_cost
from repro.hw.energy import EnergyReport, inference_energy
from repro.sim.engine import SimulationOptions, simulate_network
from repro.workloads.registry import benchmark

BUDGET_MJ = 2.0


def main() -> None:
    net = benchmark("ResNet50").network
    options = SimulationOptions(passes_per_gemm=3, max_t_steps=96)
    category = ModelCategory.AB  # pruned + ReLU

    candidates = []
    for config in (dense(), SPARSE_B_STAR, SPARSE_AB_STAR):
        run = simulate_network(net, config, category, options)
        candidates.append(inference_energy(run, config))
    morph = GRIFFIN.config_for(category)
    run = simulate_network(net, morph, category, options)
    candidates.append(
        EnergyReport(
            label="Griffin",
            network=net.name,
            cycles=run.cycles,
            power_mw=griffin_category_power_mw(GRIFFIN, griffin_cost(GRIFFIN), category),
        )
    )

    print(f"pruned ReLU {net.name}, budget {BUDGET_MJ} mJ/frame\n")
    print(f"{'design':12s} {'latency':>10s} {'energy':>10s} {'EDP':>12s}  verdict")
    chosen = None
    for report in candidates:
        fits = report.energy_mj <= BUDGET_MJ
        if fits and chosen is None:
            chosen = report
        print(f"{report.label:12s} {report.latency_ms:8.2f}ms "
              f"{report.energy_mj:8.3f}mJ {report.edp:10.4f}mJ*ms  "
              f"{'fits' if fits else 'over budget'}")

    if chosen is None:
        print("\nno design meets the budget; relax it or batch frames")
    else:
        print(f"\ncheapest fit: {chosen.label} "
              f"({chosen.energy_mj:.3f} mJ per frame)")


if __name__ == "__main__":
    main()
