"""Scenario: dissect borrowing on a single tile (the Figure 2/3 mechanics).

Builds one weight tile with a deliberately hot lane and a dead output
column, then shows -- op by op -- how each borrowing dimension changes the
schedule: time lookahead (db1), lane lookaside (db2), cross-PE routing
(db3), and the rotation shuffler.  Useful for building intuition before
reading the DSE results.

Run:  python examples/tile_anatomy.py
"""

import numpy as np

from repro.config import sparse_b
from repro.sim.compaction import compact_schedule
from repro.sim.shuffle import rotation_shuffle


def build_tile(t_steps: int = 32, lanes: int = 8, cols: int = 4) -> np.ndarray:
    """A tile with structure the borrowing dimensions can exploit."""
    rng = np.random.default_rng(7)
    probs = np.full((t_steps, lanes, cols), 0.2)
    probs[:, 2, :] = 0.85   # lane 2: an unpruned input channel
    probs[:, :, 1] = 0.05   # column 1: an almost fully pruned filter
    return rng.random((t_steps, lanes, cols)) < probs


def report(name: str, mask: np.ndarray, d1: int, d2: int, d3: int) -> int:
    res = compact_schedule(mask, d1, d2, d3)
    t = mask.shape[0]
    print(f"  {name:24s} cycles {res.cycles:3d}  speedup {t / res.cycles:4.2f}x"
          f"  borrowed ops {res.borrowed_ops:3d}  occupancy {res.occupancy:4.1f}")
    return res.cycles


def main() -> None:
    mask = build_tile()
    t, lanes, cols = mask.shape
    nnz = int(mask.sum())
    print(f"tile: {t} time steps x {lanes} lanes x {cols} PE columns, "
          f"{nnz}/{mask.size} effectual ops "
          f"(ideal speedup {mask.size / nnz:.1f}x)\n")

    print("dense core (no borrowing):")
    report("dense", mask, 0, 0, 0)

    print("\nadding each dimension (Definitions III.1/III.2):")
    report("B(4,0,0)  time only", mask, 4, 0, 0)
    report("B(4,1,0)  + lane", mask, 4, 1, 0)
    report("B(4,0,1)  + neighbour PE", mask, 4, 0, 1)
    report("B(4,1,1)  + both", mask, 4, 1, 1)

    print("\nrotation shuffle vs the hot lane (Sec. III load balancing):")
    shuffled = rotation_shuffle(mask)
    report("B(4,0,0) shuffle off", mask, 4, 0, 0)
    report("B(4,0,0) shuffle on", shuffled, 4, 0, 0)

    print("\nGriffin's conf.B window on the same tile:")
    report("B(8,0,1) shuffle on", shuffled, 8, 0, 1)

    cfg = sparse_b(8, 0, 1, shuffle=True)
    print(f"\n(Config notation: {cfg.notation}; the deep window is exactly "
          "the 9-entry ABUF the dual-sparse mode already pays for.)")


if __name__ == "__main__":
    main()
