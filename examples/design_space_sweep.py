"""Scenario: pick a weight-sparse design for a pruned-CNN product line.

Walks the Fig. 5 methodology end to end: sweep the constrained Sparse.B
space through a cache-backed :class:`repro.Session` (set ``REPRO_WORKERS``
to fan out over processes), extract the Pareto front of (DNN.B efficiency,
DNN.dense efficiency), and select the starred design with the paper's
compromise rule.

Run:  python examples/design_space_sweep.py          (quick suite, ~2 min)
      REPRO_WORKERS=4 python examples/design_space_sweep.py
      REPRO_FULL_EVAL=1 python examples/design_space_sweep.py
"""

import os

from repro import Session
from repro.config import ModelCategory
from repro.dse.evaluate import EvalSettings
from repro.dse.explorer import sparse_b_space
from repro.dse.pareto import pareto_front
from repro.dse.report import format_table, select_optimal
from repro.sim.engine import SimulationOptions


def main() -> None:
    full = os.environ.get("REPRO_FULL_EVAL", "0") == "1"
    settings = EvalSettings(
        quick=not full,
        options=SimulationOptions(passes_per_gemm=3, max_t_steps=64),
    )
    space = sparse_b_space(db1_values=(2, 4, 6), max_db2=1, max_db3=2)
    categories = (ModelCategory.B, ModelCategory.DENSE)

    session = Session(workers=int(os.environ.get("REPRO_WORKERS", "0")))
    print(f"sweeping {len(space)} Sparse.B configurations "
          f"({'full' if full else 'quick'} suite)...")
    evals = list(session.evaluate(space, categories, settings).evaluations)

    front = pareto_front(
        evals,
        objectives=[
            lambda e: e.point(ModelCategory.B).tops_per_watt,
            lambda e: e.point(ModelCategory.DENSE).tops_per_watt,
        ],
    )
    rows = [
        {
            "Config": e.label,
            "B speedup": e.speedup(ModelCategory.B),
            "TOPS/W (B)": e.point(ModelCategory.B).tops_per_watt,
            "TOPS/W (dense)": e.point(ModelCategory.DENSE).tops_per_watt,
        }
        for e in sorted(front, key=lambda e: -e.point(ModelCategory.B).tops_per_watt)
    ]
    print(format_table(rows, title="\nPareto front (power efficiency, B vs dense)"))

    best = select_optimal(evals, ModelCategory.B)
    print(f"\nselected design: {best.label} "
          f"(paper's Table VI pick: B(4,0,1,on))")
    stats = session.stats
    print(f"persistent cache: {stats.hits} hits, {stats.misses} misses "
          f"[{session.cache_dir}]")


if __name__ == "__main__":
    main()
