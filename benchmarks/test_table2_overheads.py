"""Table II: hardware overheads of the Sparse.A / Sparse.B families."""

from repro.config import parse_notation
from repro.core.overhead import overhead_of
from repro.dse.report import format_table
from conftest import show

#: (notation, expected (ABUF, AMUX, BBUF, BMUX, ADT)) -- the Table II rows
#: instantiated at representative distances.
TABLE_II_ROWS = [
    ("A(3,0,0)", (4, 4, 4, 4, 1)),
    ("A(1,2,0)", (2, 4, 2, 4, 1)),
    ("A(1,0,2)", (2, 4, 2, 2, 3)),
    ("A(2,1,1)", (3, 9, 3, 5, 2)),
    ("B(3,0,0)", (4, 4, 0, 0, 1)),
    ("B(1,2,0)", (2, 4, 0, 0, 1)),
    ("B(1,0,2)", (2, 2, 0, 0, 3)),
    ("B(4,0,1)", (5, 5, 0, 0, 2)),
]


def test_table2_overheads(benchmark):
    def build():
        rows = []
        for notation, _ in TABLE_II_ROWS:
            ovh = overhead_of(parse_notation(notation))
            rows.append(
                {
                    "Architecture": notation,
                    "ABUF(depth)": ovh.abuf_depth,
                    "AMUX(fan-in)": ovh.amux_fanin,
                    "BBUF(depth)": ovh.bbuf_depth,
                    "BMUX(fan-in)": ovh.bmux_fanin,
                    "ADT(number)": ovh.adder_trees,
                }
            )
        return rows

    rows = benchmark(build)
    for row, (notation, expected) in zip(rows, TABLE_II_ROWS):
        measured = (
            row["ABUF(depth)"], row["AMUX(fan-in)"], row["BBUF(depth)"],
            row["BMUX(fan-in)"], row["ADT(number)"],
        )
        assert measured == expected, notation
    show(format_table(rows, title="Table II -- single-sparse hardware overheads"))
