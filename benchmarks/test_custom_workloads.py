"""Custom workloads: the example WorkloadSpec JSON files through the session.

The first-class Workload API's end-to-end proof at benchmark scale: every
spec under ``examples/workloads/`` builds, fingerprints stably, and
evaluates through the same shared :class:`repro.api.Session` (and
persistent cache) as the Table IV figures -- sparse designs must beat the
dense baseline on the sparse categories exactly as they do on the presets.
"""

from pathlib import Path

from repro.config import ModelCategory
from repro.dse.report import format_table
from repro.workloads.registry import parse_workload
from conftest import show

EXAMPLE_SPECS = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "workloads").glob("*.json")
)

DESIGNS = ("Baseline", "Sparse.B*", "Griffin")


def test_custom_workload_suite(benchmark, session, settings):
    assert EXAMPLE_SPECS, "no example WorkloadSpec files found"
    workloads = [parse_workload(str(path)) for path in EXAMPLE_SPECS]
    for workload, path in zip(workloads, EXAMPLE_SPECS):
        # The fingerprint is a pure function of the spec file.
        assert parse_workload(str(path)).fingerprint == workload.fingerprint

    def build():
        rows = []
        for workload in workloads:
            outcome = session.evaluate(
                DESIGNS, (ModelCategory.DENSE, ModelCategory.B),
                settings, networks=(workload,),
            )
            for evaluation in outcome.evaluations:
                rows.append(
                    {
                        "Workload": workload.name,
                        "Config": evaluation.label,
                        "dense speedup": evaluation.speedup(ModelCategory.DENSE),
                        "B speedup": evaluation.speedup(ModelCategory.B),
                        "B TOPS/W": evaluation.point(ModelCategory.B).tops_per_watt,
                    }
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    by_workload: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_workload.setdefault(row["Workload"], {})[row["Config"]] = row
    for name, configs in by_workload.items():
        assert configs["Baseline"]["B speedup"] == 1.0
        # Weight borrowing must exploit the custom pruning schedules.
        assert configs["Sparse.B*"]["B speedup"] > 1.05, name
        assert configs["Griffin"]["B speedup"] > 1.05, name
    show(format_table(rows, title="Custom workloads (examples/workloads/*.json)"))
