"""Shared fixtures for the table/figure reproduction benchmarks.

Every module regenerates one table or figure of the paper and prints a
paper-vs-measured comparison (run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables).  By default the expensive sweeps
use the quick evaluation settings (three-benchmark suite, light tile
sampling); set ``REPRO_FULL_EVAL=1`` for the full six-network Table IV
suite.

All modules evaluate through one shared :class:`repro.api.Session` -- the
same unified path the CLI drives -- backed by a run-scoped two-tier
persistent cache, so a layer or network simulated for one figure is read
from disk by every later figure that needs it.  The cache directory is a
pytest temp dir: benchmark runs never touch (or depend on) the user's
``~/.cache/repro``.

Two environment hooks exist for ``tools/bench_report.py`` (the perf
trajectory recorder): ``REPRO_BENCH_CACHE_DIR`` pins the session's cache
directory (so per-module pytest invocations share one warm cache), and
``REPRO_BENCH_STATS_JSON`` dumps the session's unified cache counters to
the named file when the run ends.
"""

import json
import os
import sys

import pytest

from repro.api import Session
from repro.dse.evaluate import EvalSettings
from repro.sim.engine import SimulationOptions


def full_eval_requested() -> bool:
    return os.environ.get("REPRO_FULL_EVAL", "0") == "1"


@pytest.fixture(scope="session")
def settings() -> EvalSettings:
    if full_eval_requested():
        return EvalSettings(
            quick=False,
            options=SimulationOptions(passes_per_gemm=6, max_t_steps=128),
        )
    return EvalSettings(quick=True)


@pytest.fixture(scope="session")
def session(tmp_path_factory) -> Session:
    """One session (and one persistent cache) for the whole benchmark run."""
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or tmp_path_factory.mktemp(
        "repro-cache"
    )
    sess = Session(cache_dir=cache_dir)
    yield sess
    stats_path = os.environ.get("REPRO_BENCH_STATS_JSON")
    if stats_path:
        payload = sess.stats.as_dict()
        rss_kb = _peak_rss_kb()
        if rss_kb is not None:
            payload["max_rss_kb"] = rss_kb
        with open(stats_path, "w") as handle:
            json.dump(payload, handle, indent=2)


def _peak_rss_kb() -> int | None:
    """This process's peak resident set size in KB (None where unsupported).

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def show(text: str) -> None:
    """Print a reproduction table (visible with -s)."""
    print("\n" + text)
