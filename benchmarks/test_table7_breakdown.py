"""Table VII: power and area breakdowns, model vs paper."""

import pytest

from repro.baselines import sparten_cost, tcl_b_cost, tdash_ab_cost
from repro.config import GRIFFIN, SPARSE_A_STAR, SPARSE_AB_STAR, SPARSE_B_STAR, dense
from repro.dse.report import format_table
from repro.hw.cost import cost_of, griffin_cost
from conftest import show

#: Paper totals (power mW, area k um^2) in Table VII row order.
PAPER = {
    "Baseline": (151, 217),
    "Sparse.B*": (206, 258),
    "TCL.B": (209, 233),
    "Sparse.A*": (223, 253),
    "Sparse.AB*": (282, 282),
    "Griffin": (284, 286),
    "TDash.AB": (284, 276),
    "SparTen.AB": (991, 1139),
}


def _rows():
    return [
        cost_of(dense()),
        cost_of(SPARSE_B_STAR),
        tcl_b_cost(),
        cost_of(SPARSE_A_STAR),
        cost_of(SPARSE_AB_STAR),
        griffin_cost(GRIFFIN),
        tdash_ab_cost(),
        sparten_cost("AB"),
    ]


def test_table7_power_breakdown(benchmark):
    rows = benchmark(_rows)
    table = []
    for row in rows:
        cells = {"Architecture": row.label}
        cells.update({k: round(v, 1) for k, v in row.power_row().items()})
        cells["Total"] = round(row.total_power_mw, 1)
        cells["Paper"] = PAPER[row.label][0]
        table.append(cells)
        assert row.total_power_mw == pytest.approx(PAPER[row.label][0], rel=0.10)
    show(format_table(table, title="Table VII -- power breakdown (mW)"))


def test_table7_area_breakdown(benchmark):
    rows = benchmark(_rows)
    table = []
    for row in rows:
        cells = {"Architecture": row.label}
        cells.update({k: round(v, 1) for k, v in row.area_row().items()})
        cells["Total"] = round(row.total_area_kum2, 1)
        cells["Paper"] = PAPER[row.label][1]
        table.append(cells)
        assert row.total_area_kum2 == pytest.approx(PAPER[row.label][1], rel=0.10)
    show(format_table(table, title="Table VII -- area breakdown (k um^2)"))


def test_table7_ordering_reproduces(benchmark):
    rows = benchmark(_rows)
    # The paper lists designs in order of increasing power efficiency cost:
    # the dense baseline is cheapest, SparTen by far the most expensive.
    powers = [r.total_power_mw for r in rows]
    assert powers[0] == min(powers)
    assert powers[-1] == max(powers)
    assert powers[-1] > 3 * powers[-2]
