"""Figure 7: the dual-sparse (Sparse.AB) design space.

Evaluations run through the shared session (batched ``session.evaluate``).
"""

import pytest

from repro.baselines import tdash_ab_cost
from repro.baselines.tensordash import TDASH_AB, TDASH_CALIBRATION
from repro.config import ModelCategory, SPARSE_AB_STAR
from repro.dse.evaluate import ConfigDesign
from repro.dse.report import format_table
from conftest import show

FIG7_POINTS = [
    "AB(1,0,0,2,0,1,on)",
    "AB(1,0,0,3,0,1,off)", "AB(1,0,0,3,0,1,on)",
    "AB(1,1,0,3,0,1,off)", "AB(1,0,0,3,1,1,off)",
    "AB(2,0,0,2,0,1,off)", "AB(2,0,0,2,0,1,on)",
    "AB(2,0,0,4,0,1,on)", "AB(2,0,0,4,0,2,on)",
]


@pytest.fixture(scope="module")
def speedups(session, settings):
    outcome = session.evaluate(FIG7_POINTS, (ModelCategory.AB,), settings)
    return {
        notation: evaluation.speedup(ModelCategory.AB)
        for notation, evaluation in zip(FIG7_POINTS, outcome.evaluations)
    }


def test_fig7a_speedup_bars(benchmark, session, settings, speedups):
    benchmark.pedantic(
        lambda: session.evaluate_one(
            SPARSE_AB_STAR, (ModelCategory.AB,), settings
        ).speedup(ModelCategory.AB),
        rounds=1, iterations=1,
    )
    rows = [{"Config": k, "DNN.AB speedup": v} for k, v in speedups.items()]
    show(format_table(rows, title="Fig. 7(a) -- Sparse.AB normalized speedup"))

    s = speedups
    # The best-performing point is the deep-window AB(2,0,0,4,0,2,on)
    # (paper: 4.9x vs 3.9x for the starred design).
    assert s["AB(2,0,0,4,0,2,on)"] == max(s.values())
    assert s["AB(2,0,0,4,0,2,on)"] > s["AB(2,0,0,2,0,1,on)"]
    # Obs (1): shuffling replaces da2/db2: the shuffled design beats both
    # no-shuffle variants that spend a lane dimension instead.
    assert s["AB(1,0,0,3,0,1,on)"] > s["AB(1,1,0,3,0,1,off)"]
    assert s["AB(1,0,0,3,0,1,on)"] > s["AB(1,0,0,3,1,1,off)"]
    # The starred design sits in the paper's band (3.9x +- modeling gap).
    assert 2.2 < s["AB(2,0,0,2,0,1,on)"] < 5.0


def test_fig7bc_efficiency_scatter(benchmark, session, settings):
    cats = (ModelCategory.AB, ModelCategory.A)
    points = ["AB(2,0,0,2,0,1,on)", "AB(2,0,0,4,0,1,on)", "AB(2,0,0,4,0,2,on)"]

    def run():
        outcome = session.evaluate(points, cats, settings)
        return dict(zip(points, outcome.evaluations))

    evals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "Config": name,
            "Speedup (AB)": e.speedup(ModelCategory.AB),
            "TOPS/W (AB)": e.point(ModelCategory.AB).tops_per_watt,
            "TOPS/W (A)": e.point(ModelCategory.A).tops_per_watt,
        }
        for name, e in evals.items()
    ]
    show(format_table(rows, title="Fig. 7(b)/(c) -- Sparse.AB efficiency"))
    # The starred design improves dual-sparse power efficiency over the
    # dense baseline (paper: +108%).
    assert evals["AB(2,0,0,2,0,1,on)"].point(ModelCategory.AB).tops_per_watt > 10.85


def test_fig7_star_beats_tensordash(benchmark, session, settings):
    def run():
        tdash_design = ConfigDesign(
            TDASH_AB,
            calibration=TDASH_CALIBRATION,
            power_mw=tdash_ab_cost().total_power_mw,
            area_um2=tdash_ab_cost().total_area_um2,
        )
        outcome = session.evaluate(
            [SPARSE_AB_STAR, tdash_design], (ModelCategory.AB,), settings
        )
        return outcome.evaluations

    star, tdash = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = (
        star.point(ModelCategory.AB).tops_per_watt
        / tdash.point(ModelCategory.AB).tops_per_watt
    )
    show(f"Sparse.AB* vs TDash.AB power-efficiency ratio on DNN.AB: {ratio:.2f}")
    # Paper: +108% vs +43% over baseline -> roughly 1.45x between them.
    assert ratio > 1.1
