"""Table V: routing dimensions of the comparison architectures."""

from repro.baselines import all_baselines
from repro.config import GRIFFIN
from repro.dse.report import format_table
from conftest import show


def test_table5_routing_dimensions(benchmark):
    def build():
        rows = [b.routing_row() for b in all_baselines()]
        for conf_name, conf in (
            ("Griffin conf.AB", GRIFFIN.conf_ab),
            ("Griffin conf.B", GRIFFIN.conf_b),
            ("Griffin conf.A", GRIFFIN.conf_a),
        ):
            rows.append(
                {
                    "Architecture": conf_name,
                    "da1": conf.a.d1, "da2": conf.a.d2, "da3": conf.a.d3,
                    "db1": conf.b.d1, "db2": conf.b.d2, "db3": conf.b.d3,
                    "Shuffle": conf.shuffle,
                    "Sparsity": "Hybrid Sparsity",
                }
            )
        return rows

    rows = benchmark(build)
    by_name = {r["Architecture"]: r for r in rows}
    # Baseline routes nothing; BitTactical is weight-only without db3;
    # SparTen is time-only on both sides; only Griffin shuffles.
    assert by_name["Baseline"]["db1"] == 0
    assert by_name["BitTactical"]["da1"] == 0 and by_name["BitTactical"]["db3"] == 0
    assert by_name["SparTen"]["da2"] == by_name["SparTen"]["db2"] == 0
    assert not by_name["TensorDash"]["Shuffle"]
    assert by_name["Griffin conf.AB"]["Shuffle"]
    show(format_table(rows, title="Table V -- routing dimensions (A and B matrices)"))
