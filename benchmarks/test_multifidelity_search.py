"""Multi-fidelity search: the surrogate-screened shortlist vs exact search.

The calibrated analytical surrogate (``repro.surrogate``, fitted golden
constants committed with the toolkit) screens an entire feasible design
space in pure arithmetic, and only the predicted-frontier shortlist is
confirmed by the exact engine.  These benchmarks time the screened runs
and assert the reproduction's acceptance bar: the shortlist recovers the
same starred point exact search finds, while spending a fraction of the
exact evaluations (<= 10% of the grid on the paper space, and strictly
fewer than the committed evolutionary baseline on the wide space).
"""

from repro.dse.evaluate import EvalSettings
from repro.dse.report import format_table
from repro.search import paper_space
from repro.sim.engine import SimulationOptions
from conftest import show

#: The surrogate's calibrated "quick" sampling regime -- specs must match
#: it exactly (the surrogate refuses uncalibrated options).
QUICK_OPTIONS = {"passes_per_gemm": 1, "max_t_steps": 16, "seed": 7}

SMOKE = EvalSettings(
    quick=True,
    options=SimulationOptions(**QUICK_OPTIONS),
    networks=("BERT",),
)

#: The committed `examples/experiments/search_b.json` space and baseline.
WIDE_SPACE = {
    "name": "b-wide",
    "db1": [1, 2, 3, 4, 5, 6, 7],
    "db2": [0, 1, 2, 3, 4],
    "db3": [0, 1, 2, 3],
    "max_amux_fanin": 8,
}
OBJECTIVES = [
    {"category": "DNN.B", "metric": "tops_per_watt"},
    {"category": "DNN.dense", "metric": "tops_per_watt"},
]
EVOLUTIONARY_BUDGET = 11


def _multi_spec(name: str, space, budget: int) -> dict:
    return {
        "name": name,
        "space": space,
        "fidelity": "multi",
        "strategy": {"budget": budget},
        "objectives": OBJECTIVES,
        "networks": ["BERT"],
        "options": QUICK_OPTIONS,
    }


def test_multifidelity_recovers_the_paper_space_star(benchmark, session):
    """Budget 4 of the 42-config paper b space recovers the exhaustive star."""
    spec = _multi_spec("bench-multi-b", "b", budget=4)

    multi = benchmark.pedantic(lambda: session.search(spec), rounds=1, iterations=1)
    exhaustive = session.search("b", settings=SMOKE)

    show(format_table(
        [
            {
                "Search": "surrogate-screened",
                "Exact evals": multi.evaluated,
                "Screened": multi.screened,
                "Star": multi.optimal().label,
            },
            {
                "Search": "exhaustive",
                "Exact evals": len(exhaustive.archive),
                "Screened": 0,
                "Star": exhaustive.optimal().label,
            },
        ],
        title="Multi-fidelity vs exhaustive -- paper Sparse.B space",
    ))
    assert multi.optimal().label == exhaustive.optimal().label
    assert multi.screened == len(paper_space("b"))
    # The acceptance bar: <= 10% of the grid spent on exact evaluations.
    assert multi.evaluated * 10 <= multi.grid_size
    # The archive holds engine truth: the starred row's scores equal the
    # exhaustive run's scores for the same config, bit for bit.
    star = multi.optimal()
    twin = next(r for r in exhaustive.archive if r.label == star.label)
    assert star.scores == twin.scores


def test_multifidelity_undercuts_the_evolutionary_baseline(benchmark, session):
    """On the committed 112-config wide space, budget 6 beats budget 11."""
    spec = _multi_spec("bench-multi-b-wide", WIDE_SPACE, budget=6)

    multi = benchmark.pedantic(lambda: session.search(spec), rounds=1, iterations=1)
    evolutionary = session.search(
        {
            "name": "bench-evo-b-wide",
            "space": WIDE_SPACE,
            "strategy": {
                "kind": "evolutionary",
                "seed": 16,
                "budget": EVOLUTIONARY_BUDGET,
                "population": 4,
                "parents": 2,
                "children": 2,
            },
            "objectives": OBJECTIVES,
            "networks": ["BERT"],
            "options": QUICK_OPTIONS,
        }
    )

    show(format_table(
        [
            {
                "Search": "surrogate-screened",
                "Exact evals": multi.evaluated,
                "Star": multi.optimal().label,
            },
            {
                "Search": "evolutionary (committed baseline)",
                "Exact evals": len(evolutionary.archive),
                "Star": evolutionary.optimal().label,
            },
        ],
        title="Multi-fidelity vs evolutionary -- b-wide (search_b.json) space",
    ))
    assert multi.optimal().label == evolutionary.optimal().label
    assert multi.screened == multi.grid_size == 112
    assert multi.evaluated < len(evolutionary.archive)


def test_screening_is_deterministic_and_free(benchmark, session):
    """Re-running the screened search is bitwise-identical and cache-warm."""
    spec = _multi_spec("bench-multi-b-wide", WIDE_SPACE, budget=6)

    first = session.search(spec)
    repeat = benchmark.pedantic(lambda: session.search(spec), rounds=1, iterations=1)

    assert [r.label for r in repeat.archive] == [r.label for r in first.archive]
    assert [r.scores for r in repeat.archive] == [r.scores for r in first.archive]
    assert repeat.optimal().label == first.optimal().label
    show(
        f"screened repeat: {repeat.evaluated} exact evaluations, "
        f"star {repeat.optimal().label} (bitwise-identical archive)"
    )
