"""Per-benchmark speedups behind the Figs. 5-8 geometric means.

The paper reports suite geomeans; this bench prints the per-network
speedups of the starred designs so the workload-level structure is
visible: BERT's uniform pruning rewards deep windows, MobileNet's
depthwise layers defeat every sparse mechanism (their K=9, T=1 blocks
leave nothing to borrow across), and the CNNs sit in between.
"""

import pytest

from repro.config import GRIFFIN, ModelCategory, SPARSE_AB_STAR, SPARSE_B_STAR
from repro.dse.report import format_table
from repro.sim.engine import SimulationOptions
from repro.workloads.registry import BENCHMARKS
from conftest import full_eval_requested, show

OPTIONS = SimulationOptions(passes_per_gemm=3, max_t_steps=64)


@pytest.fixture(scope="module")
def per_network(session):
    rows = []
    for info in BENCHMARKS:
        net = info.network
        row = {"Network": info.name}
        row["B* (DNN.B)"] = session.simulate(
            net, SPARSE_B_STAR, ModelCategory.B, OPTIONS
        ).speedup
        row["conf.B (DNN.B)"] = session.simulate(
            net, GRIFFIN.conf_b, ModelCategory.B, OPTIONS
        ).speedup
        if info.act_sparsity > 0:
            row["AB* (DNN.AB)"] = session.simulate(
                net, SPARSE_AB_STAR, ModelCategory.AB, OPTIONS
            ).speedup
        else:
            row["AB* (DNN.AB)"] = float("nan")
        rows.append(row)
    return rows


def test_per_network_speedups(benchmark, per_network):
    benchmark(lambda: None)
    show(format_table(per_network, title="Per-benchmark speedups (starred designs)"))

    by_name = {r["Network"]: r for r in per_network}
    # MobileNet's depthwise blocks bound its speedup near 1.
    assert by_name["MobileNetV2"]["B* (DNN.B)"] < 1.4
    # BERT's uniformly pruned projections reward the deep conf.B window.
    assert by_name["BERT"]["conf.B (DNN.B)"] > by_name["BERT"]["B* (DNN.B)"]
    # Every non-depthwise benchmark speeds up substantially.
    for name in ("AlexNet", "GoogleNet", "ResNet50", "InceptionV3", "BERT"):
        assert by_name[name]["B* (DNN.B)"] > 1.5, name


def test_dual_beats_single_per_network(benchmark, per_network):
    benchmark(lambda: None)
    for row in per_network:
        ab = row["AB* (DNN.AB)"]
        if ab != ab:  # NaN: benchmark has no activation sparsity
            continue
        if row["Network"] == "MobileNetV2":
            continue  # depthwise-bound either way
        assert ab > 0.95 * row["B* (DNN.B)"], row["Network"]


def test_full_suite_marker(benchmark):
    benchmark(lambda: None)
    show(f"full-suite mode: {full_eval_requested()}")
