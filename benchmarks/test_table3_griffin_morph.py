"""Table III: Griffin morphing vs the downgraded dual-sparse design."""

from repro.config import GRIFFIN, ModelCategory
from repro.core.griffin import compare_morph_vs_downgrade
from repro.dse.report import format_table
from conftest import show


def test_table3_morph_structure(benchmark):
    def build():
        rows = []
        for category in (ModelCategory.A, ModelCategory.B):
            cmp = compare_morph_vs_downgrade(GRIFFIN, category)
            rows.append(
                {
                    "Model": category.value,
                    "Downgrade": cmp.downgrade.notation,
                    "Morph": cmp.morph.notation,
                    "BMUX fan-in": f"{cmp.bmux_fanin_change[0]}->{cmp.bmux_fanin_change[1]}",
                    "ABUF entries": f"{cmp.abuf_entries_used[0]}->{cmp.abuf_entries_used[1]}",
                    "Metadata bits": f"{cmp.metadata_bits[0]}->{cmp.metadata_bits[1]}",
                }
            )
        return rows

    rows = benchmark(build)
    assert rows[0]["Morph"] == "A(2,1,1,on)"
    assert rows[1]["Morph"] == "B(8,0,1,on)"
    show(format_table(rows, title="Table III -- Griffin morph vs dual-sparse downgrade"))


def test_table3_morph_outperforms_downgrade(benchmark, session, settings):
    def run():
        out = {}
        for category in (ModelCategory.A, ModelCategory.B):
            cmp = compare_morph_vs_downgrade(GRIFFIN, category)
            down, morph = session.evaluate(
                [cmp.downgrade, cmp.morph], (category,), settings
            ).evaluations
            out[category] = (down.speedup(category), morph.speedup(category))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for category, (down, morph) in result.items():
        rows.append(
            {
                "Model": category.value,
                "Downgrade speedup": down,
                "Morph speedup": morph,
                "Gain": morph / down,
            }
        )
        assert morph >= down * 0.98, category
    assert result[ModelCategory.B][1] > result[ModelCategory.B][0] * 1.05
    show(format_table(rows, title="Table III -- morph speedup vs downgrade"))
