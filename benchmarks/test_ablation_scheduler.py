"""Ablation: scheduler semantics choices behind the performance model.

Quantifies the modeling decisions DESIGN.md documents -- front-pointer
granularity (per-stream vs per-unit vs tile-wide), lane-ring wrap, and the
borrowing-priority structure -- on a fixed batch of tiles, so a reader can
see how much each assumption is worth and how conservative the default is.
"""

import numpy as np
import pytest

from repro.dse.report import format_table
from repro.sim.compaction import compact_schedule
from conftest import show


def _tiles(count=6, t=96, lanes=16, cols=16, density=0.2, seed=11):
    rng = np.random.default_rng(seed)
    lane_f = rng.gamma(4.0, 0.25, lanes)
    lane_f /= lane_f.mean()
    tiles = []
    for _ in range(count):
        probs = np.clip(density * lane_f[None, :, None], 0, 1)
        tiles.append(rng.random((t, lanes, cols)) < probs)
    return tiles


@pytest.fixture(scope="module")
def tiles():
    return _tiles()


def _mean_speedup(tiles, front_mode, d=(4, 0, 1), wrap=True):
    t = tiles[0].shape[0]
    cycles = [
        compact_schedule(m, *d, lane_wrap=wrap, front_mode=front_mode).cycles
        for m in tiles
    ]
    return t * len(tiles) / sum(cycles)


def test_front_mode_ablation(benchmark, tiles):
    def run():
        return {
            mode: _mean_speedup(tiles, mode) for mode in ("stream", "unit", "tile")
        }

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"Front granularity": mode, "Tile speedup": s}
        for mode, s in speedups.items()
    ]
    show(format_table(rows, title="Ablation -- front-pointer granularity (B(4,0,1))"))
    # Synchronization granularity orders the results: per-stream fronts
    # (default; drift absorbed by the provisioned buffers) > per-unit >
    # one tile-wide front.
    assert speedups["stream"] >= speedups["unit"] >= speedups["tile"]
    assert speedups["stream"] > 1.1 * speedups["tile"]


def test_lane_wrap_ablation(benchmark, tiles):
    def run():
        return {
            "ring (wrap)": _mean_speedup(tiles, "stream", d=(2, 2, 0), wrap=True),
            "linear (no wrap)": _mean_speedup(tiles, "stream", d=(2, 2, 0), wrap=False),
        }

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [{"Lane topology": k, "Tile speedup": v} for k, v in speedups.items()],
        title="Ablation -- lane lookaside topology (B(2,2,0))",
    ))
    # The ring gives edge lanes donors; it can only help.
    assert speedups["ring (wrap)"] >= speedups["linear (no wrap)"]


def test_window_depth_sweep(benchmark, tiles):
    def run():
        return {f"db1={d1}": _mean_speedup(tiles, "stream", d=(d1, 0, 0)) for d1 in (1, 2, 4, 8, 15)}

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [{"Window": k, "Tile speedup": v} for k, v in speedups.items()],
        title="Ablation -- lookahead depth, no lane/PE routing",
    ))
    values = list(speedups.values())
    assert values == sorted(values)  # monotone
    # Diminishing returns: the last doubling buys less than the first.
    assert values[1] - values[0] > values[-1] - values[-2]
