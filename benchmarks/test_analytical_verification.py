"""The paper's "analytical model, verified by a simulator" layering.

Sec. V builds an analytical overhead/performance model and verifies it
against the cycle simulator; this bench reproduces that verification pass:
the closed-form tile model must track the simulator across the density and
window grid, and the fast speedup estimate must rank design points in the
same order as the full simulation.
"""

import numpy as np

from repro.config import parse_notation
from repro.dse.report import format_table
from repro.sim.analytical import analytical_speedup, analytical_tile_cycles
from repro.sim.compaction import compact_schedule
from conftest import show


def test_tile_model_tracks_simulator(benchmark):
    rng = np.random.default_rng(2022)
    grid = [(d, p) for d in (2, 4, 7) for p in (0.1, 0.2, 0.35, 0.5)]

    def run():
        rows = []
        for d1, density in grid:
            sims = [
                compact_schedule(rng.random((96, 16, 16)) < density, d1, 0, 0).cycles
                for _ in range(3)
            ]
            model = analytical_tile_cycles(96, np.full((16, 16), density), d1)
            rows.append(
                {
                    "d1": d1,
                    "density": density,
                    "sim cycles": float(np.mean(sims)),
                    "model cycles": model,
                    "error%": 100.0 * (model / np.mean(sims) - 1.0),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Analytical tile model vs cycle simulator"))
    errors = [abs(r["error%"]) for r in rows]
    assert max(errors) < 25.0
    assert float(np.mean(errors)) < 12.0


def test_estimate_ranks_designs_like_simulator(benchmark):
    """The quick estimator must order Sparse.B points like the simulator
    orders them in Fig. 5 (used by the explorer to pre-rank sweeps)."""
    notations = ["B(2,0,0,on)", "B(4,0,0,on)", "B(4,0,1,on)", "B(8,0,1,on)"]

    def run():
        return {
            n: analytical_speedup(parse_notation(n), weight_density=0.19, act_density=None)
            for n in notations
        }

    estimates = benchmark(run)
    show(format_table(
        [{"Config": k, "Estimated speedup": v} for k, v in estimates.items()],
        title="Analytical speedup estimates (B side, density 0.19)",
    ))
    values = [estimates[n] for n in notations]
    assert values == sorted(values)
    assert values[0] > 1.0
