"""Figure 5: the weight-only (Sparse.B) design space.

Panel (a): normalized speedup bars for the routing configurations; panels
(b)/(c): effective power/area efficiency on DNN.B vs DNN.dense.  The paper's
numbered observations are asserted as shape checks.  All evaluations run
through the shared session (one batched ``session.evaluate`` per panel).
"""

import pytest

from repro.baselines import tcl_b_cost
from repro.baselines.bittactical import TCL_B, TCL_CALIBRATION
from repro.config import ModelCategory, SPARSE_B_STAR
from repro.dse.evaluate import ConfigDesign
from repro.dse.report import format_table
from conftest import show

#: The configurations Fig. 5(a) plots (paper speedups noted for reference).
FIG5_POINTS = [
    "B(2,0,0,off)", "B(2,0,0,on)",
    "B(2,1,0,off)", "B(2,1,0,on)",
    "B(2,2,0,on)", "B(2,0,2,on)", "B(2,1,1,on)",
    "B(4,0,0,off)", "B(4,0,0,on)",
    "B(4,0,1,off)", "B(4,0,1,on)",
    "B(4,0,2,off)", "B(4,0,2,on)",
    "B(6,0,0,off)", "B(6,0,0,on)",
]


@pytest.fixture(scope="module")
def speedups(session, settings):
    outcome = session.evaluate(FIG5_POINTS, (ModelCategory.B,), settings)
    return {
        notation: evaluation.speedup(ModelCategory.B)
        for notation, evaluation in zip(FIG5_POINTS, outcome.evaluations)
    }


def test_fig5a_speedup_bars(benchmark, session, settings, speedups):
    benchmark.pedantic(
        lambda: session.evaluate_one(
            SPARSE_B_STAR, (ModelCategory.B,), settings
        ).speedup(ModelCategory.B),
        rounds=1, iterations=1,
    )
    rows = [{"Config": k, "DNN.B speedup": v} for k, v in speedups.items()]
    show(format_table(rows, title="Fig. 5(a) -- Sparse.B normalized speedup"))

    s = speedups
    # Obs (1): larger db1 -> higher speedup.
    assert s["B(6,0,0,off)"] >= s["B(4,0,0,off)"] >= s["B(2,0,0,off)"]
    # Obs (2): db3 > 0 boosts performance substantially without shuffle.
    assert s["B(4,0,1,off)"] > 1.05 * s["B(4,0,0,off)"]
    assert s["B(4,0,2,off)"] >= s["B(4,0,1,off)"]
    # Obs (3): shuffling is effective, most for db1 > 2.
    assert s["B(6,0,0,on)"] > 1.15 * s["B(6,0,0,off)"]
    assert s["B(4,0,0,on)"] > 1.10 * s["B(4,0,0,off)"]
    # Obs (4): with shuffling on, db2's impact is diminished.
    gain_db2_off = s["B(2,1,0,off)"] - s["B(2,0,0,off)"]
    gain_db2_on = s["B(2,1,0,on)"] - s["B(2,0,0,on)"]
    assert gain_db2_on < gain_db2_off + 0.05
    # Obs (5): balancing db2 and db3 beats doubling either.
    assert s["B(2,1,1,on)"] >= 0.97 * max(s["B(2,2,0,on)"], s["B(2,0,2,on)"])


def test_fig5bc_efficiency_scatter(benchmark, session, settings):
    cats = (ModelCategory.B, ModelCategory.DENSE)
    points = ["B(4,0,0,on)", "B(4,0,1,on)", "B(4,0,2,on)", "B(2,1,1,on)"]

    def run():
        outcome = session.evaluate(points, cats, settings)
        return dict(zip(points, outcome.evaluations))

    evals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "Config": name,
            "TOPS/W (B)": e.point(ModelCategory.B).tops_per_watt,
            "TOPS/W (dense)": e.point(ModelCategory.DENSE).tops_per_watt,
            "TOPS/mm2 (B)": e.point(ModelCategory.B).tops_per_mm2,
            "TOPS/mm2 (dense)": e.point(ModelCategory.DENSE).tops_per_mm2,
        }
        for name, e in evals.items()
    ]
    show(format_table(rows, title="Fig. 5(b)/(c) -- Sparse.B efficiency"))
    # The three Pareto designs the paper names improve power efficiency on
    # DNN.B over the dense baseline (which sits at ~10.85 TOPS/W).
    baseline_eff = 10.85
    for name in ("B(4,0,1,on)", "B(4,0,2,on)"):
        assert evals[name].point(ModelCategory.B).tops_per_watt > baseline_eff


def test_fig5_bstar_beats_tcl(benchmark, session, settings):
    def run():
        tcl_design = ConfigDesign(
            TCL_B,
            calibration=TCL_CALIBRATION,
            power_mw=tcl_b_cost().total_power_mw,
            area_um2=tcl_b_cost().total_area_um2,
        )
        outcome = session.evaluate(
            [SPARSE_B_STAR, tcl_design], (ModelCategory.B,), settings
        )
        return outcome.evaluations

    star, tcl = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = star.point(ModelCategory.B).tops_per_watt / tcl.point(ModelCategory.B).tops_per_watt
    show(f"Sparse.B* vs TCL.B power-efficiency ratio: {ratio:.2f} (paper: up to 1.47)")
    assert ratio > 1.1
