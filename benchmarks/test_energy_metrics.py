"""Extension: per-inference energy and EDP across the headline designs.

Not a paper table -- the paper stops at effective TOPS/W -- but the
adjacent deployment question every Table IV benchmark user asks.  Uses the
clock-gated per-category power, so dense models on sparse cores are
charged their idle-machinery power only at the calibrated gating factor.
"""

import pytest

from repro.config import (
    GRIFFIN,
    ModelCategory,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
    dense,
)
from repro.dse.report import format_table
from repro.hw.cost import griffin_category_power_mw, griffin_cost
from repro.hw.energy import EnergyReport, inference_energy
from repro.sim.engine import SimulationOptions
from conftest import show

OPTIONS = SimulationOptions(passes_per_gemm=3, max_t_steps=64)


def test_energy_per_inference(benchmark, session):
    def run():
        rows = {}
        for config in (dense(), SPARSE_B_STAR, SPARSE_AB_STAR):
            result = session.simulate("ResNet50", config, ModelCategory.AB, OPTIONS)
            rows[config.label] = inference_energy(result, config)
        result = session.simulate("ResNet50", GRIFFIN, ModelCategory.AB, OPTIONS)
        g_cost = griffin_cost(GRIFFIN)
        rows["Griffin"] = EnergyReport(
            label="Griffin",
            network=result.network,
            cycles=result.cycles,
            power_mw=griffin_category_power_mw(GRIFFIN, g_cost, ModelCategory.AB),
        )
        return rows

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        {
            "Design": name,
            "Latency (ms)": r.latency_ms,
            "Energy (mJ)": r.energy_mj,
            "EDP (mJ*ms)": r.edp,
        }
        for name, r in reports.items()
    ]
    show(format_table(table, title="Energy per pruned-ReLU ResNet-50 inference"))

    base = reports["Baseline"]
    for name in ("Sparse.B*", "Sparse.AB*", "Griffin"):
        # Every sparse design must win on energy AND on EDP for DNN.AB.
        assert reports[name].energy_mj < base.energy_mj, name
        assert reports[name].edp < base.edp, name
    # The dual-capable designs beat the weight-only design on EDP (they
    # also skip the activation zeros).
    assert reports["Griffin"].edp < reports["Sparse.B*"].edp
    assert reports["Sparse.AB*"].edp < reports["Sparse.B*"].edp


def test_dense_model_energy_tax(benchmark, session):
    def run():
        base_run = session.simulate("BERT", dense(), ModelCategory.DENSE, OPTIONS)
        base = inference_energy(base_run, dense())
        sparse_run = session.simulate(
            "BERT", SPARSE_B_STAR, ModelCategory.DENSE, OPTIONS
        )
        sparse = inference_energy(sparse_run, SPARSE_B_STAR)
        return base, sparse

    base, sparse = benchmark.pedantic(run, rounds=1, iterations=1)
    tax = sparse.energy_mj / base.energy_mj - 1.0
    show(f"Dense BERT energy tax of Sparse.B* hardware: {tax:.0%} "
         "(paper: ~16% power overhead on dense models)")
    assert 0.05 < tax < 0.30
    assert sparse.latency_ms == pytest.approx(base.latency_ms, rel=0.01)
