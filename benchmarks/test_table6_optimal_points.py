"""Table VI: optimal design points selected from the sweeps.

Runs the (quick) Figs. 5/6 sweeps through the product-rule selector and
compares the chosen starred designs with the published ones.  The full
sweep (``REPRO_FULL_EVAL=1``) tightens the agreement; in quick mode we
assert the published stars are at least statistically indistinguishable
from the selected point (within 5% on the selection score).
"""

from repro.config import GRIFFIN, ModelCategory, SPARSE_A_STAR, SPARSE_B_STAR
from repro.dse.explorer import sparse_a_space, sparse_b_space
from repro.dse.report import format_table, select_optimal
from conftest import show


def _score(evaluation, sparse_category):
    return (
        evaluation.point(sparse_category).tops_per_watt
        * evaluation.point(ModelCategory.DENSE).tops_per_watt
    )


def test_table6_sparse_b_star(benchmark, session, settings):
    space = sparse_b_space(db1_values=(2, 4, 6), max_db2=1, max_db3=2)
    cats = (ModelCategory.B, ModelCategory.DENSE)

    def run():
        evals = list(session.evaluate(space, cats, settings).evaluations)
        return evals, select_optimal(evals, ModelCategory.B)

    evals, best = benchmark.pedantic(run, rounds=1, iterations=1)
    published = session.evaluate_one(SPARSE_B_STAR, cats, settings)
    rows = [
        {
            "Design": e.label,
            "DNN.B speedup": e.speedup(ModelCategory.B),
            "TOPS/W (B)": e.point(ModelCategory.B).tops_per_watt,
            "TOPS/W (dense)": e.point(ModelCategory.DENSE).tops_per_watt,
        }
        for e in sorted(evals, key=lambda e: -_score(e, ModelCategory.B))[:8]
    ]
    show(format_table(rows, title="Table VI -- Sparse.B* selection (top 8 by score)"))
    show(f"selected: {best.label}; paper's pick: {SPARSE_B_STAR.notation}")
    # Our greedy scheduler is more conservative than the paper's at deep
    # windows, so the selector may prefer a shallower shuffled design; the
    # published star must still score within 15% of the selected point
    # (EXPERIMENTS.md discusses the deviation).
    assert _score(published, ModelCategory.B) >= 0.85 * _score(best, ModelCategory.B)
    # The structural findings hold regardless: the winners shuffle, and
    # db3 > 0 appears among the leaders (Fig. 5 observations 2-3).
    assert best.label.endswith("on)")
    top4 = sorted(evals, key=lambda e: -_score(e, ModelCategory.B))[:4]
    assert any(",1,on)" in e.label or ",2,on)" in e.label for e in top4)


def test_table6_sparse_a_star(benchmark, session, settings):
    space = sparse_a_space(da1_values=(1, 2, 3), max_da2=1, max_da3=1)
    cats = (ModelCategory.A, ModelCategory.DENSE)

    def run():
        evals = list(session.evaluate(space, cats, settings).evaluations)
        return evals, select_optimal(evals, ModelCategory.A)

    evals, best = benchmark.pedantic(run, rounds=1, iterations=1)
    published = session.evaluate_one(SPARSE_A_STAR, cats, settings)
    show(
        format_table(
            [
                {
                    "Design": e.label,
                    "DNN.A speedup": e.speedup(ModelCategory.A),
                    "TOPS/W (A)": e.point(ModelCategory.A).tops_per_watt,
                }
                for e in sorted(evals, key=lambda e: -_score(e, ModelCategory.A))[:8]
            ],
            title="Table VI -- Sparse.A* selection (top 8 by score)",
        )
    )
    show(f"selected: {best.label}; paper's pick: {SPARSE_A_STAR.notation}")
    # Same modeling caveat as the B-side selection (see EXPERIMENTS.md).
    assert _score(published, ModelCategory.A) >= 0.75 * _score(best, ModelCategory.A)
    assert best.label.endswith("on)")
    # The paper's core A-side finding: lane lookaside (da2) is the
    # valuable dimension for ~50%-sparse activations.
    assert best.label.startswith("A(") and ",1," in best.label


def test_table6_published_points(benchmark):
    rows = benchmark(
        lambda: [
            {"Design": "Sparse.B*", "Config": SPARSE_B_STAR.notation},
            {"Design": "Sparse.A*", "Config": SPARSE_A_STAR.notation},
            {"Design": "Griffin conf.AB", "Config": GRIFFIN.conf_ab.notation},
            {"Design": "Griffin conf.B", "Config": GRIFFIN.conf_b.notation},
            {"Design": "Griffin conf.A", "Config": GRIFFIN.conf_a.notation},
        ]
    )
    assert rows[0]["Config"] == "B(4,0,1,on)"
    show(format_table(rows, title="Table VI -- published optimal routing configurations"))
