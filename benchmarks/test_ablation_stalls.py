"""Ablation: the stall-model components (Sec. V pipeline considerations).

Toggles the output-synchronization drain, the SRAM bank-conflict model and
the (default-off) DRAM bandwidth check to show how much each contributes
to end-to-end latency -- and why the paper can say 50 GB/s of DRAM is
"enough to avoid any performance drop" only while weights stream ahead of
use (the DRAM-ablation row shows what happens if they don't).
"""

from repro.config import ModelCategory, SPARSE_B_STAR
from repro.sim.engine import SimulationOptions
from repro.dse.report import format_table
from conftest import show


def _speedup(session, **kwargs):
    options = SimulationOptions(passes_per_gemm=3, max_t_steps=64, **kwargs)
    return session.simulate(
        "AlexNet", SPARSE_B_STAR, ModelCategory.B, options
    ).speedup


def test_stall_component_ablation(benchmark, session):
    def run():
        return {
            "no stalls": _speedup(session, include_stalls=False, pipeline_drain=0),
            "drain only": _speedup(session, include_stalls=False, pipeline_drain=2),
            "drain + SRAM conflicts (default)": _speedup(session, include_stalls=True),
            "+ DRAM check (weights not resident)": _speedup(
                session, include_stalls=True, include_dram=True
            ),
        }

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"Stall model": k, "AlexNet DNN.B speedup": v} for k, v in speedups.items()]
    show(format_table(rows, title="Ablation -- stall model components (Sparse.B*)"))

    ordered = list(speedups.values())
    assert ordered == sorted(ordered, reverse=True)
    # Default stalls shave ~10-15% off the ideal, never dominating.
    assert speedups["drain + SRAM conflicts (default)"] > 0.8 * speedups["no stalls"]
    # The DRAM check hammers the batch-1 FC layers: a visible drop.
    assert speedups["+ DRAM check (weights not resident)"] < (
        0.85 * speedups["drain + SRAM conflicts (default)"]
    )
