"""Table I: DNN categories and their optimal accelerator types."""

from repro.config import ModelCategory
from repro.dse.report import format_table
from conftest import show

#: Table I, transcribed: benchmark family -> (A/B sparsity, category, arch).
TABLE_I = [
    ("CNN+Non-ReLU / Transformer+GeLU", "dense/dense", ModelCategory.DENSE, "Dense"),
    ("CNN+ReLU / Transformer+ReLU", "sparse/dense", ModelCategory.A, "Sparse.A"),
    ("Pruned CNN+Non-ReLU / Pruned Transformer+GeLU", "dense/sparse", ModelCategory.B, "Sparse.B"),
    ("Pruned CNN+ReLU / Pruned Transformer+ReLU", "sparse/sparse", ModelCategory.AB, "Sparse.AB"),
]


def classify(a_b: str) -> ModelCategory:
    a, b = a_b.split("/")
    return ModelCategory.from_sparsity(a == "sparse", b == "sparse")


def test_table1_category_mapping(benchmark):
    rows = benchmark(
        lambda: [
            {
                "Benchmarks": name,
                "A/B sparsity": ab,
                "Category": classify(ab).value,
                "Optimal arch": arch,
            }
            for name, ab, _, arch in TABLE_I
        ]
    )
    for row, (_, _, category, _) in zip(rows, TABLE_I):
        assert row["Category"] == category.value
    show(format_table(rows, title="Table I -- benchmark categories"))
