"""Figure 8: overall power/area efficiency across all four DNN categories.

Evaluates the dense baseline, the starred single/dual-sparse designs,
Griffin, and the SOTA comparators on DNN.dense / DNN.B / DNN.A / DNN.AB, and
checks the paper's headline claims: Griffin is the only top performer in
every category, and it beats SparTen by large factors on single-sparse
models.
"""

import pytest

from repro.baselines import baseline, sparten_cost
from repro.baselines.bittactical import TCL_B, TCL_CALIBRATION
from repro.baselines.sparten import SPARTEN_AB
from repro.baselines.tensordash import TDASH_AB, TDASH_CALIBRATION
from repro.config import (
    GRIFFIN,
    ModelCategory,
    SPARSE_A_STAR,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
    dense,
)
from repro.core.metrics import EfficiencyPoint
from repro.dse.evaluate import category_speedup, evaluate_arch, evaluate_griffin
from repro.dse.report import format_table
from conftest import show

CATEGORIES = (
    ModelCategory.DENSE,
    ModelCategory.B,
    ModelCategory.A,
    ModelCategory.AB,
)


@pytest.fixture(scope="module")
def evaluations(settings):
    evals = {
        "Baseline": evaluate_arch(dense(), CATEGORIES, settings),
        "Sparse.B*": evaluate_arch(SPARSE_B_STAR, CATEGORIES, settings),
        "Sparse.A*": evaluate_arch(SPARSE_A_STAR, CATEGORIES, settings),
        "Sparse.AB*": evaluate_arch(SPARSE_AB_STAR, CATEGORIES, settings),
        "Griffin": evaluate_griffin(GRIFFIN, CATEGORIES, settings),
        "TCL.B": evaluate_arch(TCL_B, CATEGORIES, settings, calibration=TCL_CALIBRATION),
        "TDash.AB": evaluate_arch(
            TDASH_AB, CATEGORIES, settings, calibration=TDASH_CALIBRATION
        ),
    }
    # SparTen: per-category power (its machinery idles on dense streams).
    sparten_arch = baseline("SparTen")
    sparten_points = []
    for category in CATEGORIES:
        speedup = category_speedup(SPARTEN_AB, category, settings)
        sparten_points.append(
            EfficiencyPoint(
                label="SparTen.AB",
                category=category.value,
                speedup=speedup,
                power_mw=sparten_arch.power_mw(category),
                area_um2=sparten_cost("AB").total_area_um2,
            )
        )
    from repro.dse.evaluate import DesignEvaluation

    evals["SparTen.AB"] = DesignEvaluation("SparTen.AB", tuple(sparten_points))
    return evals


def test_fig8_efficiency_table(benchmark, evaluations):
    def build():
        rows = []
        for name, ev in evaluations.items():
            row = {"Architecture": name}
            for category in CATEGORIES:
                pt = ev.point(category)
                row[f"{category.value} TOPS/W"] = round(pt.tops_per_watt, 1)
                row[f"{category.value} TOPS/mm2"] = round(pt.tops_per_mm2, 1)
            rows.append(row)
        return rows

    rows = benchmark(build)
    show(format_table(rows, title="Fig. 8 -- effective efficiency per category"))


def test_fig8_griffin_is_the_all_rounder(benchmark, evaluations):
    """The paper's headline: "the goal for optimal design is to remain a top
    performer for all four categories ... only achieved by Griffin."  We
    score every design by its *worst-category* power efficiency relative to
    that category's best design; Griffin must win that minimax."""
    benchmark(lambda: None)
    best_per_cat = {
        category: max(ev.point(category).tops_per_watt for ev in evaluations.values())
        for category in CATEGORIES
    }
    minimax = {
        name: min(
            ev.point(category).tops_per_watt / best_per_cat[category]
            for category in CATEGORIES
        )
        for name, ev in evaluations.items()
    }
    show(
        "Worst-category relative power efficiency: "
        + ", ".join(f"{k}: {v:.2f}" for k, v in sorted(minimax.items(), key=lambda i: -i[1]))
    )
    # Griffin must beat every other design that can exploit activation
    # sparsity -- in particular the plain dual-sparse core it is built
    # from, which is the paper's central claim.  (In this reproduction the
    # weight-only Sparse.B* overachieves on DNN.AB because our causal
    # dual-path scheduler is conservative on the A side; EXPERIMENTS.md
    # discusses the deviation.)
    for rival in ("Sparse.A*", "Sparse.AB*", "TDash.AB", "SparTen.AB", "Baseline"):
        assert minimax["Griffin"] > minimax[rival], rival
    assert minimax["Griffin"] > 0.6


def test_fig8_griffin_vs_sparten_ratios(benchmark, evaluations):
    benchmark(lambda: None)
    """Paper: Griffin is 1.2 / 3.0 / 3.1 / 1.4x more power-efficient than
    SparTen on dense / B / A / AB (we assert the ordering and magnitudes
    loosely -- who wins and by roughly what factor)."""
    ratios = {}
    for category in CATEGORIES:
        g = evaluations["Griffin"].point(category).tops_per_watt
        s = evaluations["SparTen.AB"].point(category).tops_per_watt
        ratios[category.value] = g / s
    show(
        "Griffin vs SparTen power-efficiency ratios: "
        + ", ".join(f"{k}: {v:.2f}" for k, v in ratios.items())
        + "  (paper: dense 1.2, B 3.0, A 3.1, AB 1.4)"
    )
    assert all(r > 1.0 for r in ratios.values())
    assert ratios["DNN.B"] > 1.8
    assert ratios["DNN.A"] > 1.8
    assert ratios["DNN.A"] > ratios["DNN.dense"]


def test_fig8_sparsity_tax(benchmark, evaluations):
    benchmark(lambda: None)
    """On dense models every sparse design pays a tax vs the baseline, and
    Griffin's is far smaller than SparTen's (paper: 29% vs 42% power)."""
    base = evaluations["Baseline"].point(ModelCategory.DENSE).tops_per_watt
    griffin = evaluations["Griffin"].point(ModelCategory.DENSE).tops_per_watt
    sparten = evaluations["SparTen.AB"].point(ModelCategory.DENSE).tops_per_watt
    griffin_tax = 1.0 - griffin / base
    sparten_tax = 1.0 - sparten / base
    show(f"Dense sparsity tax -- Griffin: {griffin_tax:.0%}, SparTen: {sparten_tax:.0%}")
    assert 0.15 < griffin_tax < 0.55
    assert sparten_tax > griffin_tax


def test_fig8_griffin_beats_dual_on_single_sparse(benchmark, evaluations):
    benchmark(lambda: None)
    """The hybrid's reason to exist: better than plain dual-sparse on
    single-sparse models (paper: +25% power efficiency on DNN.B, +23% on
    DNN.A), at the same cost on DNN.AB."""
    for category, min_gain in ((ModelCategory.B, 1.05), (ModelCategory.A, 1.02)):
        g = evaluations["Griffin"].point(category).tops_per_watt
        d = evaluations["Sparse.AB*"].point(category).tops_per_watt
        assert g > min_gain * d, category
    g_ab = evaluations["Griffin"].point(ModelCategory.AB).tops_per_watt
    d_ab = evaluations["Sparse.AB*"].point(ModelCategory.AB).tops_per_watt
    assert g_ab == pytest.approx(d_ab, rel=0.03)
