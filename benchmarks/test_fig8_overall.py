"""Figure 8: overall power/area efficiency across all four DNN categories.

Evaluates the dense baseline, the starred single/dual-sparse designs,
Griffin, and the SOTA comparators on DNN.dense / DNN.B / DNN.A / DNN.AB, and
checks the paper's headline claims: Griffin is the only top performer in
every category, and it beats SparTen by large factors on single-sparse
models.

The whole comparison is one batched ``session.evaluate`` call -- the same
path ``repro run examples/experiments/fig8.json`` drives -- so every
design (including SparTen's calibrated per-category power rows, handled
by :class:`~repro.dse.evaluate.BaselineDesign`) scores identically to the
CLI reproduction and a warm re-run answers from the network cache tier.
"""

import pytest

from repro.baselines.bittactical import TCL_B, TCL_CALIBRATION
from repro.baselines.tensordash import TDASH_AB, TDASH_CALIBRATION
from repro.config import (
    GRIFFIN,
    ModelCategory,
    SPARSE_A_STAR,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
)
from repro.dse.evaluate import ConfigDesign
from repro.dse.report import format_table
from conftest import show

CATEGORIES = (
    ModelCategory.DENSE,
    ModelCategory.B,
    ModelCategory.A,
    ModelCategory.AB,
)


@pytest.fixture(scope="module")
def evaluations(session, settings):
    designs = {
        "Baseline": "Dense",
        "Sparse.B*": SPARSE_B_STAR,
        "Sparse.A*": SPARSE_A_STAR,
        "Sparse.AB*": SPARSE_AB_STAR,
        "Griffin": GRIFFIN,
        "TCL.B": ConfigDesign(TCL_B, calibration=TCL_CALIBRATION),
        "TDash.AB": ConfigDesign(TDASH_AB, calibration=TDASH_CALIBRATION),
        # SparTen resolves to its BaselineDesign row: calibrated cost and
        # per-category power (its machinery idles on dense streams).
        "SparTen.AB": "SparTen",
    }
    outcome = session.evaluate(list(designs.values()), CATEGORIES, settings)
    return dict(zip(designs, outcome.evaluations))


def test_fig8_efficiency_table(benchmark, evaluations):
    def build():
        rows = []
        for name, ev in evaluations.items():
            row = {"Architecture": name}
            for category in CATEGORIES:
                pt = ev.point(category)
                row[f"{category.value} TOPS/W"] = round(pt.tops_per_watt, 1)
                row[f"{category.value} TOPS/mm2"] = round(pt.tops_per_mm2, 1)
            rows.append(row)
        return rows

    rows = benchmark(build)
    show(format_table(rows, title="Fig. 8 -- effective efficiency per category"))


def test_fig8_griffin_is_the_all_rounder(benchmark, evaluations):
    """The paper's headline: "the goal for optimal design is to remain a top
    performer for all four categories ... only achieved by Griffin."  We
    score every design by its *worst-category* power efficiency relative to
    that category's best design; Griffin must win that minimax."""
    benchmark(lambda: None)
    best_per_cat = {
        category: max(ev.point(category).tops_per_watt for ev in evaluations.values())
        for category in CATEGORIES
    }
    minimax = {
        name: min(
            ev.point(category).tops_per_watt / best_per_cat[category]
            for category in CATEGORIES
        )
        for name, ev in evaluations.items()
    }
    show(
        "Worst-category relative power efficiency: "
        + ", ".join(f"{k}: {v:.2f}" for k, v in sorted(minimax.items(), key=lambda i: -i[1]))
    )
    # Griffin must beat every other design that can exploit activation
    # sparsity -- in particular the plain dual-sparse core it is built
    # from, which is the paper's central claim.  (In this reproduction the
    # weight-only Sparse.B* overachieves on DNN.AB because our causal
    # dual-path scheduler is conservative on the A side; EXPERIMENTS.md
    # discusses the deviation.)
    for rival in ("Sparse.A*", "Sparse.AB*", "TDash.AB", "SparTen.AB", "Baseline"):
        assert minimax["Griffin"] > minimax[rival], rival
    assert minimax["Griffin"] > 0.6


def test_fig8_griffin_vs_sparten_ratios(benchmark, evaluations):
    benchmark(lambda: None)
    """Paper: Griffin is 1.2 / 3.0 / 3.1 / 1.4x more power-efficient than
    SparTen on dense / B / A / AB (we assert the ordering and magnitudes
    loosely -- who wins and by roughly what factor)."""
    ratios = {}
    for category in CATEGORIES:
        g = evaluations["Griffin"].point(category).tops_per_watt
        s = evaluations["SparTen.AB"].point(category).tops_per_watt
        ratios[category.value] = g / s
    show(
        "Griffin vs SparTen power-efficiency ratios: "
        + ", ".join(f"{k}: {v:.2f}" for k, v in ratios.items())
        + "  (paper: dense 1.2, B 3.0, A 3.1, AB 1.4)"
    )
    assert all(r > 1.0 for r in ratios.values())
    assert ratios["DNN.B"] > 1.8
    assert ratios["DNN.A"] > 1.8
    assert ratios["DNN.A"] > ratios["DNN.dense"]


def test_fig8_sparsity_tax(benchmark, evaluations):
    benchmark(lambda: None)
    """On dense models every sparse design pays a tax vs the baseline, and
    Griffin's is far smaller than SparTen's (paper: 29% vs 42% power)."""
    base = evaluations["Baseline"].point(ModelCategory.DENSE).tops_per_watt
    griffin = evaluations["Griffin"].point(ModelCategory.DENSE).tops_per_watt
    sparten = evaluations["SparTen.AB"].point(ModelCategory.DENSE).tops_per_watt
    griffin_tax = 1.0 - griffin / base
    sparten_tax = 1.0 - sparten / base
    show(f"Dense sparsity tax -- Griffin: {griffin_tax:.0%}, SparTen: {sparten_tax:.0%}")
    assert 0.15 < griffin_tax < 0.55
    assert sparten_tax > griffin_tax


def test_fig8_griffin_beats_dual_on_single_sparse(benchmark, evaluations):
    benchmark(lambda: None)
    """The hybrid's reason to exist: better than plain dual-sparse on
    single-sparse models (paper: +25% power efficiency on DNN.B, +23% on
    DNN.A), at the same cost on DNN.AB."""
    for category, min_gain in ((ModelCategory.B, 1.05), (ModelCategory.A, 1.02)):
        g = evaluations["Griffin"].point(category).tops_per_watt
        d = evaluations["Sparse.AB*"].point(category).tops_per_watt
        assert g > min_gain * d, category
    g_ab = evaluations["Griffin"].point(ModelCategory.AB).tops_per_watt
    d_ab = evaluations["Sparse.AB*"].point(ModelCategory.AB).tops_per_watt
    assert g_ab == pytest.approx(d_ab, rel=0.03)
