"""Table IV: benchmark sparsity ratios and dense-baseline latency."""

from repro.config import ModelCategory, dense
from repro.dse.report import format_table
from repro.sim.engine import SimulationOptions
from repro.workloads.registry import BENCHMARKS
from conftest import show


def test_table4_benchmarks(benchmark, session):
    options = SimulationOptions(passes_per_gemm=2, max_t_steps=64)

    def build():
        rows = []
        for info in BENCHMARKS:
            net = info.network
            res = session.simulate(net, dense(), ModelCategory.DENSE, options)
            rows.append(
                {
                    "Network": info.name,
                    "B sparsity": net.weight_sparsity,
                    "(paper)": info.weight_sparsity,
                    "A sparsity": net.act_sparsity,
                    "(paper) ": info.act_sparsity,
                    "Dense cycles": f"{res.cycles:.2e}",
                    "(paper)  ": f"{info.dense_latency_cycles:.1e}",
                }
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    for row, info in zip(rows, BENCHMARKS):
        assert abs(row["B sparsity"] - info.weight_sparsity) < 0.03
        assert abs(row["A sparsity"] - info.act_sparsity) < 0.04
        measured = float(row["Dense cycles"])
        # Absolute dense latency within ~2x of the paper's simulator (ours
        # does not carry its unpublished per-pass pipeline overheads).
        assert 0.3 < measured / info.dense_latency_cycles < 2.0, info.name
    show(format_table(rows, title="Table IV -- benchmarks (paper vs measured)"))
