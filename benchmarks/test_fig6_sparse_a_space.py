"""Figure 6: the activation-only (Sparse.A) design space.

Evaluations run through the shared session (batched ``session.evaluate``).
"""

import pytest

from repro.baselines.sparten import SPARTEN_A, sparten_cost
from repro.config import ModelCategory, SPARSE_A_STAR
from repro.dse.evaluate import ConfigDesign
from repro.dse.report import format_table
from conftest import show

FIG6_POINTS = [
    "A(1,0,0,off)", "A(1,0,0,on)",
    "A(2,0,0,on)", "A(2,1,0,off)", "A(2,1,0,on)",
    "A(2,1,1,on)", "A(2,1,2,on)",
    "A(3,1,0,on)",
    "A(4,0,1,off)", "A(4,0,1,on)",
]


@pytest.fixture(scope="module")
def speedups(session, settings):
    outcome = session.evaluate(FIG6_POINTS, (ModelCategory.A,), settings)
    return {
        notation: evaluation.speedup(ModelCategory.A)
        for notation, evaluation in zip(FIG6_POINTS, outcome.evaluations)
    }


def test_fig6a_speedup_bars(benchmark, session, settings, speedups):
    benchmark.pedantic(
        lambda: session.evaluate_one(
            SPARSE_A_STAR, (ModelCategory.A,), settings
        ).speedup(ModelCategory.A),
        rounds=1, iterations=1,
    )
    rows = [{"Config": k, "DNN.A speedup": v} for k, v in speedups.items()]
    show(format_table(rows, title="Fig. 6(a) -- Sparse.A normalized speedup"))

    s = speedups
    # Obs (1): da1 saturates (~50% ReLU sparsity caps the ideal at ~2x):
    # A(3,1,0,on) barely improves on A(2,1,0,on) (paper: 1.89 vs 1.83).
    assert s["A(3,1,0,on)"] <= s["A(2,1,0,on)"] * 1.12
    # Obs (2): da3 > 0 gives only a small speedup bump.
    assert s["A(2,1,0,on)"] <= s["A(2,1,1,on)"] <= s["A(2,1,0,on)"] * 1.25
    assert s["A(2,1,2,on)"] >= s["A(2,1,1,on)"] * 0.97
    # Obs (3): shuffling boosts performance markedly at da1 = 4.
    assert s["A(4,0,1,on)"] > 1.1 * s["A(4,0,1,off)"]
    # The star lands in the paper's ballpark (1.83x).
    assert 1.3 < s["A(2,1,0,on)"] < 2.2


def test_fig6bc_efficiency_scatter(benchmark, session, settings):
    cats = (ModelCategory.A, ModelCategory.DENSE)
    points = ["A(2,1,0,on)", "A(2,1,1,on)", "A(2,1,2,on)", "A(4,0,1,on)"]

    def run():
        outcome = session.evaluate(points, cats, settings)
        return dict(zip(points, outcome.evaluations))

    evals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "Config": name,
            "Speedup (A)": e.speedup(ModelCategory.A),
            "TOPS/W (A)": e.point(ModelCategory.A).tops_per_watt,
            "TOPS/W (dense)": e.point(ModelCategory.DENSE).tops_per_watt,
        }
        for name, e in evals.items()
    ]
    show(format_table(rows, title="Fig. 6(b)/(c) -- Sparse.A efficiency"))
    # Obs (2) continued: da3 costs power for insignificant speedup, so
    # A(2,1,0,on) is at least as power-efficient as A(2,1,2,on).
    assert (
        evals["A(2,1,0,on)"].point(ModelCategory.A).tops_per_watt
        >= 0.97 * evals["A(2,1,2,on)"].point(ModelCategory.A).tops_per_watt
    )


def test_fig6_sparten_a_comparison(benchmark, session, settings):
    def run():
        sparten_design = ConfigDesign(
            SPARTEN_A,
            power_mw=sparten_cost("A").total_power_mw,
            area_um2=sparten_cost("A").total_area_um2,
        )
        outcome = session.evaluate(
            [SPARSE_A_STAR, sparten_design], (ModelCategory.A,), settings
        )
        return outcome.evaluations

    star, sparten = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        f"Sparse.A* {star.speedup(ModelCategory.A):.2f}x @ "
        f"{star.point(ModelCategory.A).tops_per_watt:.1f} TOPS/W vs SparTen.A "
        f"{sparten.speedup(ModelCategory.A):.2f}x @ "
        f"{sparten.point(ModelCategory.A).tops_per_watt:.1f} TOPS/W"
    )
    # SparTen.A buys its ~2x speedup with far worse efficiency (Sec. VI-B).
    assert (
        star.point(ModelCategory.A).tops_per_watt
        > sparten.point(ModelCategory.A).tops_per_watt
    )
