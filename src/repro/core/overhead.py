"""Hardware-overhead model for sparse borrowing support (Table II, Sec. IV-A).

Supporting sparsity on top of the dense core requires five classes of extra
hardware, all functions of the borrowing distances:

* **ABUF** -- a buffer in front of the A operands, shared by all PEs in a
  row, holding the window of A elements currently reachable.
* **AMUX** -- a multiplexer per multiplier selecting the A operand out of the
  ABUF window (driven by B metadata for Sparse.B, by the arbiter otherwise).
* **BBUF** -- a buffer of B elements, shared by a column of PEs.  Not needed
  when only B is sparse, because B is preprocessed into a compressed stream.
* **BMUX** -- a multiplexer per multiplier selecting the B operand.
* **ADT**  -- adder trees per PE.  Borrowing along the third dimension
  (``d3``) executes an op in a neighbouring PE's multiplier, so its partial
  sum must be routed back through an extra adder tree.

The closed forms below follow the special-case rows of Table II (which pin
down the general formulas; the Sec. VI-B text quotes
``AMUX = 1 + da1*(1+da2)*(1+da3)`` explicitly) and the Sec. IV-A prose for
the dual-sparse family.  All counts are per-multiplier for muxes, per-stream
for buffer depths, and per-PE for adder trees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import ArchConfig


@dataclass(frozen=True)
class HardwareOverhead:
    """Sparsity-support hardware quantities for one architecture.

    Buffer depths are in words per lane-stream; fan-ins in words; adder
    trees per PE (1 means just the dense tree).  ``metadata_bits`` is the
    per-element metadata width stored with preprocessed B (0 when B is not
    preprocessed).
    """

    abuf_depth: int
    amux_fanin: int
    bbuf_depth: int
    bmux_fanin: int
    adder_trees: int
    metadata_bits: int
    per_pe_control: bool
    per_row_arbiter: bool
    shuffler: bool

    @property
    def extra_adder_trees(self) -> int:
        """Adder trees beyond the single dense tree each PE already has."""
        return self.adder_trees - 1

    @property
    def abuf_words_per_row(self) -> int:
        """ABUF words for one PE row (one stream per lane)."""
        return self.abuf_depth

    @property
    def amux_legs(self) -> int:
        """2:1-mux-equivalents per multiplier for the A operand select."""
        return max(0, self.amux_fanin - 1)

    @property
    def bmux_legs(self) -> int:
        return max(0, self.bmux_fanin - 1)


def _metadata_bits(db1: int, db2: int, db3: int) -> int:
    """Per-element metadata width for preprocessed B.

    The metadata encodes which ABUF window entry supplies the matching A
    operand -- ``ceil(log2((1+db1)*(1+db2)))`` bits -- plus one bit steering
    the partial sum to the extra adder tree when ``db3 > 0``.  This
    reproduces the paper's 3 bits for ``B(2,0,1)``; for Griffin's
    ``conf.B(8,0,1)`` it yields 5 where the paper reports 4 (the paper
    presumably merges the unused 16th index with the tree flag); the one-bit
    difference is noted in EXPERIMENTS.md and is negligible in cost.
    """
    index_bits = math.ceil(math.log2((1 + db1) * (1 + db2)))
    tree_bits = 1 if db3 > 0 else 0
    return index_bits + tree_bits


def overhead_of(config: ArchConfig) -> HardwareOverhead:
    """Compute the Table II / Sec. IV-A overhead for an architecture."""
    da1, da2, da3 = config.a.as_tuple()
    db1, db2, db3 = config.b.as_tuple()
    family = config.family

    if family == "Dense":
        return HardwareOverhead(
            abuf_depth=1,
            amux_fanin=1,
            bbuf_depth=1,
            bmux_fanin=1,
            adder_trees=1,
            metadata_bits=0,
            per_pe_control=False,
            per_row_arbiter=False,
            shuffler=config.shuffle,
        )

    if family == "Sparse.A":
        # On-the-fly skipping: an arbiter per PE row scans the ABUF window,
        # AMUX reaches (time x lane x neighbour-row) candidates, and BBUF
        # must hold the B elements matching every reachable A position.
        return HardwareOverhead(
            abuf_depth=1 + da1,
            amux_fanin=1 + da1 * (1 + da2) * (1 + da3),
            bbuf_depth=1 + da1,
            bmux_fanin=1 + da1 * (1 + da2),
            adder_trees=1 + da3,
            metadata_bits=0,
            per_pe_control=False,
            per_row_arbiter=True,
            shuffler=config.shuffle,
        )

    if family == "Sparse.B":
        # B is preprocessed offline into a compressed stream plus metadata,
        # so no BBUF/BMUX is needed; the metadata drives the AMUX directly.
        return HardwareOverhead(
            abuf_depth=1 + db1,
            amux_fanin=1 + db1 * (1 + db2),
            bbuf_depth=0,
            bmux_fanin=0,
            adder_trees=1 + db3,
            metadata_bits=_metadata_bits(db1, db2, db3),
            per_pe_control=False,
            per_row_arbiter=False,
            shuffler=config.shuffle,
        )

    # Sparse.AB (Sec. IV-A): ABUF depth L = (1+da1)(1+db1) shared per row,
    # BBUF depth (1+db1) shared per column, AMUX fan-in
    # 1 + (L-1)(1+da2+db2)(1+da3), BMUX fan-in 1 + da1(1+da2), and
    # (1+da3)(1+db3) adder trees per PE.  Each PE needs private detect/select
    # control because its (A, B) operand pairing is unique.
    abuf_depth = (1 + da1) * (1 + db1)
    return HardwareOverhead(
        abuf_depth=abuf_depth,
        amux_fanin=1 + (abuf_depth - 1) * (1 + da2 + db2) * (1 + da3),
        bbuf_depth=1 + db1,
        bmux_fanin=1 + da1 * (1 + da2),
        adder_trees=(1 + da3) * (1 + db3),
        metadata_bits=_metadata_bits(db1, db2, db3),
        per_pe_control=True,
        per_row_arbiter=True,
        shuffler=config.shuffle,
    )
