"""Griffin morphing logic and the Table III comparison.

A plain dual-sparse design running a single-sparse model *downgrades*: the
nine-entry ABUF and the extra adder tree sit underutilized while the
effective borrowing shrinks to ``Sparse.A(da1,0,0)`` / ``Sparse.B(db1,0,db3)``.
Griffin re-purposes exactly those already-paid resources (Sec. IV-B):

* **conf.B** -- with dense A, the per-PE control idles and the (widened, 4-bit)
  preprocessing metadata indexes the *full* ABUF, turning the nine entries
  into a lookahead-8 window: ``Sparse.B(8,0,1)``.  Only one BBUF entry is
  used, so BMUX selects are pinned to zero.
* **conf.A** -- with dense B, one arbiter per PE row replaces the per-PE
  control; three own-row plus two copied neighbour-row ABUF entries enable
  lane lookaside and the spare adder tree enables row borrowing:
  ``Sparse.A(2,1,1)`` (BMUX fan-in grows from 3 to 5).

The module quantifies both directions against the downgraded dual-sparse
design, reproducing Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ArchConfig, GriffinArch, ModelCategory, sparse_a, sparse_b
from repro.core.overhead import HardwareOverhead, overhead_of


def downgraded_config(dual: ArchConfig, category: ModelCategory) -> ArchConfig:
    """What a non-hybrid dual-sparse design degrades to on single sparsity.

    Per Table III: on ``DNN.A`` the B side idles and lane/row reach is lost
    (per-PE control cannot coordinate across lanes without pairs), leaving
    ``Sparse.A(da1, 0, 0)``; on ``DNN.B`` the runtime pair arbitration keeps
    only the preprocessing reach, ``Sparse.B(db1, db2, db3)``.
    """
    if dual.family != "Sparse.AB":
        raise ValueError(f"downgrade is defined for Sparse.AB designs, got {dual.family}")
    if category is ModelCategory.A:
        return sparse_a(dual.a.d1, 0, 0, shuffle=dual.shuffle)
    if category is ModelCategory.B:
        return sparse_b(dual.b.d1, dual.b.d2, dual.b.d3, shuffle=dual.shuffle)
    raise ValueError(f"downgrade applies to single-sparse categories, got {category}")


@dataclass(frozen=True)
class MorphComparison:
    """One row-pair of Table III."""

    category: ModelCategory
    downgrade: ArchConfig
    morph: ArchConfig
    downgrade_overhead: HardwareOverhead
    morph_overhead: HardwareOverhead

    @property
    def bmux_fanin_change(self) -> tuple[int, int]:
        return (self.downgrade_overhead.bmux_fanin, self.morph_overhead.bmux_fanin)

    @property
    def abuf_entries_used(self) -> tuple[int, int]:
        return (self.downgrade_overhead.abuf_depth, self.morph_overhead.abuf_depth)

    @property
    def metadata_bits(self) -> tuple[int, int]:
        return (self.downgrade_overhead.metadata_bits, self.morph_overhead.metadata_bits)


def compare_morph_vs_downgrade(
    griffin: GriffinArch, category: ModelCategory
) -> MorphComparison:
    """Build the Table III comparison for one single-sparse category."""
    if category not in (ModelCategory.A, ModelCategory.B):
        raise ValueError(f"Table III covers DNN.A and DNN.B, got {category}")
    down = downgraded_config(griffin.conf_ab, category)
    morph = griffin.config_for(category)
    return MorphComparison(
        category=category,
        downgrade=down,
        morph=morph,
        downgrade_overhead=overhead_of(down),
        morph_overhead=overhead_of(morph),
    )


def morph_fits_provisioned_hardware(griffin: GriffinArch) -> dict[str, bool]:
    """Check that each morph reuses (never exceeds) the dual-sparse budget.

    Griffin's claim is that conf.A / conf.B need only *negligible* extra
    hardware on top of conf.AB: the ABUF window, the BBUF, and the adder
    trees must all fit inside what the dual configuration already pays for.
    (The BMUX fan-in and metadata width grow slightly -- the ~1% cost the
    paper reports -- so they are exempt.)
    """
    base = overhead_of(griffin.conf_ab)
    checks = {}
    for label, conf in (("conf.A", griffin.conf_a), ("conf.B", griffin.conf_b)):
        ovh = overhead_of(conf)
        checks[label] = (
            ovh.abuf_depth <= base.abuf_depth
            and ovh.bbuf_depth <= base.bbuf_depth
            and ovh.adder_trees <= base.adder_trees
        )
    return checks


@dataclass(frozen=True)
class GriffinEvaluation:
    """Speedups of a Griffin instance across the four model categories."""

    dense: float
    a: float
    b: float
    ab: float

    def speedup(self, category: ModelCategory) -> float:
        return {
            ModelCategory.DENSE: self.dense,
            ModelCategory.A: self.a,
            ModelCategory.B: self.b,
            ModelCategory.AB: self.ab,
        }[category]
