"""Core models of the Griffin paper: overheads, metrics, hybrid morphing."""

from repro.core.overhead import HardwareOverhead, overhead_of
from repro.core.metrics import (
    EfficiencyPoint,
    effective_tops_per_mm2,
    effective_tops_per_watt,
    geometric_mean,
)
from repro.core.griffin import GriffinEvaluation, MorphComparison, compare_morph_vs_downgrade

__all__ = [
    "HardwareOverhead",
    "overhead_of",
    "EfficiencyPoint",
    "effective_tops_per_watt",
    "effective_tops_per_mm2",
    "geometric_mean",
    "GriffinEvaluation",
    "MorphComparison",
    "compare_morph_vs_downgrade",
]
