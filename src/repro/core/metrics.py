"""Evaluation metrics (Definition V.1 and the paper's reporting rules).

The paper scores a design on a model category by its *effective* throughput
per watt / per square millimetre::

    Effective TOPS/W   = sparsity speedup x dense TOPS/W
    Effective TOPS/mm2 = sparsity speedup x dense TOPS/mm2

where the sparsity speedup is the geometric mean over the benchmark suite
of ``dense cycles / achieved cycles``, dense TOPS is the peak throughput of
the 1024-MAC core, and power/area come from the synthesis-calibrated cost
model.  Note the efficiency of a sparse design on *dense* models is worse
than the dense baseline -- the paper calls that gap the "sparsity tax".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.config import CoreGeometry, PAPER_CORE


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's aggregator across benchmarks."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geometric mean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def dense_tops(geometry: CoreGeometry = PAPER_CORE) -> float:
    """Peak dense TOPS of the core (2 ops per MAC)."""
    return geometry.dense_tops


def effective_tops_per_watt(
    speedup: float, power_mw: float, geometry: CoreGeometry = PAPER_CORE
) -> float:
    """Definition V.1: effective TOPS/W."""
    if power_mw <= 0:
        raise ValueError(f"power must be positive, got {power_mw}")
    return speedup * dense_tops(geometry) / (power_mw * 1e-3)


def effective_tops_per_mm2(
    speedup: float, area_um2: float, geometry: CoreGeometry = PAPER_CORE
) -> float:
    """Definition V.1: effective TOPS/mm^2."""
    if area_um2 <= 0:
        raise ValueError(f"area must be positive, got {area_um2}")
    return speedup * dense_tops(geometry) / (area_um2 * 1e-6)


@dataclass(frozen=True)
class EfficiencyPoint:
    """One (architecture, model category) point of Figs. 5-8."""

    label: str
    category: str
    speedup: float
    power_mw: float
    area_um2: float
    geometry: CoreGeometry = PAPER_CORE

    @property
    def tops_per_watt(self) -> float:
        return effective_tops_per_watt(self.speedup, self.power_mw, self.geometry)

    @property
    def tops_per_mm2(self) -> float:
        return effective_tops_per_mm2(self.speedup, self.area_um2, self.geometry)

    def relative_to(self, other: "EfficiencyPoint") -> tuple[float, float]:
        """(power-efficiency, area-efficiency) ratios vs another point."""
        return (
            self.tops_per_watt / other.tops_per_watt,
            self.tops_per_mm2 / other.tops_per_mm2,
        )
