"""State-of-the-art comparison architectures (Table V / Sec. VII).

Each baseline is expressed in the paper's own framework: a borrowing
configuration for the performance model (Table V maps every design onto the
``da``/``db`` routing dimensions) plus a cost row calibrated against its
Table VII breakdown or published characteristics.
"""

from repro.baselines.bittactical import TCL_B, tcl_b_cost
from repro.baselines.tensordash import TDASH_AB, tdash_ab_cost
from repro.baselines.sparten import (
    SPARTEN_A,
    SPARTEN_AB,
    SPARTEN_B,
    sparten_cost,
)
from repro.baselines.others import CAMBRICON_X, CNVLUTIN
from repro.baselines.registry import BaselineArch, all_baselines, baseline

__all__ = [
    "TCL_B",
    "tcl_b_cost",
    "TDASH_AB",
    "tdash_ab_cost",
    "SPARTEN_A",
    "SPARTEN_B",
    "SPARTEN_AB",
    "sparten_cost",
    "CNVLUTIN",
    "CAMBRICON_X",
    "BaselineArch",
    "all_baselines",
    "baseline",
]
