"""SparTen -- MAC-grained dual sparsity with deep private buffers.

SparTen [18] pairs each MAC with private input buffers (depth 128), a
bitmask inner-join front end, and a private accumulator; it does not unroll
the K dimension across an adder tree.  That buys very deep time-borrowing
on both operands -- in the borrowing framework, large ``da1``/``db1`` with
no lane/PE routing and no shuffling (Table V) -- at an extreme cost: the
Table VII row reports 991 mW and 1139 kum2, dominated by the depth-128
buffers (426 mW / 640 kum2), per-MAC control (133 mW / 227 kum2) and
unshared accumulators (110 mW).

The performance mapping below is an abstraction: our windowed scheduler
models SparTen's greedy inner-join as lookahead-only borrowing with the
window sizes its buffers support.  Its dataflow differences (bitmask
prefix-sums, output-stationary per MAC) are folded into the calibrated
cost row, exactly the abstraction level of the paper's own comparison.
"""

from __future__ import annotations

from repro.config import ArchConfig, ModelCategory, sparse_a, sparse_ab, sparse_b
from repro.hw.cost import CostBreakdown

#: One-sided SparTen variants the paper evaluates (Sec. VI-A/B) and the
#: dual-sparse original, expressed as deep time-only borrowing.
SPARTEN_B: ArchConfig = sparse_b(15, 0, 0, shuffle=False, name="SparTen.B")
SPARTEN_A: ArchConfig = sparse_a(7, 0, 0, shuffle=False, name="SparTen.A")
SPARTEN_AB: ArchConfig = sparse_ab(7, 0, 0, 15, 0, 0, shuffle=False, name="SparTen.AB")

#: Table VII row for SparTen.AB, transcribed: CTRL 133, BUF 213+213,
#: REG/WR 7.5, ACC 110 (1024 private accumulators), MUL 133, SRAM 181.6
#: (mW); areas 227, 320+320, 0.7, 30.2, 41, 200 (kum2).  MUXes are folded
#: into the buffers ("inBUF").
_SPARTEN_AB_COST = CostBreakdown(
    label="SparTen.AB",
    ctrl_power=133.0,
    abuf_power=213.0,
    bbuf_power=213.0,
    reg_power=7.5,
    acc_power=110.0,
    mul_power=133.0,
    sram_power=181.6,
    ctrl_area=227.0,
    abuf_area=320.0,
    bbuf_area=320.0,
    reg_area=0.7,
    acc_area=30.2,
    mul_area=41.0,
    sram_area=200.0,
)

#: One-sided rows, fitted to the Sec. VI text: SparTen.B achieves 3.9x but
#: drops power efficiency 26% below the dense baseline (-> 795 mW) while
#: gaining only 1% area efficiency (-> 840 kum2); SparTen.A reaches 2.0x at
#: 62% power overhead (-> 245 mW) and 3.8 effective TOPS/mm2 (-> 862 kum2,
#: only 8.5% of it compute).
_SPARTEN_B_COST = CostBreakdown(
    label="SparTen.B",
    ctrl_power=100.0, abuf_power=250.0, bbuf_power=160.0, reg_power=7.5,
    acc_power=110.0, mul_power=133.0, sram_power=34.5,
    ctrl_area=180.0, abuf_area=280.0, bbuf_area=240.0, reg_area=0.7,
    acc_area=30.2, mul_area=41.0, sram_area=68.1,
)
_SPARTEN_A_COST = CostBreakdown(
    label="SparTen.A",
    ctrl_power=40.0, abuf_power=30.0, bbuf_power=20.0, reg_power=7.5,
    acc_power=50.0, mul_power=64.0, sram_power=33.3,
    ctrl_area=200.0, abuf_area=280.0, bbuf_area=240.0, reg_area=0.7,
    acc_area=30.2, mul_area=41.0, sram_area=70.1,
)

#: Per-category power (mW): running dense streams leaves the inner-join
#: machinery and deep buffers largely idle, so SparTen's dense power is far
#: below its sparse operating point.  341 mW reproduces the Fig. 8(a)
#: observation that Griffin is 1.2x more power-efficient than SparTen on
#: DNN.dense (991 mW would give 3.5x).
SPARTEN_CATEGORY_POWER_MW: dict[ModelCategory, float] = {
    ModelCategory.DENSE: 341.0,
    ModelCategory.A: 991.0,
    ModelCategory.B: 991.0,
    ModelCategory.AB: 991.0,
}


def sparten_cost(variant: str = "AB") -> CostBreakdown:
    """Cost row for a SparTen variant (``"A"``, ``"B"`` or ``"AB"``)."""
    rows = {"A": _SPARTEN_A_COST, "B": _SPARTEN_B_COST, "AB": _SPARTEN_AB_COST}
    try:
        return rows[variant.upper()]
    except KeyError:
        raise ValueError(f"unknown SparTen variant {variant!r}; use A, B or AB") from None
