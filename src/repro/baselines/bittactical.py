"""Bit-Tactical (TCL) -- weight-only sparsity via static scheduling.

TCL [13] compresses weights offline by routing nonzeros in time (lookahead)
and input channel (lookaside) with a lightweight input multiplexing network;
it does not route across output channels (``db3 = 0``) and has no shuffler
(Table V).  In the paper's framework that is ``Sparse.B(2, 2, 0, off)`` --
lookahead 2 with a 2-lane lookaside keeps the AMUX fan-in at 7, matching
TCL's published mux network size.

The paper's headline for this comparison (Sec. VI-A): adding shuffling and
``db3 > 0`` on top of a TCL-style design -- i.e. moving to Sparse.B* --
buys up to 47% more power efficiency.
"""

from __future__ import annotations

from repro.config import ArchConfig, sparse_b
from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary, FamilyCalibration
from repro.hw.cost import CostBreakdown, cost_of

#: TCL.B expressed in the borrowing framework (Table V row).
TCL_B: ArchConfig = sparse_b(2, 2, 0, shuffle=False, name="TCL.B")

#: Calibration fitted to the Table VII TCL.B row: REG/WR 24.3 mW
#: (factor 1.066), MUL 85.9 mW (activity 1.372 -- TCL keeps multipliers
#: busier per cycle), SRAM 57.2 mW at provisioned BW 3x (beta 0.359) with
#: near-baseline banking (area 179 kum2, factor 1.017).
TCL_CALIBRATION = FamilyCalibration(
    reg_factor=1.066,
    mul_activity=1.372,
    sram_beta=0.359,
    sram_area_factor=1.017,
)


def tcl_b_cost(library: ComponentLibrary = DEFAULT_LIBRARY) -> CostBreakdown:
    """Table VII-style cost row for TCL.B."""
    return cost_of(TCL_B, library=library, calibration=TCL_CALIBRATION, label="TCL.B")
