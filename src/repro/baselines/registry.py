"""Registry of comparison architectures with their Table V routing rows."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ArchConfig, ModelCategory, dense
from repro.hw.cost import CostBreakdown, cost_of
from repro.baselines.bittactical import TCL_B, tcl_b_cost
from repro.baselines.others import CAMBRICON_X, CNVLUTIN
from repro.baselines.sparten import (
    SPARTEN_AB,
    SPARTEN_CATEGORY_POWER_MW,
    sparten_cost,
)
from repro.baselines.tensordash import TDASH_AB, tdash_ab_cost


@dataclass(frozen=True)
class BaselineArch:
    """A comparison design: borrowing config + calibrated cost row.

    ``category_power_mw`` optionally overrides total power per model
    category (SparTen's sparse machinery idles on dense streams).
    """

    name: str
    config: ArchConfig
    cost: CostBreakdown
    sparsity_support: str
    category_power_mw: dict[ModelCategory, float] | None = None

    def power_mw(self, category: ModelCategory) -> float:
        if self.category_power_mw and category in self.category_power_mw:
            return self.category_power_mw[category]
        return self.cost.total_power_mw

    def routing_row(self) -> dict[str, object]:
        """One Table V row: which routing dimensions the design uses."""
        return {
            "Architecture": self.name,
            "da1": self.config.a.d1,
            "da2": self.config.a.d2,
            "da3": self.config.a.d3,
            "db1": self.config.b.d1,
            "db2": self.config.b.d2,
            "db3": self.config.b.d3,
            "Shuffle": self.config.shuffle,
            "Sparsity": self.sparsity_support,
        }


def all_baselines() -> list[BaselineArch]:
    """The paper's comparison set (Table V)."""
    return [
        BaselineArch(
            name="Baseline",
            config=dense(),
            cost=cost_of(dense()),
            sparsity_support="Dense",
        ),
        BaselineArch(
            name="BitTactical",
            config=TCL_B,
            cost=tcl_b_cost(),
            sparsity_support="Weight Only",
        ),
        BaselineArch(
            name="TensorDash",
            config=TDASH_AB,
            cost=tdash_ab_cost(),
            sparsity_support="Dual Sparsity",
        ),
        BaselineArch(
            name="SparTen",
            config=SPARTEN_AB,
            cost=sparten_cost("AB"),
            sparsity_support="Dual Sparsity",
            category_power_mw=SPARTEN_CATEGORY_POWER_MW,
        ),
        BaselineArch(
            name="Cnvlutin",
            config=CNVLUTIN,
            cost=cost_of(CNVLUTIN, label="Cnvlutin"),
            sparsity_support="Activation Only",
        ),
        BaselineArch(
            name="Cambricon-X",
            config=CAMBRICON_X,
            cost=cost_of(CAMBRICON_X, label="Cambricon-X"),
            sparsity_support="Weight Only",
        ),
    ]


def baseline_names() -> list[str]:
    """Names of the Table V comparison set, as :func:`baseline` accepts them."""
    return [arch.name for arch in all_baselines()]


def baseline(name: str) -> BaselineArch:
    """Look a baseline up by (case-insensitive) name."""
    for arch in all_baselines():
        if arch.name.lower() == name.lower():
            return arch
    raise KeyError(f"unknown baseline {name!r}")
