"""Earlier single-sparse designs quantified by the paper's framework.

Cnvlutin [7] compresses activations in time only, with no shuffling; in
the borrowing framework that is deep ``da1`` with no lane/PE routing.
Cambricon-X [70] routes nonzero weights through a 16x16 window -- full-depth
``db1``/``db2`` -- whose activation crossbar and bandwidth the paper calls
out as the scaling limit.  Both serve the related-work comparison; the
paper's headline SOTA comparisons use TCL, TensorDash and SparTen.
"""

from __future__ import annotations

from repro.config import ArchConfig, sparse_a, sparse_b

#: Cnvlutin: activation-only, time-compressed (Sec. VII).
CNVLUTIN: ArchConfig = sparse_a(7, 0, 0, shuffle=False, name="Cnvlutin")

#: Cambricon-X: weight-only, 16x16 routing window (Sec. VII).
CAMBRICON_X: ArchConfig = sparse_b(15, 15, 0, shuffle=False, name="Cambricon-X")
