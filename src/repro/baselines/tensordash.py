"""TensorDash -- dual sparsity without weight preprocessing.

TensorDash [43] attaches a small sparse interconnect in front of each
multiplier and skips ineffectual pairs on the fly on *both* operand sides;
unlike Griffin it never preprocesses the weight tensor, so its BBUF must
hold raw (uncompressed) weights and its per-PE control carries the full
pair-matching burden (the paper: "Both architectures do not exploit the
benefits of weight preprocessing which can save the BBUF depth, BMUX fan-in
size, and control overheads").

In the borrowing framework TensorDash routes one step in time and two lanes
aside on each operand -- ``Sparse.AB(1, 2, 0, 1, 2, 0, off)`` -- matching
its published 4-input multiplexer per operand and no shuffler (Table V).
"""

from __future__ import annotations

from repro.config import ArchConfig, sparse_ab
from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary, FamilyCalibration
from repro.hw.cost import CostBreakdown, cost_of

#: TDash.AB expressed in the borrowing framework (Table V row).
TDASH_AB: ArchConfig = sparse_ab(1, 2, 0, 1, 2, 0, shuffle=False, name="TDash.AB")

#: Calibration fitted to the Table VII TDash.AB row: REG/WR 24.3 mW
#: (factor 1.066), MUL 85.9 mW (activity 1.372), SRAM 84.1 mW at
#: provisioned BW 4x (beta 0.508), banked area 196 kum2 (factor 1.114).
#: The BBUF power factor 2.0 reflects holding *uncompressed* weights plus
#: on-the-fly zero detection (no preprocessing); ABUF stays single-ported
#: (Table VII: 5.8 mW over 256 words).
TDASH_CALIBRATION = FamilyCalibration(
    reg_factor=1.066,
    mul_activity=1.372,
    sram_beta=0.508,
    sram_area_factor=1.114,
    abuf_power_factor=0.99,
    abuf_area_factor=1.0,
    bbuf_power_factor=1.98,
    bbuf_area_factor=2.0,
)


def tdash_ab_cost(library: ComponentLibrary = DEFAULT_LIBRARY) -> CostBreakdown:
    """Table VII-style cost row for TDash.AB."""
    return cost_of(TDASH_AB, library=library, calibration=TDASH_CALIBRATION, label="TDash.AB")
