"""Per-inference energy and energy-delay metrics.

The paper scores designs by effective TOPS/W and TOPS/mm^2 (Definition
V.1); a downstream user deploying at the edge usually asks the adjacent
question -- how many millijoules does one inference cost, and what is the
energy-delay product?  These derive directly from the cycle simulator and
the calibrated power model, so the library exposes them as first-class
metrics (and the ablation benches use EDP to show where deep borrowing
stops paying).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ArchConfig, CoreGeometry, ModelCategory, PAPER_CORE
from repro.hw.cost import CostBreakdown, cost_of, gated_power_mw
from repro.sim.engine import NetworkSimResult


@dataclass(frozen=True)
class EnergyReport:
    """Latency/energy of one network inference on one design."""

    label: str
    network: str
    cycles: float
    power_mw: float
    geometry: CoreGeometry = PAPER_CORE

    @property
    def latency_ms(self) -> float:
        return self.cycles / (self.geometry.frequency_mhz * 1e3)

    @property
    def energy_mj(self) -> float:
        """Millijoules per inference (power x latency)."""
        return self.power_mw * self.latency_ms * 1e-3

    @property
    def edp(self) -> float:
        """Energy-delay product in mJ x ms (lower is better)."""
        return self.energy_mj * self.latency_ms


def inference_energy(
    result: NetworkSimResult,
    config: ArchConfig,
    cost: CostBreakdown | None = None,
) -> EnergyReport:
    """Energy of one simulated inference.

    Uses the clock-gated operating power for the result's model category,
    so a sparse design running dense models is charged its gated power.
    """
    cost = cost or cost_of(config)
    power = gated_power_mw(cost, config, result.category)
    return EnergyReport(
        label=config.label,
        network=result.network,
        cycles=result.cycles,
        power_mw=power,
        geometry=config.geometry,
    )


def energy_ratio(sparse: EnergyReport, baseline: EnergyReport) -> float:
    """How many times less energy the sparse design uses per inference."""
    if sparse.energy_mj <= 0:
        raise ValueError("sparse energy must be positive")
    return baseline.energy_mj / sparse.energy_mj
