"""Power/area cost model calibrated against the paper's 7 nm synthesis."""

from repro.hw.components import ComponentLibrary, DEFAULT_LIBRARY, FAMILY_CALIBRATION
from repro.hw.cost import (
    CostBreakdown,
    cost_of,
    gated_power_mw,
    griffin_category_power_mw,
    griffin_cost,
    provisioned_bandwidth_scale,
)
from repro.hw.energy import EnergyReport, energy_ratio, inference_energy

__all__ = [
    "ComponentLibrary",
    "DEFAULT_LIBRARY",
    "FAMILY_CALIBRATION",
    "CostBreakdown",
    "cost_of",
    "gated_power_mw",
    "griffin_category_power_mw",
    "griffin_cost",
    "provisioned_bandwidth_scale",
    "EnergyReport",
    "inference_energy",
    "energy_ratio",
]
