"""Power/area composition for borrowing architectures (Table VII).

``cost_of`` combines the structural overhead model (Table II / Sec. IV-A
counts) with the calibrated component library into the same breakdown
Table VII reports: CTRL, SHF, ABUF, BBUF, and the PE's REG/WR, ACC, MUL,
ADT, MUX columns plus SRAM.  Power is in milliwatts, area in thousands of
square microns, matching the paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.config import ArchConfig, CoreGeometry, GriffinArch, ModelCategory, dense
from repro.core.overhead import HardwareOverhead, overhead_of
from repro.hw.components import (
    DEFAULT_LIBRARY,
    FAMILY_CALIBRATION,
    ComponentLibrary,
    FamilyCalibration,
)


@dataclass(frozen=True)
class CostBreakdown:
    """One Table VII row: per-component power (mW) and area (k um^2)."""

    label: str
    ctrl_power: float = 0.0
    shf_power: float = 0.0
    abuf_power: float = 0.0
    bbuf_power: float = 0.0
    reg_power: float = 0.0
    acc_power: float = 0.0
    mul_power: float = 0.0
    adt_power: float = 0.0
    mux_power: float = 0.0
    sram_power: float = 0.0
    ctrl_area: float = 0.0
    shf_area: float = 0.0
    abuf_area: float = 0.0
    bbuf_area: float = 0.0
    reg_area: float = 0.0
    acc_area: float = 0.0
    mul_area: float = 0.0
    adt_area: float = 0.0
    mux_area: float = 0.0
    sram_area: float = 0.0

    @property
    def total_power_mw(self) -> float:
        return sum(
            getattr(self, f.name)
            for f in fields(self)
            if f.name.endswith("_power")
        )

    @property
    def total_area_kum2(self) -> float:
        return sum(
            getattr(self, f.name)
            for f in fields(self)
            if f.name.endswith("_area")
        )

    @property
    def total_area_um2(self) -> float:
        return self.total_area_kum2 * 1e3

    def power_row(self) -> dict[str, float]:
        """The power cells in Table VII column order."""
        return {
            "CTRL": self.ctrl_power,
            "SHF": self.shf_power,
            "ABUF": self.abuf_power,
            "BBUF": self.bbuf_power,
            "REG/WR": self.reg_power,
            "ACC": self.acc_power,
            "MUL": self.mul_power,
            "ADT": self.adt_power,
            "MUX": self.mux_power,
            "SRAM": self.sram_power,
        }

    def area_row(self) -> dict[str, float]:
        return {
            "CTRL": self.ctrl_area,
            "SHF": self.shf_area,
            "ABUF": self.abuf_area,
            "BBUF": self.bbuf_area,
            "REG/WR": self.reg_area,
            "ACC": self.acc_area,
            "MUL": self.mul_area,
            "ADT": self.adt_area,
            "MUX": self.mux_area,
            "SRAM": self.sram_area,
        }


def provisioned_bandwidth_scale(config: ArchConfig) -> float:
    """SRAM bandwidth multiple a design provisions over the dense baseline.

    The paper sizes SRAM BW to the design's ideal speedup -- the combined
    lookahead window ``(1+da1)(1+db1)`` (Sec. V).
    """
    return float((1 + config.a.d1) * (1 + config.b.d1))


def _mux_counts(config: ArchConfig, ovh: HardwareOverhead, geometry: CoreGeometry) -> int:
    """Total 2:1-mux-equivalent legs in the operand-select network.

    AMUXes driven by a per-row arbiter (Sparse.A) are shared by the row's
    PEs (the selected A ops are common to every column); metadata-driven
    AMUXes (Sparse.B) and all dual-sparse muxes are per multiplier, as is
    every BMUX (Sec. III).
    """
    lanes = geometry.k0
    per_mult = geometry.macs_per_cycle
    per_row = geometry.m0 * lanes
    amux_legs = max(0, ovh.amux_fanin - 1)
    bmux_legs = max(0, ovh.bmux_fanin - 1)
    if config.family == "Sparse.A":
        return amux_legs * per_row + bmux_legs * per_mult
    return amux_legs * per_mult + bmux_legs * per_mult


def cost_of(
    config: ArchConfig,
    library: ComponentLibrary = DEFAULT_LIBRARY,
    calibration: FamilyCalibration | None = None,
    label: str | None = None,
) -> CostBreakdown:
    """Compose the Table VII-style cost of an architecture configuration."""
    geometry = config.geometry
    ovh = overhead_of(config)
    cal = calibration or FAMILY_CALIBRATION[config.family]
    lanes, n0, m0 = geometry.k0, geometry.n0, geometry.m0
    n_pe = geometry.num_pes
    n_mult = geometry.macs_per_cycle

    # Buffers: ABUF streams are per (row, lane); BBUF per (column, lane).
    abuf_words = ovh.abuf_depth * lanes * m0 if ovh.abuf_depth > 1 else 0
    bbuf_words = ovh.bbuf_depth * lanes * n0 if ovh.bbuf_depth > 1 else 0
    abuf_power = abuf_words * library.buf_power_uw_per_word * cal.abuf_power_factor / 1e3
    abuf_area = abuf_words * library.buf_area_um2_per_word * cal.abuf_area_factor / 1e3
    bbuf_power = bbuf_words * library.buf_power_uw_per_word * cal.bbuf_power_factor / 1e3
    bbuf_area = bbuf_words * library.buf_area_um2_per_word * cal.bbuf_area_factor / 1e3

    # Control: per-PE pair detection (dual) and/or per-row arbiters.
    ctrl_power = 0.0
    ctrl_area = 0.0
    if ovh.per_pe_control:
        ctrl_power += n_pe * library.pe_ctrl_power_uw / 1e3
        ctrl_area += n_pe * library.pe_ctrl_area_um2 / 1e3
    if ovh.per_row_arbiter and not ovh.per_pe_control:
        ctrl_power += m0 * library.row_arbiter_power_uw / 1e3
        ctrl_area += m0 * library.row_arbiter_area_um2 / 1e3

    # Shuffler: one rotation network per sparse operand path.
    sides = int(config.supports_a_sparsity) + int(config.supports_b_sparsity)
    shf_power = library.shuffler_power_mw_per_side * sides if ovh.shuffler else 0.0
    shf_area = library.shuffler_area_kum2_per_side * sides if ovh.shuffler else 0.0

    # PE datapath.
    reg_power = library.reg_base_power_mw * cal.reg_factor
    reg_area = library.reg_base_area_kum2 * (1.0 + 0.9 * (cal.reg_factor - 1.0))
    acc_power = n_pe * library.acc_power_uw / 1e3
    acc_area = n_pe * library.acc_area_um2 / 1e3
    mul_power = n_mult * library.mul_power_uw * cal.mul_activity / 1e3
    mul_area = n_mult * library.mul_area_um2 / 1e3
    trees = ovh.adder_trees
    adt_power = (
        n_pe * library.adt_power_uw * (1.0 + cal.extra_adt_activity * (trees - 1)) / 1e3
    )
    adt_area = n_pe * trees * library.adt_area_um2 / 1e3
    mux_legs = _mux_counts(config, ovh, geometry)
    mux_power = mux_legs * library.mux_power_uw_per_leg / 1e3
    mux_area = mux_legs * library.mux_area_um2_per_leg / 1e3

    # SRAM: power scales with the provisioned bandwidth, area with banking.
    bw = provisioned_bandwidth_scale(config)
    sram_power = library.sram_base_power_mw * (1.0 + cal.sram_beta * (bw - 1.0))
    sram_area = library.sram_base_area_kum2 * cal.sram_area_factor

    return CostBreakdown(
        label=label or config.label,
        ctrl_power=ctrl_power,
        shf_power=shf_power,
        abuf_power=abuf_power,
        bbuf_power=bbuf_power,
        reg_power=reg_power,
        acc_power=acc_power,
        mul_power=mul_power,
        adt_power=adt_power,
        mux_power=mux_power,
        sram_power=sram_power,
        ctrl_area=ctrl_area,
        shf_area=shf_area,
        abuf_area=abuf_area,
        bbuf_area=bbuf_area,
        reg_area=reg_area,
        acc_area=acc_area,
        mul_area=mul_area,
        adt_area=adt_area,
        mux_area=mux_area,
        sram_area=sram_area,
    )


def griffin_cost(
    griffin: GriffinArch, library: ComponentLibrary = DEFAULT_LIBRARY
) -> CostBreakdown:
    """Cost of the hybrid Griffin core.

    Griffin pays the dual-sparse (conf.AB) hardware plus the small morphing
    additions Table III/VII quantify: the BMUX fan-in growth of conf.A
    (3 -> 5 inputs per multiplier), the widened conf.B metadata, and the
    morph-control in each PE (Table VII: +1.8 mW / +3.2 kum2 MUX and
    +1.3 kum2 CTRL over Sparse.AB*).
    """
    base = cost_of(griffin.conf_ab, library=library, label=griffin.label)
    ab_ovh = overhead_of(griffin.conf_ab)
    a_ovh = overhead_of(griffin.conf_a)
    extra_bmux_legs = max(0, a_ovh.bmux_fanin - ab_ovh.bmux_fanin)
    mux_power = base.mux_power + extra_bmux_legs * (
        library.mux_power_uw_per_leg * griffin.geometry.macs_per_cycle / 1e3
    )
    mux_area = base.mux_area + extra_bmux_legs * (
        library.mux_area_um2_per_leg * griffin.geometry.macs_per_cycle / 1e3
    )
    # Morph-mode control (configuration registers, metadata width switch).
    ctrl_area = base.ctrl_area * 1.16
    return CostBreakdown(
        label=griffin.label,
        ctrl_power=base.ctrl_power,
        shf_power=base.shf_power,
        abuf_power=base.abuf_power,
        bbuf_power=base.bbuf_power,
        reg_power=base.reg_power,
        acc_power=base.acc_power,
        mul_power=base.mul_power,
        adt_power=base.adt_power,
        mux_power=mux_power,
        sram_power=base.sram_power,
        ctrl_area=ctrl_area,
        shf_area=base.shf_area,
        abuf_area=base.abuf_area,
        bbuf_area=base.bbuf_area,
        reg_area=base.reg_area,
        acc_area=base.acc_area,
        mul_area=base.mul_area,
        adt_area=base.adt_area,
        mux_area=base.mux_area,
        sram_area=base.sram_area,
    )


#: Fraction of idle sparse-machinery power removed by clock gating.
#: Calibrated to the paper's per-category overhead statements: Sparse.B*
#: "imposes 16% power overhead compared to dense baseline" on DNN.dense
#: (175 mW vs its 206 mW sparse operating point), and Griffin's dense
#: "sparsity tax" is 29% (~213 mW vs 284 mW) -- both solved by gating
#: ~55% of the overhead above the dense-equivalent core.
DENSE_GATING = 0.55


def gated_power_mw(
    cost: CostBreakdown, config: ArchConfig, category: ModelCategory
) -> float:
    """Operating power of a design while running one model category.

    Table VII reports power at each design's sparse operating point; when a
    model category leaves part of the sparse machinery idle, clock gating
    recovers ``DENSE_GATING`` of that machinery's power:

    * on dense models, everything above the dense-equivalent core idles;
    * a dual-sparse core on weight-only models bypasses the per-PE pair
      control and most of the BBUF (Table III);
    * a dual-sparse core on activation-only models idles the per-PE control
      (one arbiter per row takes over -- Table III).
    """
    active_a = config.supports_a_sparsity and category.activations_sparse
    active_b = config.supports_b_sparsity and category.weights_sparse
    total = cost.total_power_mw
    if active_a and active_b:
        return total
    if not active_a and not active_b:
        dense_equiv = cost_of(dense(config.geometry)).total_power_mw
        overhead = max(0.0, total - dense_equiv)
        return dense_equiv + (1.0 - DENSE_GATING) * overhead
    if config.family == "Sparse.AB":
        if active_b:
            return total - DENSE_GATING * (cost.bbuf_power + cost.ctrl_power)
        return total - DENSE_GATING * cost.ctrl_power
    return total


def griffin_category_power_mw(
    griffin: GriffinArch, cost: CostBreakdown, category: ModelCategory
) -> float:
    """Griffin's operating power per category.

    The hybrid gates like the dual-sparse core it is built from; on DNN.A
    its per-PE controllers are *bypassed* (a per-row arbiter coordinates
    instead -- Table III), the same saving as on DNN.B minus the BBUF,
    which conf.A keeps busy.
    """
    if category is ModelCategory.AB:
        return cost.total_power_mw
    if category is ModelCategory.B:
        return cost.total_power_mw - DENSE_GATING * (cost.bbuf_power + cost.ctrl_power)
    if category is ModelCategory.A:
        return cost.total_power_mw - DENSE_GATING * cost.ctrl_power
    return gated_power_mw(cost, griffin.conf_ab, category)
