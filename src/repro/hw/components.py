"""7 nm component cost library calibrated against Table VII.

The paper synthesizes its designs in SystemVerilog with Synopsys DC at 7 nm
(800 MHz, 0.71 V) and reports per-component power/area for eight designs
(Table VII).  We cannot re-run synthesis, so this module captures the same
information as a *unit-cost library*: per-multiplier, per-buffer-word,
per-mux-leg, per-adder-tree costs fitted to the published breakdowns, plus
per-family calibration factors for quantities synthesis determines and a
structural model cannot (pipeline register depth, operand toggle activity,
SRAM banking).  Every constant's provenance is the Table VII cell(s) named
in its comment; the Table VII reproduction bench prints model-vs-paper for
every cell.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentLibrary:
    """Per-unit power (microwatts) and area (square microns) at 7 nm.

    Derived from the dense-baseline and Sparse.B*/Sparse.A* rows of
    Table VII (1024 INT8 MACs, 64 PEs, 800 MHz, 0.71 V).
    """

    # Baseline row: MUL 62.6 mW / 29.0 kum2 over 1024 multipliers.
    mul_power_uw: float = 61.1
    mul_area_um2: float = 28.3
    # Baseline row: ACC 10.9 mW / 2.6 kum2 over 64 PE accumulators.
    acc_power_uw: float = 170.0
    acc_area_um2: float = 40.6
    # Baseline row: ADT 21.8 mW / 6.7 kum2 over 64 adder trees.
    adt_power_uw: float = 340.0
    adt_area_um2: float = 105.0
    # Baseline row: pipeline registers and wires, whole-core.
    reg_base_power_mw: float = 22.8
    reg_base_area_kum2: float = 3.2
    # Sparse.B* ABUF (320 words -> 7.5 mW / 2.0 kum2) and Sparse.A* BBUF
    # (768 words -> 17.8 mW / 3.8 kum2): ~23 uW and ~5.4 um2 per 8-bit word.
    buf_power_uw_per_word: float = 23.0
    buf_area_um2_per_word: float = 5.4
    # Sparse.B* MUX column: AMUX fan-in 5 over 1024 multipliers
    # (4096 2:1-legs) -> 3.5 mW / 6.5 kum2.
    mux_power_uw_per_leg: float = 0.85
    mux_area_um2_per_leg: float = 1.59
    # Sparse.AB* CTRL: 18.2 mW / 8.1 kum2 over 64 per-PE controllers.
    pe_ctrl_power_uw: float = 285.0
    pe_ctrl_area_um2: float = 127.0
    # Sparse.A* CTRL: 1.2 mW / 0.7 kum2 over 4 per-row arbiters.
    row_arbiter_power_uw: float = 300.0
    row_arbiter_area_um2: float = 175.0
    # Shuffler (K0/4 local 4x4 crossbars per side): Sparse.B* 0.7 mW /
    # 0.9 kum2 (one side), Sparse.AB* 1.4 mW / 1.6 kum2 (both sides).
    shuffler_power_mw_per_side: float = 0.7
    shuffler_area_kum2_per_side: float = 0.8
    # Baseline SRAM (512 kB ASRAM + 32 kB BSRAM): 33.3 mW / 176 kum2.
    sram_base_power_mw: float = 33.3
    sram_base_area_kum2: float = 176.0


#: The default calibrated library.
DEFAULT_LIBRARY = ComponentLibrary()


@dataclass(frozen=True)
class FamilyCalibration:
    """Synthesis-determined factors a structural model cannot predict.

    * ``reg_factor`` -- REG/WR growth from the deeper sparse pipeline and
      metadata staging (Table VII REG/WR column vs baseline 22.8 mW).
    * ``mul_activity`` -- multiplier toggle activity under the family's
      operand streams (Table VII MUL column vs baseline 62.6 mW).
    * ``sram_beta`` -- SRAM power growth per unit of provisioned bandwidth
      (Table VII SRAM column; the paper scales SRAM BW with the design's
      ideal speedup).
    * ``sram_area_factor`` -- banking overhead of the higher-BW SRAM.
    * ``abuf_power_factor`` / ``abuf_area_factor`` -- multiport overhead of
      the dual-sparse ABUF (per-PE private reads; Table VII Sparse.AB* ABUF
      row vs word count).
    * ``extra_adt_activity`` -- power activity of the extra adder trees
      (their area is fully paid; they toggle only on borrowed ops).
    """

    reg_factor: float
    mul_activity: float
    sram_beta: float
    sram_area_factor: float
    abuf_power_factor: float = 1.0
    abuf_area_factor: float = 1.0
    bbuf_power_factor: float = 1.0
    bbuf_area_factor: float = 1.0
    extra_adt_activity: float = 0.1


#: Calibration per architecture family, fitted to the Table VII rows named
#: in the comments (reg_factor = REG/WR cell / 22.8, mul_activity = MUL cell
#: / 62.6, sram_beta solves SRAM cell = 33.3 * (1 + beta * (bw - 1))).
FAMILY_CALIBRATION: dict[str, FamilyCalibration] = {
    # Baseline row.
    "Dense": FamilyCalibration(
        reg_factor=1.0, mul_activity=1.0, sram_beta=0.0, sram_area_factor=1.0
    ),
    # Sparse.B* row: REG/WR 41.0, MUL 55.4, SRAM 66.7 @ bw=5, area 196.
    "Sparse.B": FamilyCalibration(
        reg_factor=1.80, mul_activity=0.885, sram_beta=0.25, sram_area_factor=1.114
    ),
    # Sparse.A* row: REG/WR 23.2, MUL 67.2, SRAM 78.2 @ bw=3, area 196.
    "Sparse.A": FamilyCalibration(
        reg_factor=1.02, mul_activity=1.073, sram_beta=0.675, sram_area_factor=1.114
    ),
    # Sparse.AB* row: REG/WR 64.5, MUL 31.7, SRAM 92.3 @ bw=9, area 188;
    # ABUF 15.3 mW / 11.5 kum2 over 576 words vs 13.2 mW / 3.1 kum2
    # structural; BBUF 22.9 / 5.2 over 768 words vs 17.7 / 4.1.
    "Sparse.AB": FamilyCalibration(
        reg_factor=2.83,
        mul_activity=0.506,
        sram_beta=0.221,
        sram_area_factor=1.068,
        abuf_power_factor=1.16,
        abuf_area_factor=3.63,
        bbuf_power_factor=1.29,
        bbuf_area_factor=1.25,
    ),
}
