"""Persistence of the surrogate's fitted constants.

The calibrated constants are plain data -- one coefficient vector per
effective scheduling family plus the calibration report that was measured
when they were fitted -- and they are only meaningful against the engine
arithmetic they were fitted to.  The JSON document therefore embeds
:data:`repro.sim.engine.SIMULATION_KEY_VERSION`: a version bump (any
result-changing engine edit) invalidates the constants the same way it
invalidates the persistent cache, and :func:`load_constants` refuses to
load them until ``repro surrogate fit`` refreshes the golden.

The committed golden lives next to this module (``constants.json``) and is
what :meth:`repro.surrogate.model.SurrogateModel.load_default` and the
``fidelity: "multi"`` search mode use out of the box.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.sim.engine import SIMULATION_KEY_VERSION

#: Bump on incompatible changes to the constants-document shape.
CONSTANTS_FORMAT_VERSION = 1

#: The committed golden (refreshed by ``repro surrogate fit``).
DEFAULT_CONSTANTS_PATH = Path(__file__).parent / "constants.json"


#: Wildcard workload key: the pooled per-family fallback vector, fitted on
#: every row of the (regime, family) group, applied to workloads outside
#: the calibration suite.
ANY_WORKLOAD = "*"


@dataclass(frozen=True)
class FamilyConstants:
    """One fitted correction vector.

    Corrections are keyed three ways: by sampling **regime** (the exact
    ``SimulationOptions`` the corpus was simulated under -- sampled cycle
    counts at 1x16 and at 3x64 are different populations and need
    different corrections), by effective scheduling **family** (``b`` /
    ``a`` / ``ab``, after Sparse.AB data downgrades), and by **workload**
    (the network fingerprint -- calibration is against the paper's fixed
    Table IV suite, and the config x layer-mix interaction is what the
    per-workload vectors absorb; :data:`ANY_WORKLOAD` marks the pooled
    fallback).  ``feature_names`` documents (and guards) the feature basis
    the vector was fitted against: predictions refuse to apply a vector
    whose basis does not match the code's current one.
    """

    regime: str
    family: str
    workload: str
    feature_names: tuple[str, ...]
    theta: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.feature_names) != len(self.theta):
            raise ValueError(
                f"family {self.family!r}: {len(self.theta)} coefficients for "
                f"{len(self.feature_names)} features"
            )

    def to_dict(self) -> dict:
        return {
            "regime": self.regime,
            "family": self.family,
            "workload": self.workload,
            "feature_names": list(self.feature_names),
            "theta": list(self.theta),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "FamilyConstants":
        return FamilyConstants(
            regime=str(data["regime"]),
            family=str(data["family"]),
            workload=str(data["workload"]),
            feature_names=tuple(str(n) for n in data["feature_names"]),
            theta=tuple(float(t) for t in data["theta"]),
        )


@dataclass(frozen=True)
class SurrogateConstants:
    """The full fitted-constants document (what ``constants.json`` holds).

    ``report`` records the per-workload calibration errors measured at fit
    time -- the numbers the error-budget test and ``repro surrogate check``
    hold the model to; ``corpus`` describes what the fit saw (spaces,
    workload fingerprints, per-regime sampling options, row counts) so a
    reader can tell exactly which exact results produced the constants.
    """

    simulation_key_version: str
    families: tuple[FamilyConstants, ...]
    corpus: Mapping
    report: tuple[Mapping, ...]

    def family(
        self, regime: str, name: str, workload: str = ANY_WORKLOAD
    ) -> FamilyConstants:
        """The correction vector for one (regime, family, workload) key.

        An uncalibrated workload falls back to the regime+family's pooled
        :data:`ANY_WORKLOAD` vector; an uncalibrated regime or family is
        an error (the closed form alone is not within budget).
        """
        fallback = None
        for fam in self.families:
            if fam.regime != regime or fam.family != name:
                continue
            if fam.workload == workload:
                return fam
            if fam.workload == ANY_WORKLOAD:
                fallback = fam
        if fallback is not None:
            return fallback
        raise KeyError(
            f"no fitted constants for scheduling family {name!r} in "
            f"regime {regime!r} (have "
            f"{sorted({(f.regime, f.family) for f in self.families})})"
        )

    def to_dict(self) -> dict:
        return {
            "format_version": CONSTANTS_FORMAT_VERSION,
            "simulation_key_version": self.simulation_key_version,
            "families": [fam.to_dict() for fam in self.families],
            "corpus": dict(self.corpus),
            "report": [dict(row) for row in self.report],
        }

    @staticmethod
    def from_dict(data: Mapping) -> "SurrogateConstants":
        fmt = data.get("format_version")
        if fmt != CONSTANTS_FORMAT_VERSION:
            raise ValueError(
                f"surrogate constants use format version {fmt!r}, this "
                f"toolkit reads {CONSTANTS_FORMAT_VERSION}; refit with "
                f"'repro surrogate fit'"
            )
        return SurrogateConstants(
            simulation_key_version=str(data["simulation_key_version"]),
            families=tuple(
                FamilyConstants.from_dict(fam) for fam in data["families"]
            ),
            corpus=dict(data.get("corpus") or {}),
            report=tuple(dict(row) for row in data.get("report") or ()),
        )


def save_constants(
    constants: SurrogateConstants, path: str | os.PathLike | None = None
) -> Path:
    """Write a constants document (default: the committed golden)."""
    target = Path(path) if path is not None else DEFAULT_CONSTANTS_PATH
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(constants.to_dict(), indent=2) + "\n")
    return target


def load_constants(path: str | os.PathLike | None = None) -> SurrogateConstants:
    """Read a constants document, rejecting stale engine versions.

    Raises ``ValueError`` when the document was fitted against a different
    :data:`SIMULATION_KEY_VERSION` -- fitted constants are exactly as
    version-bound as cached simulation results, so a version bump
    invalidates both the same way.
    """
    source = Path(path) if path is not None else DEFAULT_CONSTANTS_PATH
    if not source.exists():
        raise ValueError(
            f"no surrogate constants at {source}; fit them first with "
            f"'repro surrogate fit'"
        )
    try:
        data = json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"surrogate constants {source} are not valid JSON: {exc}")
    constants = SurrogateConstants.from_dict(data)
    if constants.simulation_key_version != SIMULATION_KEY_VERSION:
        raise ValueError(
            f"surrogate constants {source} were fitted against engine "
            f"version {constants.simulation_key_version!r}, but this engine "
            f"is {SIMULATION_KEY_VERSION!r}; stale constants cannot be "
            f"trusted -- refit with 'repro surrogate fit'"
        )
    return constants
