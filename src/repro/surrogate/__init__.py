"""Calibrated analytical surrogate of the exact simulation engine.

``model`` holds the closed form and the prediction path, ``calibrate``
the corpus builder and the deterministic fit, ``store`` the persistence
of the fitted constants (committed golden keyed by
:data:`~repro.sim.engine.SIMULATION_KEY_VERSION`).  The multi-fidelity
search mode (``fidelity: "multi"``) screens design spaces with this model
and confirms the predicted frontier with the exact engine.
"""

from repro.surrogate.calibrate import (
    REGIME_OPTIONS,
    Corpus,
    CorpusRow,
    build_corpus,
    calibrate,
    check_constants,
    fit_constants,
    summary_lines,
)
from repro.surrogate.model import (
    DEFAULT_ERROR_BUDGET,
    ERROR_BUDGET,
    SurrogateModel,
    SurrogatePrediction,
    gemm_terms,
)
from repro.surrogate.store import (
    ANY_WORKLOAD,
    DEFAULT_CONSTANTS_PATH,
    FamilyConstants,
    SurrogateConstants,
    load_constants,
    save_constants,
)

__all__ = [
    "ANY_WORKLOAD",
    "Corpus",
    "CorpusRow",
    "DEFAULT_CONSTANTS_PATH",
    "DEFAULT_ERROR_BUDGET",
    "ERROR_BUDGET",
    "FamilyConstants",
    "REGIME_OPTIONS",
    "SurrogateConstants",
    "SurrogateModel",
    "SurrogatePrediction",
    "build_corpus",
    "calibrate",
    "check_constants",
    "fit_constants",
    "gemm_terms",
    "load_constants",
    "save_constants",
    "summary_lines",
]
