"""Closed-form analytical surrogate of the cycle-accurate engine.

The surrogate answers the question the exact engine answers -- end-to-end
network cycles of a borrowing configuration on a model category -- in
microseconds instead of seconds, so a search can *screen* a whole design
space and spend the exact engine only on the predicted frontier
(``fidelity: "multi"``, see ``docs/surrogate.md``).

Per GEMM the prediction is ``base * exp(theta . phi)``, clamped to the
same ``[min_cycles, dense_cycles]`` envelope the engine enforces:

* the **base** term mirrors every deterministic piece of the engine's
  :func:`~repro.sim.engine._simulate_gemm` arithmetic exactly -- effective
  sparsity, Sparse.AB downgrades, tile-segment scaling, pipeline drain,
  the speedup floor/cap clamps, and the SRAM stall model -- and replaces
  only the *sampled* mean tile cycles with a closed form: the expected
  per-window maximum of the compacted occupancy, a rectified-Gaussian
  smooth-max of the work bound over the window floor with a Gumbel-style
  tail for the slot-max (the constant-density analogue of
  :mod:`repro.sim.analytical`, with no RNG anywhere);
* the **correction** ``exp(theta . phi)`` absorbs what the closed form
  abstracts away (factor-field imbalance, shuffle rebalancing, borrowing
  interactions): a log-linear basis over borrowing distances x tensor
  density x tile depth, with one fitted coefficient vector per sampling
  regime x *effective* scheduling family x calibration workload.  The
  family is the one the point actually schedules as (``b`` / ``a`` /
  ``ab`` -- Sparse.AB points running single-sparse data downgrade per
  Table III); the per-workload vectors absorb the config x layer-mix
  interaction that a suite-global fit cannot (a pooled per-family
  fallback covers workloads outside the calibration suite, at unrecorded
  error).  The constants are fitted against the persistent cache's exact
  results (:mod:`repro.surrogate.calibrate`) and committed as a golden
  keyed by :data:`~repro.sim.engine.SIMULATION_KEY_VERSION`.

Dense GEMMs (no exploitable sparsity) are predicted exactly -- the engine
returns ``dense_cycles`` for them without sampling -- so the ``DNN.dense``
category is exact by construction and calibration error concentrates where
sampling actually happens.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.config import ArchConfig, ModelCategory
from repro.core.metrics import geometric_mean
from repro.dse.evaluate import (
    DesignEvaluation,
    DesignLike,
    EvalSettings,
    as_design,
)
from repro.gemm.layers import GemmShape
from repro.gemm.tiling import tile_grid
from repro.sim.engine import (
    SimulationOptions,
    _apply_stalls,
    _effective_sparsity,
    _min_cycles,
    _scheduling_config,
)
from repro.surrogate.store import (
    ANY_WORKLOAD,
    FamilyConstants,
    SurrogateConstants,
    load_constants,
)
from repro.workloads.models import Network, NetworkLayer, network_fingerprint
from repro.workloads.registry import WorkloadLike, parse_workload


def options_key(options: SimulationOptions) -> str:
    """Canonical identity of a sampling-options point (regime matching)."""
    return json.dumps(options.to_dict(), sort_keys=True)

#: Hard ceiling of the calibration error budget: worst-case per-workload
#: relative network-cycles error across the Table IV workloads x the
#: Fig. 5-7 config grids, enforced per sampling regime by
#: ``repro surrogate check`` and by the error-budget test suite.
#: ``default`` is the declarative specs' production sampling (3 passes,
#: 64 time steps); ``quick`` is the smoke sampling (1 pass, 16 time
#: steps), where a single sampled tile of depth <=16 quantizes exact
#: per-GEMM cycles to ~1/18 granularity -- coarse enough that only the
#: per-workload correction vectors keep the worst case under the bar.
ERROR_BUDGET: dict[str, float] = {"default": 0.05, "quick": 0.05}

#: Ceiling applied to a regime not named above (e.g. a custom corpus).
DEFAULT_ERROR_BUDGET = 0.05


def smooth_max(mu: float, floor: float, sigma: float) -> float:
    """E[max(X, floor)] for X ~ N(mu, sigma^2) (rectified-Gaussian mean)."""
    if sigma <= 0.0:
        return max(mu, floor)
    z = (mu - floor) / sigma
    pdf = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
    cdf = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
    return floor + (mu - floor) * cdf + sigma * pdf


def tile_cycle_estimate(
    t_steps: float, density: float, d1: int, d2: int, d3: int, n_slots: int
) -> float:
    """Expected compacted cycles of one tile side at constant density.

    ``t_steps`` windows of width ``w = 1 + d1`` advance at the per-window
    maximum over ``n_slots`` slots of the compacted occupancy; grouping
    reach ``g = (1 + d2)(1 + d3)`` pools donors, averaging the slot field
    down to ``n_slots / g`` effective independents.  The mean rate is the
    work bound ``p`` plus a Gumbel-style tail for the slot max
    (``sqrt(2 v ln s_eff / (t g))``), smooth-maxed over the window floor
    ``1/w`` with the Gaussian width of the pooled window occupancy.
    """
    if t_steps <= 0:
        return 0.0
    window = 1 + d1
    group = (1 + d2) * (1 + d3)
    floor = 1.0 / window
    eff_slots = max(n_slots / group, 2.0)
    variance = max(density * (1.0 - density), 0.0)
    tail = math.sqrt(2.0 * variance * math.log(eff_slots) / (t_steps * group))
    sigma = math.sqrt(variance / max(window * group, 1))
    rate = smooth_max(density + tail, floor, sigma)
    return t_steps * min(max(rate, floor), 1.0)


# ---------------------------------------------------------------------------
# Correction feature basis (shared verbatim by fit and predict).
# ---------------------------------------------------------------------------


def _distance_basis(d1: int, d2: int, d3: int) -> list[tuple[str, float]]:
    lw, l2, l3 = math.log1p(d1), math.log1p(d2), math.log1p(d3)
    return [
        ("lw", lw), ("lw2", lw * lw),
        ("l2", l2), ("l3", l3), ("l22", l2 * l2), ("l32", l3 * l3),
        ("lwl2", lw * l2), ("lwl3", lw * l3), ("l2l3", l2 * l3),
    ]


def _density_basis(tag: str, density: float) -> list[tuple[str, float]]:
    lp = math.log(density)
    return [("1", 1.0), (f"lp{tag}", lp), (f"lp{tag}2", lp * lp)]


def _family_features(
    family: str,
    sched: ArchConfig,
    weight_density: float,
    act_density: float,
    seg_t: int,
) -> tuple[tuple[str, ...], tuple[float, ...]]:
    """The (names, values) correction basis of one GEMM.

    The basis is a tensor product of a quadratic log-distance basis and a
    quadratic log-density basis, plus the tile-depth term, all duplicated
    under a shuffle interaction (shuffle rebalances the factor-field lanes
    and changes every coefficient's meaning, so it gets its own copy).
    """
    if family == "b":
        dist = _distance_basis(sched.b.d1, sched.b.d2, sched.b.d3)
        dens = _density_basis("w", weight_density)
    elif family == "a":
        dist = _distance_basis(sched.a.d1, sched.a.d2, sched.a.d3)
        dens = _density_basis("a", act_density)
    else:
        dist = _distance_basis(sched.b.d1, sched.b.d2, sched.b.d3)
        dist.append(("lwa", math.log1p(sched.a.d1)))
        lpa = math.log(act_density)
        dens = _density_basis("w", weight_density)
        dens.extend([("lpa", lpa), ("lpa2", lpa * lpa)])
    terms = list(dens)
    terms.extend(
        (f"{dn}*{pn}", dv * pv) for dn, dv in dist for pn, pv in dens
    )
    terms.append(("lseg", math.log(seg_t / 64.0)))
    shuffle = 1.0 if sched.shuffle else 0.0
    terms.extend((f"sh:{name}", shuffle * value) for name, value in terms[:])
    names = tuple(name for name, _ in terms)
    values = tuple(value for _, value in terms)
    return names, values


@dataclass(frozen=True)
class GemmTerms:
    """Everything the surrogate knows about one sparse GEMM.

    ``base`` is the full closed-form mirror of the engine's arithmetic
    (clamps and stalls included); the fitted correction multiplies it and
    the result is re-clamped to ``[min_cycles, dense_cycles]``.  ``None``
    from :func:`gemm_terms` means the GEMM runs dense and is predicted
    exactly as ``dense_cycles``.
    """

    family: str
    base: float
    min_cycles: float
    dense_cycles: int
    feature_names: tuple[str, ...]
    features: tuple[float, ...]


def gemm_terms(
    gemm: GemmShape,
    layer: NetworkLayer,
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions,
) -> GemmTerms | None:
    """Base prediction + correction features of one GEMM (``None`` = dense)."""
    geometry = config.geometry
    grid = tile_grid(gemm, geometry)
    sparsity = _effective_sparsity(gemm, layer, config, category)
    if not sparsity.any:
        return None
    sched = _scheduling_config(config, sparsity)
    use_b = sparsity.weights is not None
    use_a = sparsity.activations is not None
    weight_density = sparsity.weights.density if use_b else 1.0
    act_density = sparsity.activations.density if use_a else 1.0

    seg_t = min(grid.t_steps, options.max_t_steps)
    scale_t = grid.t_steps / seg_t
    drain = min(options.pipeline_drain, max(0, seg_t // 4))
    k0, n0, m0 = geometry.k0, geometry.n0, geometry.m0

    if use_b and use_a:
        family = "ab"
        # Dual-sparse runs the two compaction stages back to back: the
        # B-side schedule sets the surviving depth the A side then packs.
        tile_b = tile_cycle_estimate(
            seg_t, weight_density, sched.b.d1, sched.b.d2, sched.b.d3, k0 * n0
        )
        tile = tile_cycle_estimate(
            tile_b, act_density, sched.a.d1, sched.a.d2, sched.a.d3, k0 * m0
        )
    elif use_b:
        family = "b"
        tile = tile_cycle_estimate(
            seg_t, weight_density, sched.b.d1, sched.b.d2, sched.b.d3, k0 * n0
        )
    else:
        family = "a"
        tile = tile_cycle_estimate(
            seg_t, act_density, sched.a.d1, sched.a.d2, sched.a.d3, k0 * m0
        )

    n_passes = grid.m_tiles * grid.n_tiles
    cycles = (tile + drain) * scale_t * n_passes * gemm.repeats
    floor = _min_cycles(grid, sched)
    cycles = min(max(cycles, floor), float(grid.dense_cycles))
    if options.include_stalls and cycles < grid.dense_cycles:
        cycles = _apply_stalls(
            cycles, gemm, layer, config, category, grid.dense_cycles, options
        )
        cycles = min(cycles, float(grid.dense_cycles))
    names, values = _family_features(
        family, sched, weight_density, act_density, seg_t
    )
    return GemmTerms(
        family=family,
        base=cycles,
        min_cycles=floor,
        dense_cycles=grid.dense_cycles,
        feature_names=names,
        features=values,
    )


def corrected_cycles(terms: GemmTerms, constants: FamilyConstants) -> float:
    """Apply a fitted correction to a base prediction, re-clamped."""
    if constants.feature_names != terms.feature_names:
        raise ValueError(
            f"surrogate constants for family {terms.family!r} were fitted "
            f"on a different feature basis ({len(constants.feature_names)} "
            f"features vs {len(terms.feature_names)} in this code); refit "
            f"with 'repro surrogate fit'"
        )
    exponent = 0.0
    for theta, phi in zip(constants.theta, terms.features):
        exponent += theta * phi
    cycles = terms.base * math.exp(exponent)
    return min(max(cycles, terms.min_cycles), float(terms.dense_cycles))


@dataclass(frozen=True)
class SurrogatePrediction:
    """Predicted end-to-end latency (the surrogate's ``NetworkSimResult``)."""

    network: str
    config: str
    category: ModelCategory
    cycles: float
    dense_cycles: int

    @property
    def speedup(self) -> float:
        return self.dense_cycles / self.cycles if self.cycles else 1.0


class SurrogateModel:
    """A calibrated surrogate: fitted constants + the closed form above.

    The model is read-only and deterministic: predictions are pure float64
    arithmetic over the config, the layer specs, and the fitted constants
    -- no RNG, no sampling, no clock -- so screening decisions are bitwise
    reproducible across runs and worker counts.  Layer predictions are
    memoized per (layer content, config, category, options), mirroring the
    engine's layer-level memoization.
    """

    def __init__(self, constants: SurrogateConstants) -> None:
        self.constants = constants
        self._layer_memo: dict[tuple, tuple[float, int]] = {}
        regimes = dict(constants.corpus.get("regimes") or {})
        if not regimes:
            raise ValueError(
                "surrogate constants record no calibration regimes; refit "
                "with 'repro surrogate fit'"
            )
        self._regimes = {
            json.dumps(opts, sort_keys=True): name
            for name, opts in regimes.items()
        }

    def regime_for(self, options: SimulationOptions) -> str:
        """The calibration regime matching ``options`` exactly.

        The surrogate is a *calibrated* model: sampled cycle counts depend
        on every sampling knob (passes, segment depth, seed, stalls), so a
        prediction under options the corpus never measured would silently
        carry an unvalidated error.  Refusing is the honest failure mode.
        """
        regime = self._regimes.get(options_key(options))
        if regime is None:
            raise ValueError(
                f"surrogate is not calibrated for simulation options "
                f"{options.to_dict()}; calibrated regimes: "
                f"{sorted(self._regimes.values())}"
            )
        return regime

    @classmethod
    def load(cls, path=None) -> "SurrogateModel":
        """Load fitted constants (default: the committed golden)."""
        return cls(load_constants(path))

    @classmethod
    def load_default(cls) -> "SurrogateModel":
        return cls.load(None)

    def predict_layer(
        self,
        layer: NetworkLayer,
        config: ArchConfig,
        category: ModelCategory,
        options: SimulationOptions,
        regime: str,
        workload: str = ANY_WORKLOAD,
    ) -> tuple[float, int]:
        """Predicted (cycles, dense_cycles) of one layer, memoized."""
        key = (
            tuple(layer.spec.gemms()),
            layer.weight_density,
            layer.act_density,
            config,
            category,
            options,
            regime,
            workload,
        )
        hit = self._layer_memo.get(key)
        if hit is not None:
            return hit
        cycles = 0.0
        dense = 0
        for gemm in layer.spec.gemms():
            terms = gemm_terms(gemm, layer, config, category, options)
            if terms is None:
                grid = tile_grid(gemm, config.geometry)
                cycles += float(grid.dense_cycles)
                dense += grid.dense_cycles
                continue
            cycles += corrected_cycles(
                terms,
                self.constants.family(regime, terms.family, workload),
            )
            dense += terms.dense_cycles
        self._layer_memo[key] = (cycles, dense)
        return cycles, dense

    def predict_network(
        self,
        network: WorkloadLike,
        config: ArchConfig,
        category: ModelCategory,
        options: SimulationOptions | None = None,
    ) -> SurrogatePrediction:
        """Predicted end-to-end latency (mirrors ``simulate_network``)."""
        net = (
            network
            if isinstance(network, Network)
            else parse_workload(network).network
        )
        options = options or SimulationOptions()
        regime = self.regime_for(options)
        workload = network_fingerprint(net)
        cycles = 0.0
        dense = 0
        for layer in net.layers:
            layer_cycles, layer_dense = self.predict_layer(
                layer, config, category, options, regime, workload
            )
            cycles += layer_cycles
            dense += layer_dense
        return SurrogatePrediction(
            network=net.name,
            config=config.label,
            category=category,
            cycles=cycles,
            dense_cycles=dense,
        )

    def category_speedup(
        self,
        config: ArchConfig,
        category: ModelCategory,
        settings: EvalSettings,
    ) -> float:
        """Predicted geomean suite speedup (mirrors ``category_speedup``)."""
        speedups = [
            self.predict_network(
                workload.network, config, category, settings.options
            ).speedup
            for workload in settings.suite(category)
        ]
        return geometric_mean(speedups)

    def evaluate_design(
        self,
        design: DesignLike,
        categories: tuple[ModelCategory, ...],
        settings: EvalSettings,
    ) -> DesignEvaluation:
        """Predicted score card (mirrors ``dse.evaluate.evaluate_design``).

        Efficiency points go through the *exact* cost model -- power and
        area are closed-form already -- so only the speedup axis is
        surrogate-predicted.
        """
        design = as_design(design)
        points = tuple(
            design.efficiency_point(
                category,
                self.category_speedup(
                    design.config_for(category), category, settings
                ),
            )
            for category in categories
        )
        return DesignEvaluation(label=design.label, points=points)
