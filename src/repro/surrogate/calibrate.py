"""Auto-calibration of the surrogate against exact engine results.

Calibration is a deterministic pipeline with no RNG anywhere:

1. **Corpus** -- the paper's measurement matrix: every feasible config of
   the Fig. 5-7 design-space grids x the Table IV workloads, simulated
   exactly under two sampling regimes (the declarative specs' production
   sampling and the quick smoke sampling).  The exact results come from
   the session's content-addressed cache -- warm entries are read back,
   missing ones are simulated (and absorbed) on demand -- and every row
   is then sorted by ``(regime, space, workload fingerprint, config,
   layer, gemm)``, so the fit sees one canonical ordering no matter how
   the cache happened to be populated or read.

2. **Fit** -- per (regime, effective scheduling family, workload), a
   weighted ridge solve of the log residual ``log(exact / base)`` over
   the feature basis in :mod:`repro.surrogate.model` (normal equations in
   float64; weights ``sqrt(exact)`` so big GEMMs dominate, matching the
   network-relative error the budget measures).  A pooled per-family
   vector (:data:`~repro.surrogate.store.ANY_WORKLOAD`) is fitted as the
   fallback for workloads outside the suite.  Identical corpus in, a
   shuffled copy in, or any worker count: bitwise-identical constants out.

3. **Report** -- per-cell exact totals and the per-workload max/mean
   relative errors, embedded in the constants document.
   :func:`check_constants` re-derives every prediction from the committed
   constants alone (pure arithmetic -- no engine, no cache) and enforces
   :data:`~repro.surrogate.model.ERROR_BUDGET`, so the golden stays
   honest without shipping the corpus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from typing import Iterable, Mapping, Sequence

from repro.config import ModelCategory, parse_notation
from repro.dse.evaluate import EvalSettings
from repro.search.space import SearchSpace, paper_space
from repro.sim.engine import SIMULATION_KEY_VERSION, SimulationOptions
from repro.surrogate.model import (
    DEFAULT_ERROR_BUDGET,
    ERROR_BUDGET,
    GemmTerms,
    SurrogateModel,
    corrected_cycles,
    gemm_terms,
)
from repro.surrogate.store import (
    ANY_WORKLOAD,
    FamilyConstants,
    SurrogateConstants,
)
from repro.workloads.registry import BENCHMARKS, parse_workload

#: The sampling regimes the shipped golden is calibrated for: ``default``
#: is the declarative specs' production sampling (what searches and
#: experiments evaluate at), ``quick`` the smoke sampling used by quick
#: sweeps, the checked-in benchmarks, and the multi-fidelity screening
#: examples.  Regime identity is the *exact* options document, seed
#: included -- sampled cycles are a different population under any other
#: knob setting.
REGIME_OPTIONS: dict[str, SimulationOptions] = {
    "default": SimulationOptions(passes_per_gemm=3, max_t_steps=64),
    "quick": SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=7),
}

#: Relative ridge strength of the fit (scaled by the Gram trace).
RIDGE = 1e-5

#: Tolerance of the recorded-vs-recomputed prediction cross-check.
REPORT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class CorpusRow:
    """One GEMM of one corpus cell (``terms is None`` = runs dense)."""

    regime: str
    space: str
    workload: str
    fingerprint: str
    config: str
    layer_index: int
    gemm_index: int
    exact: float
    terms: GemmTerms | None

    @property
    def sort_key(self) -> tuple:
        return (
            self.regime,
            self.space,
            self.fingerprint,
            self.config,
            self.layer_index,
            self.gemm_index,
        )


@dataclass(frozen=True)
class Corpus:
    """The calibration corpus: rows plus what produced them."""

    rows: tuple[CorpusRow, ...]
    regimes: Mapping[str, SimulationOptions]
    spaces: tuple[str, ...]
    workloads: Mapping[str, str]  # name -> fingerprint


def corpus_spaces(names: Sequence[str] | None = None) -> dict[str, SearchSpace]:
    """The calibration design spaces, in sorted-name order."""
    picked = sorted(names) if names else sorted(("a", "ab", "b"))
    return {name: paper_space(name) for name in picked}


def build_corpus(
    session,
    spaces: Sequence[str] | None = None,
    networks: Sequence[str] | None = None,
    regimes: Mapping[str, SimulationOptions] | None = None,
) -> Corpus:
    """Simulate (or read back) the calibration corpus through a session.

    The bulk warm goes through ``session.evaluate`` -- one parallel,
    cache-absorbing pass per (regime, space) -- and the per-GEMM rows are
    then extracted with warm ``session.simulate`` reads.  Workloads are
    iterated in fingerprint order and configs in space order, and the
    result is re-sorted anyway, so worker count and cache state cannot
    change the corpus.
    """
    regimes = dict(regimes) if regimes is not None else dict(REGIME_OPTIONS)
    resolved = corpus_spaces(spaces)
    rows: list[CorpusRow] = []
    seen: dict[str, str] = {}
    for regime in sorted(regimes):
        options = regimes[regime]
        for sname, space in resolved.items():
            category = space.default_category()
            suite = [b for b in BENCHMARKS if category in b.categories()]
            if networks is not None:
                suite = [b for b in suite if b.name in set(networks)]
            if not suite:
                raise ValueError(
                    f"no calibration workloads exercise space {sname!r} "
                    f"(networks filter: {sorted(networks or [])})"
                )
            settings = EvalSettings(
                quick=False,
                options=options,
                networks=tuple(b.name for b in suite),
            )
            session.evaluate(space.configs(), (category,), settings)
            workloads = sorted(
                (parse_workload(b.name) for b in suite),
                key=lambda w: w.fingerprint,
            )
            for workload in workloads:
                seen[workload.name] = workload.fingerprint
                layers = workload.network.layers
                for config in space.configs():
                    result = session.simulate(
                        workload, config, category, options
                    )
                    for li, (layer, lres) in enumerate(
                        zip(layers, result.layers)
                    ):
                        for gi, (gemm, gres) in enumerate(
                            zip(layer.spec.gemms(), lres.gemms)
                        ):
                            rows.append(
                                CorpusRow(
                                    regime=regime,
                                    space=sname,
                                    workload=workload.name,
                                    fingerprint=workload.fingerprint,
                                    config=config.notation,
                                    layer_index=li,
                                    gemm_index=gi,
                                    exact=float(gres.cycles),
                                    terms=gemm_terms(
                                        gemm, layer, config, category, options
                                    ),
                                )
                            )
    rows.sort(key=lambda r: r.sort_key)
    return Corpus(
        rows=tuple(rows),
        regimes=regimes,
        spaces=tuple(resolved),
        workloads={name: seen[name] for name in sorted(seen)},
    )


def _solve_group(rows: Sequence[CorpusRow]) -> tuple[float, ...]:
    """Weighted ridge solve of one correction vector (float64, no RNG)."""
    features = np.array(
        [row.terms.features for row in rows], dtype=np.float64
    )
    residual = np.array(
        [math.log(row.exact / row.terms.base) for row in rows],
        dtype=np.float64,
    )
    weight = np.sqrt(np.array([row.exact for row in rows], dtype=np.float64))
    weighted = features * weight[:, None]
    gram = weighted.T @ weighted
    gram += np.eye(gram.shape[0]) * (
        RIDGE * np.trace(gram) / gram.shape[0]
    )
    theta = np.linalg.solve(gram, weighted.T @ (residual * weight))
    return tuple(float(t) for t in theta)


def _cell_errors(
    rows: Iterable[CorpusRow], lookup
) -> dict[tuple, tuple[float, float]]:
    """Per (regime, space, workload, config): (exact, predicted) totals."""
    cells: dict[tuple, tuple[float, float]] = {}
    for row in rows:
        key = (row.regime, row.space, row.workload, row.config)
        exact, predicted = cells.get(key, (0.0, 0.0))
        if row.terms is None:
            prediction = row.exact  # dense GEMMs are predicted exactly
        else:
            prediction = corrected_cycles(row.terms, lookup(row))
        cells[key] = (exact + row.exact, predicted + prediction)
    return cells


def fit_constants(corpus: Corpus) -> SurrogateConstants:
    """Fit the correction vectors and assemble the constants document.

    Deterministic by construction: rows are re-sorted into the canonical
    fingerprint order before any arithmetic, groups are solved in sorted
    key order, and the solve itself is a fixed-shape float64 normal-
    equations solve -- so a shuffled corpus, a twice-run fit, or a fit
    built through any worker count produces a bitwise-identical document.
    """
    rows = sorted(corpus.rows, key=lambda r: r.sort_key)
    sparse = [row for row in rows if row.terms is not None]
    if not sparse:
        raise ValueError("calibration corpus has no sparse GEMMs to fit")
    groups: dict[tuple[str, str, str], list[CorpusRow]] = {}
    for row in sparse:
        groups.setdefault(
            (row.regime, row.terms.family, row.fingerprint), []
        ).append(row)
        groups.setdefault(
            (row.regime, row.terms.family, ANY_WORKLOAD), []
        ).append(row)
    families = tuple(
        FamilyConstants(
            regime=regime,
            family=family,
            workload=workload,
            feature_names=groups[(regime, family, workload)][0]
            .terms.feature_names,
            theta=_solve_group(groups[(regime, family, workload)]),
        )
        for regime, family, workload in sorted(groups)
    )
    constants_index = {
        (fam.regime, fam.family, fam.workload): fam for fam in families
    }

    def lookup(row: CorpusRow) -> FamilyConstants:
        return constants_index[(row.regime, row.terms.family, row.fingerprint)]

    cells = _cell_errors(rows, lookup)
    report = []
    for regime in sorted(corpus.regimes):
        for space in corpus.spaces:
            for workload, fingerprint in corpus.workloads.items():
                picked = {
                    key: totals
                    for key, totals in cells.items()
                    if key[0] == regime and key[1] == space
                    and key[2] == workload
                }
                if not picked:
                    continue
                errors = {
                    key[3]: abs(pred - exact) / exact
                    for key, (exact, pred) in picked.items()
                }
                worst = max(errors, key=lambda cfg: (errors[cfg], cfg))
                report.append(
                    {
                        "regime": regime,
                        "space": space,
                        "workload": workload,
                        "fingerprint": fingerprint,
                        "category": paper_space(space)
                        .default_category()
                        .value,
                        "max_error": max(errors.values()),
                        "mean_error": sum(errors.values()) / len(errors),
                        "worst_config": worst,
                        "cells": {
                            key[3]: [exact, pred]
                            for key, (exact, pred) in sorted(picked.items())
                        },
                    }
                )
    return SurrogateConstants(
        simulation_key_version=SIMULATION_KEY_VERSION,
        families=families,
        corpus={
            "regimes": {
                name: options.to_dict()
                for name, options in corpus.regimes.items()
            },
            "spaces": list(corpus.spaces),
            "workloads": dict(corpus.workloads),
            "rows": len(rows),
            "sparse_rows": len(sparse),
        },
        report=tuple(report),
    )


def calibrate(
    session,
    spaces: Sequence[str] | None = None,
    networks: Sequence[str] | None = None,
    regimes: Mapping[str, SimulationOptions] | None = None,
) -> SurrogateConstants:
    """Build the corpus through a session and fit constants against it."""
    return fit_constants(build_corpus(session, spaces, networks, regimes))


def summary_lines(constants: SurrogateConstants) -> list[str]:
    """Human-readable per-workload error lines of a constants document."""
    lines = []
    for row in constants.report:
        ceiling = ERROR_BUDGET.get(row["regime"], DEFAULT_ERROR_BUDGET)
        lines.append(
            f"{row['regime']:8s} {row['space']:3s} {row['workload']:12s} "
            f"max {row['max_error'] * 100:5.2f}%  "
            f"mean {row['mean_error'] * 100:5.2f}%  "
            f"(ceiling {ceiling * 100:.0f}%, worst at {row['worst_config']})"
        )
    return lines


def check_constants(
    constants: SurrogateConstants,
    budget: Mapping[str, float] | None = None,
) -> list[str]:
    """Re-derive and enforce the error budget from the constants alone.

    Every recorded corpus cell is re-predicted from the committed
    constants (pure arithmetic -- no engine runs, no cache), compared
    against the prediction recorded at fit time, and the per-workload
    worst-case error is held to the regime's ceiling.  Also fails when a
    calibration workload's definition has drifted since the fit (the
    recorded exact totals would no longer describe it).

    Returns the per-workload report lines; raises ``ValueError`` on any
    breach.
    """
    budget = dict(budget) if budget is not None else dict(ERROR_BUDGET)
    if not constants.report:
        raise ValueError(
            "surrogate constants record no calibration report; refit with "
            "'repro surrogate fit'"
        )
    workloads = {}
    for name, fingerprint in constants.corpus.get("workloads", {}).items():
        workload = parse_workload(name)
        if workload.fingerprint != fingerprint:
            raise ValueError(
                f"calibration workload {name!r} has changed since the fit "
                f"(fingerprint {workload.fingerprint} != recorded "
                f"{fingerprint}); the recorded exact results no longer "
                f"describe it -- refit with 'repro surrogate fit'"
            )
        workloads[name] = workload
    model = SurrogateModel(constants)
    regime_options = {
        name: SimulationOptions.from_dict(dict(payload))
        for name, payload in constants.corpus["regimes"].items()
    }
    lines = []
    failures = []
    for row in constants.report:
        options = regime_options[row["regime"]]
        category = ModelCategory(row["category"])
        network = workloads[row["workload"]].network
        ceiling = budget.get(row["regime"], DEFAULT_ERROR_BUDGET)
        worst = 0.0
        total = 0.0
        for notation, (exact, recorded) in row["cells"].items():
            predicted = model.predict_network(
                network, parse_notation(notation), category, options
            ).cycles
            if abs(predicted - recorded) > REPORT_TOLERANCE * recorded:
                failures.append(
                    f"{row['regime']}/{row['space']}/{row['workload']} "
                    f"@ {notation}: recorded prediction {recorded} is not "
                    f"reproduced by these constants (got {predicted})"
                )
                continue
            error = abs(predicted - exact) / exact
            worst = max(worst, error)
            total += error
        mean = total / len(row["cells"])
        status = "ok" if worst <= ceiling else "OVER BUDGET"
        lines.append(
            f"{row['regime']:8s} {row['space']:3s} {row['workload']:12s} "
            f"max {worst * 100:5.2f}%  mean {mean * 100:5.2f}%  "
            f"(ceiling {ceiling * 100:.0f}%) {status}"
        )
        if worst > ceiling:
            failures.append(
                f"{row['regime']}/{row['space']}/{row['workload']}: "
                f"worst-case error {worst * 100:.2f}% exceeds the "
                f"{ceiling * 100:.0f}% ceiling"
            )
    if failures:
        detail = "\n  ".join(failures)
        raise ValueError(
            f"surrogate error budget check failed:\n  {detail}"
        )
    return lines
