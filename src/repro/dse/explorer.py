"""Constrained sweep generators for the three design-space figures.

The paper bounds each sweep by multiplexer fan-in (larger MUXes "severely
impact power efficiency"): 8 inputs for the single-sparse spaces (Figs. 5
and 6), 16 for the dual-sparse space (Fig. 7, which can tolerate more
overhead), and excludes the regions its results sections rule out
(``db1 = 1`` is "far from the optimal points"; dual designs with
``da3 > 0`` are never Pareto-optimal because ``da3`` inflates the AMUX,
and ``da1 > 2`` inflates the BBUF).

These generators are thin wrappers over the declarative
:class:`repro.search.space.SearchSpace` machinery -- each builds the
corresponding space and enumerates it, so the legacy lists and the guided
search (``repro search``) stay element-for-element identical.  The
canonical paper-space instances live in :func:`repro.search.space.paper_space`.
"""

from __future__ import annotations

from typing import Callable

from repro.config import ArchConfig, ModelCategory
from repro.search.space import (
    MaxAmuxFanin,
    MaxMuxFanin,
    SearchSpace,
)


def sparse_b_space(
    db1_values: tuple[int, ...] = (2, 3, 4, 6),
    max_db2: int = 2,
    max_db3: int = 2,
    max_amux_fanin: int = 8,
    shuffle_options: tuple[bool, ...] = (False, True),
) -> list[ArchConfig]:
    """The Fig. 5 weight-only sweep (AMUX fan-in <= 8, db1 > 1)."""
    db1 = tuple(v for v in db1_values if v > 1)  # paper: db1 = 1 far from optimal
    if not db1:
        return []
    return SearchSpace(
        name="b",
        db1=db1,
        db2=tuple(range(max_db2 + 1)),
        db3=tuple(range(max_db3 + 1)),
        shuffle=shuffle_options,
        constraints=(MaxAmuxFanin(max_amux_fanin),),
    ).configs()


def sparse_a_space(
    da1_values: tuple[int, ...] = (1, 2, 3, 4),
    max_da2: int = 2,
    max_da3: int = 2,
    max_fanin: int = 8,
    shuffle_options: tuple[bool, ...] = (False, True),
) -> list[ArchConfig]:
    """The Fig. 6 activation-only sweep (AMUX/BMUX fan-in <= 8)."""
    return SearchSpace(
        name="a",
        da1=tuple(da1_values),
        da2=tuple(range(max_da2 + 1)),
        da3=tuple(range(max_da3 + 1)),
        shuffle=shuffle_options,
        constraints=(MaxMuxFanin(max_fanin),),
    ).configs()


def sparse_ab_space(
    da1_values: tuple[int, ...] = (1, 2),
    db1_values: tuple[int, ...] = (1, 2, 3, 4),
    max_db2: int = 1,
    max_db3: int = 2,
    max_amux_fanin: int = 16,
    shuffle_options: tuple[bool, ...] = (False, True),
) -> list[ArchConfig]:
    """The Fig. 7 dual-sparse sweep (AMUX fan-in <= 16, no ``da3``).

    Following the paper's observations, designs with ``da3 > 0`` are
    excluded (they inflate the AMUX without reaching the Pareto front) and
    ``da1`` stays at most 2 (larger values blow up the BBUF).  ``da2`` is
    left at zero because shuffling replaces it at ~2% of the cost
    (observation 1); the shuffle-off points keep ``db2`` as the comparison.
    """
    return SearchSpace(
        name="ab",
        da1=tuple(da1_values),
        db1=tuple(db1_values),
        db2=tuple(range(max_db2 + 1)),
        db3=tuple(range(max_db3 + 1)),
        shuffle=shuffle_options,
        constraints=(MaxAmuxFanin(max_amux_fanin),),
    ).configs()


#: The named design spaces ``repro sweep`` can drive.
DESIGN_SPACES: dict[str, Callable[[], list[ArchConfig]]] = {
    "a": sparse_a_space,
    "b": sparse_b_space,
    "ab": sparse_ab_space,
}

#: The sparse model category each space targets (its dense companion is
#: always evaluated alongside for the paper's efficiency-compromise rule).
SPACE_CATEGORIES: dict[str, ModelCategory] = {
    "a": ModelCategory.A,
    "b": ModelCategory.B,
    "ab": ModelCategory.AB,
}

#: Human-readable titles, keyed like :data:`DESIGN_SPACES`.
SPACE_LABELS: dict[str, str] = {
    "a": "Fig. 6 Sparse.A",
    "b": "Fig. 5 Sparse.B",
    "ab": "Fig. 7 Sparse.AB",
}


def space_label(name: str) -> str:
    """Display title of a named space (graceful for future spaces)."""
    return SPACE_LABELS.get(name.lower(), f"Sparse.{name.upper()} space")


def _unknown_space_error(name: str) -> str:
    """The full 'what would have been accepted' message for a bad name."""
    lines = [f"unknown design space {name!r}; valid spaces (case-insensitive):"]
    for key in sorted(DESIGN_SPACES):
        lines.append(f"  - {key!r:5} ({SPACE_LABELS[key]} sweep)")
    lines.append(
        "arbitrary domains/constraints are available through "
        "repro.search.SearchSpace and `repro search`"
    )
    return "\n".join(lines)


def design_space(name: str) -> list[ArchConfig]:
    """Look a sweep space up by name (``"a"``, ``"b"`` or ``"ab"``)."""
    try:
        return DESIGN_SPACES[name.lower()]()
    except KeyError:
        raise ValueError(_unknown_space_error(name)) from None


def space_categories(name: str) -> tuple[ModelCategory, ModelCategory]:
    """(sparse, dense) category pair a named space is scored on."""
    try:
        return (SPACE_CATEGORIES[name.lower()], ModelCategory.DENSE)
    except KeyError:
        raise ValueError(_unknown_space_error(name)) from None
