"""ASCII rendering of the paper's figures (bars and scatters).

The evaluation environment has no plotting stack, so the figure benches
render Figs. 5-8 as aligned text: horizontal bar charts for the speedup
panels and coordinate dumps with a coarse character grid for the
efficiency scatters.  Good enough to eyeball who wins, where the Pareto
front bends, and whether a shuffle bar towers over its unshuffled twin.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 48,
    unit: str = "x",
) -> str:
    """Horizontal bars, one per labelled value, scaled to the maximum."""
    if not values:
        return title
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar chart needs at least one positive value")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"{label.ljust(label_w)} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[tuple[str, float, float]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    cols: int = 56,
    rows: int = 16,
) -> str:
    """A coarse character-grid scatter with a point legend.

    Each point is tagged with a letter; collisions show the first tag.
    """
    if not points:
        return title
    xs = [p[1] for p in points]
    ys = [p[2] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * cols for _ in range(rows)]
    tags = []
    for index, (label, x, y) in enumerate(points):
        tag = chr(ord("A") + index % 26)
        tags.append(f"{tag}: {label} ({x:.2f}, {y:.2f})")
        col = round((x - x_lo) / x_span * (cols - 1))
        row = rows - 1 - round((y - y_lo) / y_span * (rows - 1))
        if grid[row][col] == " ":
            grid[row][col] = tag
    lines = [title] if title else []
    lines.append(f"{y_label} ({y_lo:.2f} .. {y_hi:.2f})")
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * cols)
    lines.append(f" {x_label} ({x_lo:.2f} .. {x_hi:.2f})")
    lines += tags
    return "\n".join(lines)
