"""Design-space exploration: sweeps, evaluation, Pareto fronts, reports."""

from repro.dse.explorer import (
    sparse_a_space,
    sparse_ab_space,
    sparse_b_space,
)
from repro.dse.evaluate import (
    BaselineDesign,
    ConfigDesign,
    Design,
    DesignEvaluation,
    DesignLike,
    EvalSettings,
    GriffinDesign,
    as_design,
    category_speedup,
    evaluate_design,
    parse_design,
)
from repro.dse.figures import bar_chart, scatter_plot
from repro.dse.pareto import dominates, pareto_front, pareto_ranks
from repro.dse.report import format_table, select_optimal

__all__ = [
    "sparse_a_space",
    "sparse_b_space",
    "sparse_ab_space",
    "EvalSettings",
    "Design",
    "DesignLike",
    "ConfigDesign",
    "GriffinDesign",
    "BaselineDesign",
    "DesignEvaluation",
    "as_design",
    "parse_design",
    "category_speedup",
    "evaluate_design",
    "dominates",
    "pareto_front",
    "pareto_ranks",
    "bar_chart",
    "scatter_plot",
    "format_table",
    "select_optimal",
]
