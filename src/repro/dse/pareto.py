"""Pareto-front extraction for the efficiency scatter plots (Figs. 5-7).

All objectives are *maximized*.  Besides the front itself the module
exposes the two primitives the guided-search layer builds on:
:func:`dominates` (the strict dominance test) and :func:`pareto_ranks`
(non-dominated sorting, the selection pressure of
:class:`repro.search.strategy.EvolutionarySearch`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when score vector ``a`` dominates ``b`` (maximize-objectives).

    ``a`` dominates ``b`` when it is at least as good on every objective
    and strictly better on at least one.  Identical vectors (ties) and
    empty vectors dominate nothing.
    """
    if len(a) != len(b):
        raise ValueError(f"score vectors differ in length: {len(a)} vs {len(b)}")
    return all(x >= y for x, y in zip(a, b)) and any(x > y for x, y in zip(a, b))


def pareto_front(
    items: Iterable[T],
    objectives: Sequence[Callable[[T], float]],
    dedupe: bool = False,
) -> list[T]:
    """Items not dominated on the given maximize-objectives.

    An item is dominated if another is at least as good on every objective
    and strictly better on one.  Returns the front in the input order.

    Tied items (identical score vectors) never dominate each other, so by
    default *every* copy of a duplicated front point is returned;
    ``dedupe=True`` keeps only the first item of each distinct front score
    vector (the stable choice for archives that must not grow with
    re-submitted duplicates).
    """
    items = list(items)
    scores = [tuple(obj(item) for obj in objectives) for item in items]
    front: list[T] = []
    seen_scores: set[tuple[float, ...]] = set()
    for i, item in enumerate(items):
        if any(dominates(other, scores[i]) for j, other in enumerate(scores) if j != i):
            continue
        if dedupe:
            if scores[i] in seen_scores:
                continue
            seen_scores.add(scores[i])
        front.append(item)
    return front


def pareto_ranks(scores: Sequence[Sequence[float]]) -> list[int]:
    """Non-dominated sorting rank of every score vector (0 = on the front).

    Rank ``r`` contains the vectors that become non-dominated once every
    vector of rank ``< r`` is removed -- the standard NSGA-style layering.
    Tied vectors always share a rank.  Returns one rank per input, in
    input order.
    """
    scores = [tuple(s) for s in scores]
    ranks = [-1] * len(scores)
    remaining = list(range(len(scores)))
    rank = 0
    while remaining:
        layer = [
            i
            for i in remaining
            if not any(dominates(scores[j], scores[i]) for j in remaining if j != i)
        ]
        if not layer:  # pragma: no cover -- dominance is a strict partial order
            raise RuntimeError("non-dominated sorting failed to peel a layer")
        for i in layer:
            ranks[i] = rank
        remaining = [i for i in remaining if ranks[i] < 0]
        rank += 1
    return ranks
