"""Pareto-front extraction for the efficiency scatter plots (Figs. 5-7)."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    items: Iterable[T],
    objectives: Sequence[Callable[[T], float]],
) -> list[T]:
    """Items not dominated on the given maximize-objectives.

    An item is dominated if another is at least as good on every objective
    and strictly better on one.  Returns the front in the input order.
    """
    items = list(items)
    scores = [[obj(item) for obj in objectives] for item in items]
    front = []
    for i, item in enumerate(items):
        dominated = False
        for j, other in enumerate(scores):
            if j == i:
                continue
            if all(o >= s for o, s in zip(other, scores[i])) and any(
                o > s for o, s in zip(other, scores[i])
            ):
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front
