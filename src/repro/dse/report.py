"""Report helpers: ASCII tables and optimal-point selection (Table VI).

The paper picks its starred designs as "high TOPS/W on the sparse category
with minimal efficiency loss on DNN.dense" (Sec. VI-A).  ``select_optimal``
formalizes that as maximizing the *product* of sparse-category and
dense-category power efficiency over the Pareto-optimal points -- a scale-
free compromise rule that reproduces the paper's choices.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config import ModelCategory
from repro.dse.evaluate import DesignEvaluation
from repro.dse.pareto import pareto_front


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render mappings as an aligned ASCII table (benchmark output)."""
    if not rows:
        return title
    headers = list(rows[0].keys())
    cells = [
        [f"{v:.3g}" if isinstance(v, float) else str(v) for v in row.values()]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def select_optimal(
    evaluations: Sequence[DesignEvaluation],
    sparse_category: ModelCategory,
    dense_category: ModelCategory = ModelCategory.DENSE,
) -> DesignEvaluation:
    """Pick the starred design point for one sparse category.

    Restricts to the (sparse-eff, dense-eff) Pareto front and maximizes the
    product of the two power efficiencies.
    """
    if not evaluations:
        raise ValueError("no design points to select from")
    front = pareto_front(
        evaluations,
        objectives=[
            lambda e: e.point(sparse_category).tops_per_watt,
            lambda e: e.point(dense_category).tops_per_watt,
        ],
    )
    return max(
        front,
        key=lambda e: e.point(sparse_category).tops_per_watt
        * e.point(dense_category).tops_per_watt,
    )
