"""Report helpers: ASCII tables and optimal-point selection (Table VI).

The paper picks its starred designs as "high TOPS/W on the sparse category
with minimal efficiency loss on DNN.dense" (Sec. VI-A).  ``select_optimal``
formalizes that as maximizing the *product* of sparse-category and
dense-category power efficiency over the Pareto-optimal points -- a scale-
free compromise rule that reproduces the paper's choices.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config import ModelCategory
from repro.dse.evaluate import DesignEvaluation
from repro.dse.pareto import pareto_front


def sweep_rows(
    evaluations: Sequence[DesignEvaluation],
    categories: Sequence[ModelCategory],
) -> list[dict[str, object]]:
    """Figure-ready rows of a sweep: one per design, metrics per category.

    The row layout matches what the Fig. 5-7 panels plot -- speedup and
    effective TOPS/W / TOPS/mm^2 of every design on every evaluated
    category -- and serializes directly to JSON for external plotting.
    """
    rows: list[dict[str, object]] = []
    for evaluation in evaluations:
        row: dict[str, object] = {"Config": evaluation.label}
        for category in categories:
            point = evaluation.point(category)
            tag = category.value.removeprefix("DNN.")
            row[f"{tag} speedup"] = point.speedup
            row[f"{tag} TOPS/W"] = point.tops_per_watt
            row[f"{tag} TOPS/mm2"] = point.tops_per_mm2
        rows.append(row)
    return rows


def sweep_table(
    evaluations: Sequence[DesignEvaluation],
    categories: Sequence[ModelCategory],
    title: str = "",
) -> str:
    """Render a sweep as an aligned ASCII table (one row per design)."""
    return format_table(sweep_rows(evaluations, categories), title=title)


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render mappings as an aligned ASCII table (benchmark output)."""
    if not rows:
        return title
    headers = list(rows[0].keys())
    cells = [
        [f"{v:.3g}" if isinstance(v, float) else str(v) for v in row.values()]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def select_optimal(
    evaluations: Sequence[DesignEvaluation],
    sparse_category: ModelCategory,
    dense_category: ModelCategory = ModelCategory.DENSE,
) -> DesignEvaluation:
    """Pick the starred design point for one sparse category.

    Restricts to the (sparse-eff, dense-eff) Pareto front and maximizes the
    product of the two power efficiencies.
    """
    if not evaluations:
        raise ValueError("no design points to select from")
    front = pareto_front(
        evaluations,
        objectives=[
            lambda e: e.point(sparse_category).tops_per_watt,
            lambda e: e.point(dense_category).tops_per_watt,
        ],
    )
    return max(
        front,
        key=lambda e: e.point(sparse_category).tops_per_watt
        * e.point(dense_category).tops_per_watt,
    )
