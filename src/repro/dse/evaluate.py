"""Evaluation of design points: suite speedups + cost -> efficiency.

A design point is scored per model category by the geometric mean of its
end-to-end speedup over the benchmark suite (Sec. V), turned into effective
TOPS/W and TOPS/mm^2 with the calibrated cost model (Definition V.1).

Everything the paper compares -- borrowing configurations, the hybrid
Griffin, and the calibrated SOTA baseline rows -- evaluates through one
path: the :class:`Design` protocol normalizes "what config runs on this
category and what does it cost" and :func:`evaluate_design` scores any of
them::

    from repro.config import ModelCategory
    from repro.dse.evaluate import EvalSettings, evaluate_design

    ev = evaluate_design("Sparse.B*", (ModelCategory.B,), EvalSettings())
    print(ev.label, ev.speedup(ModelCategory.B))

The batch/parallel entry point -- backed by the two-tier persistent cache,
so repeated figure runs answer from disk -- is
:meth:`repro.api.Session.evaluate`.  (The pre-1.0 per-family functions
``evaluate_arch`` / ``evaluate_griffin`` were removed in v2.0 after their
deprecation cycle; see the migration table in ``docs/architecture.md``.)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, is_dataclass
from enum import Enum
from typing import Mapping, Protocol, Sequence, Union, runtime_checkable

from repro.baselines.registry import BaselineArch, all_baselines, baseline_names
from repro.config import (
    GRIFFIN,
    SPARSE_A_STAR,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
    ArchConfig,
    GriffinArch,
    ModelCategory,
    dense,
    parse_notation,
)
from repro.core.metrics import EfficiencyPoint, geometric_mean
from repro.hw.components import FamilyCalibration
from repro.hw.cost import (
    CostBreakdown,
    cost_of,
    gated_power_mw,
    griffin_category_power_mw,
    griffin_cost,
)
from repro.sim.engine import SimulationOptions, simulate_network
from repro.workloads.registry import (
    BENCHMARKS,
    Workload,
    WorkloadLike,
    parse_workload,
)


@dataclass(frozen=True)
class EvalSettings:
    """Suite and sampling choices for a design-space run.

    ``quick`` trims the suite to three representative benchmarks and uses
    lighter tile sampling -- what the checked-in benchmarks run by default
    so a full figure regenerates in minutes.  Construct with
    ``quick=False`` for the full six-network Table IV suite.  ``networks``
    replaces the suite entirely: each entry is any workload token
    :func:`repro.workloads.registry.parse_workload` accepts -- a preset
    name, a ``name:override`` derivation, a WorkloadSpec JSON path, or a
    :class:`~repro.workloads.registry.Workload` object (used by ``repro
    sweep --network``, ``Session.evaluate(networks=...)`` and the fast
    test sweeps).  Tokens resolve lazily at suite time, so settings stay
    cheap to pickle into worker processes.
    """

    quick: bool = True
    options: SimulationOptions = field(
        default_factory=lambda: SimulationOptions(passes_per_gemm=3, max_t_steps=64)
    )
    networks: tuple[WorkloadLike, ...] | None = None

    def suite(self, category: ModelCategory) -> list[Workload]:
        if self.networks is not None:
            resolved = [parse_workload(token) for token in self.networks]
            picked = [w for w in resolved if category in w.categories()]
            if not picked:
                names = [w.name for w in resolved]
                raise ValueError(
                    f"none of {names} exercises {category.value}"
                )
            return picked
        infos = [b for b in BENCHMARKS if category in b.categories()]
        if self.quick:
            keep = {"AlexNet", "ResNet50", "BERT"}
            quick_infos = [b for b in infos if b.name in keep]
            return quick_infos or infos
        return infos


def category_speedup(
    config: ArchConfig,
    category: ModelCategory,
    settings: EvalSettings | None = None,
) -> float:
    """Geometric-mean end-to-end speedup of a config on one category."""
    settings = settings or EvalSettings()
    speedups = [
        simulate_network(info.network, config, category, settings.options).speedup
        for info in settings.suite(category)
    ]
    return geometric_mean(speedups)


@dataclass(frozen=True)
class DesignEvaluation:
    """A design point's score card across model categories."""

    label: str
    points: tuple[EfficiencyPoint, ...]

    def point(self, category: ModelCategory) -> EfficiencyPoint:
        for pt in self.points:
            if pt.category == category.value:
                return pt
        raise KeyError(f"{self.label} was not evaluated on {category}")

    def speedup(self, category: ModelCategory) -> float:
        return self.point(category).speedup


@runtime_checkable
class Design(Protocol):
    """Anything the session API can evaluate.

    A design answers three questions: which borrowing configuration runs a
    given model category (Griffin morphs, everything else is fixed), what
    does the hardware cost, and -- given a simulated speedup -- what is the
    resulting efficiency point (power may be category-dependent through
    clock gating or calibrated per-category rows).  Implementations must be
    picklable so :class:`repro.runtime.runner.SweepRunner` can ship them to
    worker processes.
    """

    @property
    def label(self) -> str: ...

    def config_for(self, category: ModelCategory) -> ArchConfig: ...

    def cost(self) -> CostBreakdown: ...

    def efficiency_point(
        self, category: ModelCategory, speedup: float
    ) -> EfficiencyPoint: ...


@dataclass(frozen=True)
class ConfigDesign:
    """A fixed borrowing configuration, optionally with calibrated cost.

    ``calibration`` swaps the family calibration used by the cost model
    (the transcribed SOTA rows); explicit ``power_mw`` / ``area_um2``
    override the model entirely.  With no overrides this reproduces the
    historical ``evaluate_arch`` scoring exactly: calibrated cost, and the
    sparse machinery clock-gated on categories it cannot exploit.
    """

    config: ArchConfig
    calibration: FamilyCalibration | None = None
    power_mw: float | None = None
    area_um2: float | None = None

    @property
    def label(self) -> str:
        return self.config.label

    def config_for(self, category: ModelCategory) -> ArchConfig:
        return self.config

    def cost(self) -> CostBreakdown:
        return cost_of(self.config, calibration=self.calibration)

    def efficiency_point(
        self, category: ModelCategory, speedup: float
    ) -> EfficiencyPoint:
        cost = self.cost()
        area = self.area_um2 if self.area_um2 is not None else cost.total_area_um2
        if self.power_mw is not None:
            power = self.power_mw
        else:
            # Table VII power is the sparse operating point; idle sparse
            # machinery clock-gates on the other categories.
            power = gated_power_mw(cost, self.config, category)
        return EfficiencyPoint(
            label=self.config.label,
            category=category.value,
            speedup=speedup,
            power_mw=power,
            area_um2=area,
            geometry=self.config.geometry,
        )


@dataclass(frozen=True)
class GriffinDesign:
    """The hybrid: per category it morphs, the cost stays fixed."""

    griffin: GriffinArch = field(default_factory=lambda: GRIFFIN)

    @property
    def label(self) -> str:
        return self.griffin.label

    def config_for(self, category: ModelCategory) -> ArchConfig:
        return self.griffin.config_for(category)

    def cost(self) -> CostBreakdown:
        return griffin_cost(self.griffin)

    def efficiency_point(
        self, category: ModelCategory, speedup: float
    ) -> EfficiencyPoint:
        cost = self.cost()
        return EfficiencyPoint(
            label=self.griffin.label,
            category=category.value,
            speedup=speedup,
            power_mw=griffin_category_power_mw(self.griffin, cost, category),
            area_um2=cost.total_area_um2,
            geometry=self.griffin.geometry,
        )


@dataclass(frozen=True)
class BaselineDesign:
    """A Table V comparison architecture with its calibrated cost row.

    Power per category comes from the baseline's calibrated per-category
    row when it has one (SparTen), otherwise from clock-gating the
    calibrated cost -- the same treatment the Fig. 8 reproduction applies.
    """

    arch: BaselineArch

    @property
    def label(self) -> str:
        return self.arch.name

    def config_for(self, category: ModelCategory) -> ArchConfig:
        return self.arch.config

    def cost(self) -> CostBreakdown:
        return self.arch.cost

    def efficiency_point(
        self, category: ModelCategory, speedup: float
    ) -> EfficiencyPoint:
        if self.arch.category_power_mw and category in self.arch.category_power_mw:
            power = self.arch.category_power_mw[category]
        else:
            power = gated_power_mw(self.arch.cost, self.arch.config, category)
        return EfficiencyPoint(
            label=self.arch.name,
            category=category.value,
            speedup=speedup,
            power_mw=power,
            area_um2=self.arch.cost.total_area_um2,
            geometry=self.arch.config.geometry,
        )


#: What :func:`as_design` accepts: a design, any of the raw architecture
#: objects, or a name understood by :func:`parse_design`.
DesignLike = Union["Design", ArchConfig, GriffinArch, BaselineArch, str]

#: Starred Table VI design points by their paper names (lower-cased).
_STARRED: dict[str, ArchConfig] = {
    "sparse.a*": SPARSE_A_STAR,
    "a*": SPARSE_A_STAR,
    "sparse.b*": SPARSE_B_STAR,
    "b*": SPARSE_B_STAR,
    "sparse.ab*": SPARSE_AB_STAR,
    "ab*": SPARSE_AB_STAR,
}


def parse_design(text: str) -> Design:
    """Parse any design name into a :class:`Design`, uniformly.

    Accepted, all case-insensitive: ``"Dense"`` / ``"Baseline"``,
    ``"Griffin"``, the starred Table VI points (``"Sparse.B*"`` or just
    ``"B*"``), every Table V baseline name (``"SparTen"``,
    ``"TensorDash"``, ``"BitTactical"``, ``"Cnvlutin"``,
    ``"Cambricon-X"``), and the paper's borrowing notation
    (``"B(4,0,1,on)"``, ``"AB(2,0,0,2,0,1,on)"``).

    Errors name the offending token and list every accepted form; a token
    that *looks* like borrowing notation (``"B(4,0)"``) surfaces the
    notation parser's specific complaint instead of the generic list.
    """
    key = text.strip().lower()
    if key in ("dense", "baseline"):
        return ConfigDesign(dense())
    if key == "griffin":
        return GriffinDesign(GRIFFIN)
    if key in _STARRED:
        return ConfigDesign(_STARRED[key])
    for arch in all_baselines():
        if arch.name.lower() == key:
            return BaselineDesign(arch)
    try:
        return ConfigDesign(parse_notation(text))
    except ValueError as exc:
        if "(" in key:
            # The token attempted notation: the specific parse error
            # ("B(...) takes 3 distances, got 2") beats the generic list.
            raise ValueError(f"unrecognized design {text!r}: {exc}") from None
        raise ValueError(_parse_design_error(text)) from None


def _parse_design_error(text: str) -> str:
    """The full 'what would have been accepted' message for a bad token."""
    starred = sorted({name for name in _STARRED if name.startswith("sparse")})
    return (
        f"unrecognized design {text!r}; accepted forms (case-insensitive):\n"
        f"  - named designs: Dense (alias Baseline), Griffin\n"
        f"  - starred Table VI points: "
        + ", ".join(_STARRED[name].label for name in starred)
        + f" (short forms {', '.join(name.upper() for name in ('a*', 'b*', 'ab*'))})\n"
        f"  - Table V baselines: {', '.join(baseline_names())}\n"
        f"  - borrowing notation: 'A(da1,da2,da3[,on|off])', "
        f"'B(db1,db2,db3[,on|off])', 'AB(da1,da2,da3,db1,db2,db3[,on|off])', "
        f"e.g. 'B(4,0,1,on)'"
    )


def as_design(obj: DesignLike) -> Design:
    """Coerce any design-like object to a :class:`Design`."""
    if isinstance(obj, ArchConfig):
        return ConfigDesign(obj)
    if isinstance(obj, GriffinArch):
        return GriffinDesign(obj)
    if isinstance(obj, BaselineArch):
        return BaselineDesign(obj)
    if isinstance(obj, str):
        return parse_design(obj)
    if isinstance(obj, Design):
        return obj
    raise TypeError(
        f"cannot evaluate {obj!r}: expected an ArchConfig, GriffinArch, "
        f"BaselineArch, design name, or Design implementation"
    )


#: Bump when the canonical design serialization below changes shape, so
#: externally stored fingerprints (serve coalesce keys, client caches)
#: cannot silently collide across versions.
DESIGN_FINGERPRINT_VERSION = 1


def _canonical(value: object) -> object:
    """JSON-stable canonical form of a design's content.

    Dataclasses flatten to ``{"__class__": name, field: ...}`` in field
    order, enums to their values, mappings to string-keyed dicts (JSON
    serialization sorts the keys).  Anything else non-primitive falls
    back to ``repr`` -- stable for the frozen value objects designs are
    built from.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__name__,
            **{f.name: _canonical(getattr(value, f.name)) for f in fields(value)},
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(_canonical(k)): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in value]
        return sorted(items, key=repr) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def design_fingerprint(design: DesignLike) -> str:
    """Stable content fingerprint of a design (the architecture axis).

    The dual of :func:`repro.workloads.models.network_fingerprint` on the
    design side: two designs fingerprint identically iff their canonical
    content -- configuration fields, calibration, cost overrides --
    matches, independent of how the object was parsed or which process
    built it.  ``repro serve`` coalesces concurrent requests on
    (design fingerprints x workload fingerprints x options); see
    ``docs/serve.md``.
    """
    payload = json.dumps(
        {"v": DESIGN_FINGERPRINT_VERSION, "design": _canonical(as_design(design))},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def evaluate_design(
    design: DesignLike,
    categories: Sequence[ModelCategory],
    settings: EvalSettings | None = None,
) -> DesignEvaluation:
    """Evaluate one design across model categories (the single code path).

    This is the serial unit of work; the batched, parallel, cache-backed
    entry point is :meth:`repro.api.Session.evaluate`.
    """
    design = as_design(design)
    settings = settings or EvalSettings()
    points = tuple(
        design.efficiency_point(
            category,
            category_speedup(design.config_for(category), category, settings),
        )
        for category in categories
    )
    return DesignEvaluation(label=design.label, points=points)
