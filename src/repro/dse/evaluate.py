"""Evaluation of design points: suite speedups + cost -> efficiency.

A design point is scored per model category by the geometric mean of its
end-to-end speedup over the benchmark suite (Sec. V), turned into effective
TOPS/W and TOPS/mm^2 with the calibrated cost model (Definition V.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ArchConfig, GriffinArch, ModelCategory
from repro.core.metrics import EfficiencyPoint, geometric_mean
from repro.hw.components import FamilyCalibration
from repro.hw.cost import cost_of, gated_power_mw, griffin_category_power_mw, griffin_cost
from repro.sim.engine import SimulationOptions, simulate_network
from repro.workloads.registry import BENCHMARKS, BenchmarkInfo


@dataclass(frozen=True)
class EvalSettings:
    """Suite and sampling choices for a design-space run.

    ``quick`` trims the suite to three representative benchmarks and uses
    lighter tile sampling -- what the checked-in benchmarks run by default
    so a full figure regenerates in minutes.  Construct with
    ``quick=False`` for the full six-network Table IV suite.  ``networks``
    restricts the suite to the named benchmarks regardless of ``quick``
    (used by ``repro sweep --network`` and the fast test sweeps).
    """

    quick: bool = True
    options: SimulationOptions = field(
        default_factory=lambda: SimulationOptions(passes_per_gemm=3, max_t_steps=64)
    )
    networks: tuple[str, ...] | None = None

    def suite(self, category: ModelCategory) -> list[BenchmarkInfo]:
        infos = [b for b in BENCHMARKS if category in b.categories()]
        if self.networks is not None:
            wanted = {name.lower() for name in self.networks}
            picked = [b for b in infos if b.name.lower() in wanted]
            if not picked:
                raise ValueError(
                    f"none of {self.networks} exercises {category.value}"
                )
            return picked
        if self.quick:
            keep = {"AlexNet", "ResNet50", "BERT"}
            quick_infos = [b for b in infos if b.name in keep]
            return quick_infos or infos
        return infos


def category_speedup(
    config: ArchConfig,
    category: ModelCategory,
    settings: EvalSettings | None = None,
) -> float:
    """Geometric-mean end-to-end speedup of a config on one category."""
    settings = settings or EvalSettings()
    speedups = [
        simulate_network(info.network, config, category, settings.options).speedup
        for info in settings.suite(category)
    ]
    return geometric_mean(speedups)


@dataclass(frozen=True)
class DesignEvaluation:
    """A design point's score card across model categories."""

    label: str
    points: tuple[EfficiencyPoint, ...]

    def point(self, category: ModelCategory) -> EfficiencyPoint:
        for pt in self.points:
            if pt.category == category.value:
                return pt
        raise KeyError(f"{self.label} was not evaluated on {category}")

    def speedup(self, category: ModelCategory) -> float:
        return self.point(category).speedup


def evaluate_arch(
    config: ArchConfig,
    categories: tuple[ModelCategory, ...],
    settings: EvalSettings | None = None,
    calibration: FamilyCalibration | None = None,
    power_mw: float | None = None,
    area_um2: float | None = None,
) -> DesignEvaluation:
    """Evaluate one configuration across model categories.

    Cost defaults to the calibrated model; explicit ``power_mw`` /
    ``area_um2`` override it (used for the transcription-calibrated
    baseline rows like SparTen).
    """
    settings = settings or EvalSettings()
    cost = cost_of(config, calibration=calibration)
    area = area_um2 if area_um2 is not None else cost.total_area_um2
    points = []
    for category in categories:
        speedup = category_speedup(config, category, settings)
        if power_mw is not None:
            power = power_mw
        else:
            # Table VII power is the sparse operating point; idle sparse
            # machinery clock-gates on the other categories.
            power = gated_power_mw(cost, config, category)
        points.append(
            EfficiencyPoint(
                label=config.label,
                category=category.value,
                speedup=speedup,
                power_mw=power,
                area_um2=area,
                geometry=config.geometry,
            )
        )
    return DesignEvaluation(label=config.label, points=tuple(points))


def evaluate_griffin(
    griffin: GriffinArch,
    categories: tuple[ModelCategory, ...] = tuple(ModelCategory),
    settings: EvalSettings | None = None,
) -> DesignEvaluation:
    """Evaluate the hybrid: per category it morphs, the cost stays fixed."""
    settings = settings or EvalSettings()
    cost = griffin_cost(griffin)
    points = []
    for category in categories:
        config = griffin.config_for(category)
        speedup = category_speedup(config, category, settings)
        points.append(
            EfficiencyPoint(
                label=griffin.label,
                category=category.value,
                speedup=speedup,
                power_mw=griffin_category_power_mw(griffin, cost, category),
                area_um2=cost.total_area_um2,
                geometry=griffin.geometry,
            )
        )
    return DesignEvaluation(label=griffin.label, points=tuple(points))
