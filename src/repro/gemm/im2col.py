"""im2col lowering of convolution activations to GEMM operand masks.

The input feature map of a convolution is reshaped to a 2-D matrix
``A[M, K]`` with ``M = Hout*Wout`` and ``K = Cin*R*S`` (Sec. II-A).  A zero
in the feature map appears at every (R*S) patch position that covers it, so
activation sparsity in the GEMM operand inherits strong spatial correlation
-- which is exactly the structure the shuffler and the lane/PE borrowing
dimensions exploit.  This module performs the lowering on *masks* (the
simulator only needs nonzero structure, never values).
"""

from __future__ import annotations

import numpy as np


def conv_output_size(input_hw: int, kernel: int, stride: int = 1, padding: int = 0) -> int:
    """Spatial output size of a convolution."""
    out = (input_hw + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"convolution produces empty output: input={input_hw}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col_mask(
    fmap_mask: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Lower a feature-map nonzero mask ``[C, H, W]`` to a GEMM mask ``[M, K]``.

    Rows index output pixels (row-major over ``Hout x Wout``); columns index
    ``(c, r, s)`` in C-major order, matching the ``K = Cin*R*S`` flattening
    of the weight tensor.  Padded positions are zeros.
    """
    fmap_mask = np.asarray(fmap_mask, dtype=bool)
    if fmap_mask.ndim != 3:
        raise ValueError(f"feature-map mask must be [C, H, W], got shape {fmap_mask.shape}")
    channels, height, width = fmap_mask.shape
    if height != width:
        raise ValueError("only square feature maps are supported")
    out_hw = conv_output_size(height, kernel, stride, padding)

    padded = np.zeros((channels, height + 2 * padding, width + 2 * padding), dtype=bool)
    padded[:, padding : padding + height, padding : padding + width] = fmap_mask

    rows = out_hw * out_hw
    cols = channels * kernel * kernel
    out = np.empty((rows, cols), dtype=bool)
    col = 0
    for c in range(channels):
        for r in range(kernel):
            for s in range(kernel):
                patch = padded[
                    c,
                    r : r + out_hw * stride : stride,
                    s : s + out_hw * stride : stride,
                ]
                out[:, col] = patch.reshape(rows)
                col += 1
    return out
