"""GEMM substrate: layer descriptors, im2col lowering, and core tiling."""

from repro.gemm.layers import AttentionSpec, Conv2DSpec, GemmShape, LayerSpec, LinearSpec
from repro.gemm.im2col import im2col_mask, conv_output_size
from repro.gemm.tiling import TileGrid, tile_grid

__all__ = [
    "GemmShape",
    "LayerSpec",
    "Conv2DSpec",
    "LinearSpec",
    "AttentionSpec",
    "im2col_mask",
    "conv_output_size",
    "TileGrid",
    "tile_grid",
]
