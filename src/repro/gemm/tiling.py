"""Blocking of a GEMM onto the core (Figure 1).

The outer loops tile ``C += A x B`` into passes that fit the accelerator:
each pass computes an ``M0 x N0`` output block by streaming
``T = ceil(K / K0)`` time steps through the ``K0``-wide dot-product units.
The number of dense cycles for a layer is therefore
``ceil(M/M0) * ceil(N/N0) * ceil(K/K0)`` (output-stationary dataflow).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import CoreGeometry
from repro.gemm.layers import GemmShape


@dataclass(frozen=True)
class TileGrid:
    """The pass structure of one GEMM on a given core geometry."""

    shape: GemmShape
    geometry: CoreGeometry
    m_tiles: int
    n_tiles: int
    t_steps: int

    @property
    def passes(self) -> int:
        """Output tiles per repeat of the GEMM."""
        return self.m_tiles * self.n_tiles

    @property
    def total_passes(self) -> int:
        return self.passes * self.shape.repeats

    @property
    def dense_cycles(self) -> int:
        """Cycles the dense baseline needs for the whole GEMM."""
        return self.total_passes * self.t_steps

    @property
    def edge_m(self) -> int:
        """Rows of the last (possibly partial) M tile."""
        rem = self.shape.m % self.geometry.m0
        return rem if rem else self.geometry.m0

    @property
    def edge_n(self) -> int:
        rem = self.shape.n % self.geometry.n0
        return rem if rem else self.geometry.n0

    @property
    def utilization(self) -> float:
        """Dense MAC utilization (edge tiles waste lanes/PEs)."""
        ideal = self.shape.macs / self.geometry.macs_per_cycle
        return ideal / self.dense_cycles if self.dense_cycles else 0.0


def tile_grid(shape: GemmShape, geometry: CoreGeometry) -> TileGrid:
    """Block a GEMM shape onto the core per Figure 1."""
    return TileGrid(
        shape=shape,
        geometry=geometry,
        m_tiles=math.ceil(shape.m / geometry.m0),
        n_tiles=math.ceil(shape.n / geometry.n0),
        t_steps=math.ceil(shape.k / geometry.k0),
    )
