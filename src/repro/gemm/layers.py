"""Layer descriptors and their lowering to GEMM shapes (Sec. II-A).

Every compute layer of the benchmark networks is expressed as one or more
``C += A x B`` GEMMs:

* a convolution layer lowers to ``M = Hout*Wout``, ``K = Cin*R*S``,
  ``N = Cout`` (the input feature map is im2col-reshaped into A and the
  kernel flattened into B);
* a fully-connected layer is ``M = batch``, ``K = in_features``,
  ``N = out_features``;
* a transformer self-attention layer contributes the Q/K/V/output
  projections and the two score/context batched GEMMs, a feed-forward layer
  the two expansion/contraction GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GemmShape:
    """One ``C(M,N) += A(M,K) x B(K,N)`` operation.

    ``repeats`` folds identical GEMMs (e.g. one per attention head or per
    batch element) into a single shape with a multiplier.
    ``weight_is_dynamic`` marks GEMMs whose B operand is produced at run
    time (attention scores/context), which therefore can never be pruned:
    they stay dense on the weight side regardless of the model category.
    ``channels`` is the channel count of the K dimension: convolutions use
    the channels-innermost (HWC) blocking of the paper's Figure 1, so
    element ``k`` belongs to channel ``k % channels``.  Zero (the default)
    means every K position is its own channel (fully-connected layers).
    """

    m: int
    k: int
    n: int
    repeats: int = 1
    weight_is_dynamic: bool = False
    channels: int = 0

    def __post_init__(self) -> None:
        for name in ("m", "k", "n", "repeats"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.channels < 0 or self.channels > self.k:
            raise ValueError(f"channels must be in [0, k], got {self.channels}")

    @property
    def k_channels(self) -> int:
        """Effective channel count of the K dimension."""
        return self.channels if self.channels else self.k

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for all repeats."""
        return self.m * self.k * self.n * self.repeats


@dataclass(frozen=True)
class LayerSpec:
    """Base class: a named layer that lowers to GEMM shapes."""

    name: str

    def gemms(self) -> list[GemmShape]:
        raise NotImplementedError

    @property
    def macs(self) -> int:
        return sum(g.macs for g in self.gemms())


@dataclass(frozen=True)
class Conv2DSpec(LayerSpec):
    """A 2-D convolution layer (optionally grouped / depthwise)."""

    in_channels: int = 1
    out_channels: int = 1
    kernel: int = 1
    input_hw: int = 1
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"{self.name}: channels ({self.in_channels}, {self.out_channels}) "
                f"not divisible by groups={self.groups}"
            )

    @property
    def output_hw(self) -> int:
        return (self.input_hw + 2 * self.padding - self.kernel) // self.stride + 1

    def gemms(self) -> list[GemmShape]:
        out_hw = self.output_hw
        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        return [
            GemmShape(
                m=out_hw * out_hw,
                k=cin_g * self.kernel * self.kernel,
                n=cout_g,
                repeats=self.groups,
                channels=cin_g,
            )
        ]


@dataclass(frozen=True)
class LinearSpec(LayerSpec):
    """A fully-connected layer over a batch (or token) dimension."""

    in_features: int = 1
    out_features: int = 1
    batch: int = 1

    def gemms(self) -> list[GemmShape]:
        return [GemmShape(m=self.batch, k=self.in_features, n=self.out_features)]


@dataclass(frozen=True)
class AttentionSpec(LayerSpec):
    """A transformer self-attention block for one sequence.

    Contributes four weight projections (prunable) plus the two dynamic
    batched GEMMs (scores ``Q x K^T`` and context ``scores x V``), which are
    marked ``weight_is_dynamic`` since both operands are activations.
    """

    hidden: int = 768
    heads: int = 12
    seq_len: int = 64

    def gemms(self) -> list[GemmShape]:
        head_dim = self.hidden // self.heads
        proj = GemmShape(m=self.seq_len, k=self.hidden, n=self.hidden)
        scores = GemmShape(
            m=self.seq_len, k=head_dim, n=self.seq_len,
            repeats=self.heads, weight_is_dynamic=True,
        )
        context = GemmShape(
            m=self.seq_len, k=self.seq_len, n=head_dim,
            repeats=self.heads, weight_is_dynamic=True,
        )
        return [proj, proj, proj, scores, context, proj]


@dataclass(frozen=True)
class FeedForwardSpec(LayerSpec):
    """A transformer feed-forward block (expand + contract)."""

    hidden: int = 768
    intermediate: int = 3072
    seq_len: int = 64

    def gemms(self) -> list[GemmShape]:
        return [
            GemmShape(m=self.seq_len, k=self.hidden, n=self.intermediate),
            GemmShape(m=self.seq_len, k=self.intermediate, n=self.hidden),
        ]
