"""repro: a reproduction of Griffin (HPCA 2022).

Griffin is a design-space study of sparse DNN accelerators built as
*borrowing configurations* on top of an optimized dense GEMM core, plus a
hybrid architecture that morphs between dual- and single-sparse modes.  The
public API exposes the architecture configuration space, the cycle-level
performance model, the calibrated power/area cost model, the six Table IV
benchmark workloads, the SOTA baselines, and the design-space explorer that
regenerates every table and figure of the paper.  The
:class:`~repro.api.Session` facade is the unified evaluation entry point:
configs, Griffin, and baselines all score through one batched,
cache-backed ``session.evaluate(...)`` call, and declarative
:class:`~repro.api.ExperimentSpec` JSON files run via ``repro run``.
"""

from repro.config import (
    GRIFFIN,
    PAPER_CORE,
    SPARSE_A_STAR,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
    ArchConfig,
    BorrowConfig,
    CoreGeometry,
    GriffinArch,
    ModelCategory,
    dense,
    parse_notation,
    sparse_a,
    sparse_ab,
    sparse_b,
)
from repro.api import (
    ExperimentResult,
    ExperimentSpec,
    SearchResult,
    Session,
    run_experiment,
)
from repro.core.overhead import HardwareOverhead, overhead_of
from repro.obs import (
    MetricsRegistry,
    Tracer,
    current_trace_id,
    set_tracer,
    tracing,
)
from repro.dse.evaluate import (
    BaselineDesign,
    ConfigDesign,
    Design,
    GriffinDesign,
    as_design,
    design_fingerprint,
    evaluate_design,
    parse_design,
)
from repro.runtime import CacheStats, PersistentLayerCache, SweepOutcome, SweepRunner
from repro.search import (
    EvolutionarySearch,
    ExhaustiveSearch,
    ObjectiveSet,
    ParetoArchive,
    RandomSearch,
    SearchSpace,
    SearchSpec,
    SurrogateScreenedSearch,
    paper_space,
)
from repro.surrogate import (
    SurrogateConstants,
    SurrogateModel,
    load_constants,
    save_constants,
)
from repro.sim.engine import (
    NETWORK_KEY_VERSION,
    SIMULATION_KEY_VERSION,
    NetworkSimResult,
    SimulationOptions,
    network_key,
    persistent_cache,
    set_persistent_cache,
    simulate_layer,
    simulate_network,
    simulate_tile,
    simulation_key,
)
from repro.workloads.models import Network, network_fingerprint
from repro.workloads.registry import (
    BENCHMARKS,
    WORKLOADS,
    Workload,
    WorkloadRegistry,
    benchmark,
    benchmark_names,
    parse_workload,
)
from repro.workloads.spec import (
    AnalyticalSparsity,
    ExplicitSparsity,
    UniformSparsity,
    WorkloadSpec,
    register_sparsity_profile,
)

__version__ = "2.2.0"

__all__ = [
    "ArchConfig",
    "BorrowConfig",
    "CoreGeometry",
    "GriffinArch",
    "ModelCategory",
    "dense",
    "sparse_a",
    "sparse_b",
    "sparse_ab",
    "parse_notation",
    "PAPER_CORE",
    "GRIFFIN",
    "SPARSE_A_STAR",
    "SPARSE_B_STAR",
    "SPARSE_AB_STAR",
    "Session",
    "ExperimentSpec",
    "ExperimentResult",
    "SearchResult",
    "run_experiment",
    "SearchSpace",
    "SearchSpec",
    "paper_space",
    "ObjectiveSet",
    "ParetoArchive",
    "ExhaustiveSearch",
    "RandomSearch",
    "EvolutionarySearch",
    "SurrogateScreenedSearch",
    "SurrogateModel",
    "SurrogateConstants",
    "load_constants",
    "save_constants",
    "Design",
    "ConfigDesign",
    "GriffinDesign",
    "BaselineDesign",
    "as_design",
    "parse_design",
    "design_fingerprint",
    "evaluate_design",
    "HardwareOverhead",
    "overhead_of",
    "Tracer",
    "tracing",
    "set_tracer",
    "current_trace_id",
    "MetricsRegistry",
    "simulate_tile",
    "simulate_layer",
    "simulate_network",
    "simulation_key",
    "network_key",
    "SIMULATION_KEY_VERSION",
    "NETWORK_KEY_VERSION",
    "persistent_cache",
    "set_persistent_cache",
    "SimulationOptions",
    "NetworkSimResult",
    "CacheStats",
    "PersistentLayerCache",
    "SweepOutcome",
    "SweepRunner",
    "BENCHMARKS",
    "WORKLOADS",
    "Network",
    "Workload",
    "WorkloadRegistry",
    "WorkloadSpec",
    "AnalyticalSparsity",
    "UniformSparsity",
    "ExplicitSparsity",
    "register_sparsity_profile",
    "network_fingerprint",
    "parse_workload",
    "benchmark",
    "benchmark_names",
    "__version__",
]
