"""Content-addressed persistent cache of simulated layer results.

Layer simulations are pure functions of the :func:`repro.sim.engine.simulation_key`
inputs, so their results can be stored on disk and reused across processes
and sessions: a design-space sweep that re-runs after a crash, a warm
re-generation of a figure, or a pool of worker processes all hit the same
store.  Entries are one JSON file per key, sharded by key prefix::

    <root>/layers/<key[:2]>/<key>.json

Writes are atomic (temp file + rename) so concurrent workers may race on
the same key without corrupting it -- last writer wins and every winner
wrote identical bytes.  Unreadable or corrupt entries are treated as misses
and recomputed (and counted in :attr:`CacheStats.errors`).

The root directory defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
Delete the directory (or call :meth:`PersistentLayerCache.clear`) to
invalidate; the engine also versions keys with
:data:`repro.sim.engine.SIMULATION_KEY_VERSION`, so stale schema entries
are simply never looked up again.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.gemm.layers import GemmShape
from repro.sim.engine import GemmSimResult, LayerSimResult

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk entry schema version (independent of the simulation-key version).
ENTRY_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Counters of one cache's activity (or an aggregate over workers)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none happened)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.errors += other.errors

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.puts, self.errors)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Activity that happened after ``since`` was snapshotted."""
        return CacheStats(
            self.hits - since.hits,
            self.misses - since.misses,
            self.puts - since.puts,
            self.errors - since.errors,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
        }

    @staticmethod
    def from_dict(data: dict[str, int]) -> "CacheStats":
        return CacheStats(
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            puts=int(data.get("puts", 0)),
            errors=int(data.get("errors", 0)),
        )


def _gemm_shape_to_dict(shape: GemmShape) -> dict:
    return {
        "m": shape.m,
        "k": shape.k,
        "n": shape.n,
        "repeats": shape.repeats,
        "weight_is_dynamic": shape.weight_is_dynamic,
        "channels": shape.channels,
    }


def _gemm_shape_from_dict(data: dict) -> GemmShape:
    return GemmShape(
        m=int(data["m"]),
        k=int(data["k"]),
        n=int(data["n"]),
        repeats=int(data["repeats"]),
        weight_is_dynamic=bool(data["weight_is_dynamic"]),
        channels=int(data["channels"]),
    )


def result_to_dict(result: LayerSimResult) -> dict:
    """JSON-serializable form of a layer result (exact float round-trip)."""
    return {
        "v": ENTRY_VERSION,
        "name": result.name,
        "cycles": result.cycles,
        "dense_cycles": result.dense_cycles,
        "gemms": [
            {
                "shape": _gemm_shape_to_dict(g.shape),
                "cycles": g.cycles,
                "dense_cycles": g.dense_cycles,
                "sampled_passes": g.sampled_passes,
            }
            for g in result.gemms
        ],
    }


def result_from_dict(data: dict) -> LayerSimResult:
    """Inverse of :func:`result_to_dict`; raises on any malformed entry."""
    if data.get("v") != ENTRY_VERSION:
        raise ValueError(f"unsupported cache entry version: {data.get('v')!r}")
    gemms = tuple(
        GemmSimResult(
            shape=_gemm_shape_from_dict(g["shape"]),
            cycles=float(g["cycles"]),
            dense_cycles=int(g["dense_cycles"]),
            sampled_passes=int(g["sampled_passes"]),
        )
        for g in data["gemms"]
    )
    return LayerSimResult(
        name=str(data["name"]),
        cycles=float(data["cycles"]),
        dense_cycles=int(data["dense_cycles"]),
        gemms=gemms,
    )


class PersistentLayerCache:
    """Disk-backed :class:`repro.sim.engine.LayerResultCache` implementation."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    @property
    def layers_dir(self) -> Path:
        return self.root / "layers"

    def path_for(self, key: str) -> Path:
        return self.layers_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> LayerSimResult | None:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            result = result_from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError):
            # Corrupt or stale-schema entry: drop it and recompute.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: LayerSimResult) -> None:
        path = self.path_for(key)
        payload = json.dumps(result_to_dict(result), separators=(",", ":"))
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full disk never fails the simulation.
            self.stats.errors += 1
            return
        self.stats.puts += 1

    def __len__(self) -> int:
        if not self.layers_dir.is_dir():
            return 0
        return sum(1 for _ in self.layers_dir.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached layer entry; returns how many were removed."""
        removed = 0
        if not self.layers_dir.is_dir():
            return 0
        for entry in self.layers_dir.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
