"""Content-addressed, two-tier persistent cache of simulation results.

Layer simulations are pure functions of the :func:`repro.sim.engine.simulation_key`
inputs, so their results can be stored on disk and reused across processes
and sessions: a design-space sweep that re-runs after a crash, a warm
re-generation of a figure, or a pool of worker processes all hit the same
store.  The store has two tiers:

* the **layer tier** holds one :class:`~repro.sim.engine.LayerSimResult`
  per :func:`~repro.sim.engine.simulation_key`;
* the **network tier** holds one :class:`~repro.sim.engine.NetworkSimResult`
  per :func:`~repro.sim.engine.network_key`, so a warm full-figure run
  resolves each network in a single read (zero layer simulations, zero
  layer-tier lookups) and falls back to the layer tier -- and then to
  simulation -- on a miss or a corrupt entry.

Entries are one JSON file per key, sharded by key prefix::

    <root>/layers/<key[:2]>/<key>.json      # layer tier
    <root>/networks/<key[:2]>/<key>.json    # network tier

Writes are atomic (temp file + rename) so concurrent workers may race on
the same key without corrupting it -- last writer wins and every winner
wrote identical bytes.  Unreadable or corrupt entries are treated as misses
and recomputed (and counted in :attr:`CacheStats.errors`).

The root directory defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
Delete the directory (or call :meth:`PersistentLayerCache.clear`) to
invalidate; the engine also versions keys with
:data:`repro.sim.engine.SIMULATION_KEY_VERSION` and
:data:`repro.sim.engine.NETWORK_KEY_VERSION`, so stale schema entries are
simply never looked up again (network keys embed the layer keys, hence a
simulation-semantics bump invalidates both tiers at once).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.config import ModelCategory
from repro.gemm.layers import GemmShape
from repro.obs import trace as obs
from repro.sim.engine import GemmSimResult, LayerSimResult, NetworkSimResult

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk layer-entry schema version (independent of the key versions).
ENTRY_VERSION = 1

#: On-disk network-entry schema version.
NETWORK_ENTRY_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Counters of one cache's activity (or an aggregate over workers).

    ``hits`` / ``misses`` / ``puts`` / ``errors`` are **unified totals
    across both tiers**; the ``network_*`` fields record the network-tier
    share of each, so the layer-tier share is always the difference (also
    exposed as the ``layer_*`` properties).  Keeping one flat object makes
    the tier breakdown survive every existing aggregation path -- worker
    chunk deltas, session accumulation, sweep outcomes -- unchanged.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0
    network_hits: int = 0
    network_misses: int = 0
    network_puts: int = 0
    network_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none happened)."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def layer_hits(self) -> int:
        return self.hits - self.network_hits

    @property
    def layer_misses(self) -> int:
        return self.misses - self.network_misses

    @property
    def layer_puts(self) -> int:
        return self.puts - self.network_puts

    @property
    def layer_errors(self) -> int:
        return self.errors - self.network_errors

    @property
    def layer_lookups(self) -> int:
        return self.layer_hits + self.layer_misses

    @property
    def network_lookups(self) -> int:
        return self.network_hits + self.network_misses

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.errors += other.errors
        self.network_hits += other.network_hits
        self.network_misses += other.network_misses
        self.network_puts += other.network_puts
        self.network_errors += other.network_errors

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.puts, self.errors,
            self.network_hits, self.network_misses,
            self.network_puts, self.network_errors,
        )

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Activity that happened after ``since`` was snapshotted."""
        return CacheStats(
            self.hits - since.hits,
            self.misses - since.misses,
            self.puts - since.puts,
            self.errors - since.errors,
            self.network_hits - since.network_hits,
            self.network_misses - since.network_misses,
            self.network_puts - since.network_puts,
            self.network_errors - since.network_errors,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
            "network_hits": self.network_hits,
            "network_misses": self.network_misses,
            "network_puts": self.network_puts,
            "network_errors": self.network_errors,
        }

    @staticmethod
    def from_dict(data: dict[str, int]) -> "CacheStats":
        return CacheStats(
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            puts=int(data.get("puts", 0)),
            errors=int(data.get("errors", 0)),
            network_hits=int(data.get("network_hits", 0)),
            network_misses=int(data.get("network_misses", 0)),
            network_puts=int(data.get("network_puts", 0)),
            network_errors=int(data.get("network_errors", 0)),
        )


def _gemm_shape_to_dict(shape: GemmShape) -> dict:
    return {
        "m": shape.m,
        "k": shape.k,
        "n": shape.n,
        "repeats": shape.repeats,
        "weight_is_dynamic": shape.weight_is_dynamic,
        "channels": shape.channels,
    }


def _gemm_shape_from_dict(data: dict) -> GemmShape:
    return GemmShape(
        m=int(data["m"]),
        k=int(data["k"]),
        n=int(data["n"]),
        repeats=int(data["repeats"]),
        weight_is_dynamic=bool(data["weight_is_dynamic"]),
        channels=int(data["channels"]),
    )


def result_to_dict(result: LayerSimResult) -> dict:
    """JSON-serializable form of a layer result (exact float round-trip)."""
    return {
        "v": ENTRY_VERSION,
        "name": result.name,
        "cycles": result.cycles,
        "dense_cycles": result.dense_cycles,
        "gemms": [
            {
                "shape": _gemm_shape_to_dict(g.shape),
                "cycles": g.cycles,
                "dense_cycles": g.dense_cycles,
                "sampled_passes": g.sampled_passes,
            }
            for g in result.gemms
        ],
    }


def result_from_dict(data: dict) -> LayerSimResult:
    """Inverse of :func:`result_to_dict`; raises on any malformed entry."""
    if data.get("v") != ENTRY_VERSION:
        raise ValueError(f"unsupported cache entry version: {data.get('v')!r}")
    gemms = tuple(
        GemmSimResult(
            shape=_gemm_shape_from_dict(g["shape"]),
            cycles=float(g["cycles"]),
            dense_cycles=int(g["dense_cycles"]),
            sampled_passes=int(g["sampled_passes"]),
        )
        for g in data["gemms"]
    )
    return LayerSimResult(
        name=str(data["name"]),
        cycles=float(data["cycles"]),
        dense_cycles=int(data["dense_cycles"]),
        gemms=gemms,
    )


def network_result_to_dict(result: NetworkSimResult) -> dict:
    """JSON-serializable form of a network result (exact float round-trip)."""
    return {
        "v": NETWORK_ENTRY_VERSION,
        "network": result.network,
        "config": result.config,
        "category": result.category.value,
        "cycles": result.cycles,
        "dense_cycles": result.dense_cycles,
        "layers": [result_to_dict(layer) for layer in result.layers],
    }


def network_result_from_dict(data: dict) -> NetworkSimResult:
    """Inverse of :func:`network_result_to_dict`; raises on malformed entries."""
    if data.get("v") != NETWORK_ENTRY_VERSION:
        raise ValueError(
            f"unsupported network cache entry version: {data.get('v')!r}"
        )
    return NetworkSimResult(
        network=str(data["network"]),
        config=str(data["config"]),
        category=ModelCategory(data["category"]),
        cycles=float(data["cycles"]),
        dense_cycles=int(data["dense_cycles"]),
        layers=tuple(result_from_dict(layer) for layer in data["layers"]),
    )


class _CorruptEntry(Exception):
    """Internal: a cache file existed but did not decode."""


class PersistentLayerCache:
    """Disk-backed two-tier result cache.

    Implements both engine protocols: the
    :class:`~repro.sim.engine.LayerResultCache` tier (``get`` / ``put``)
    and the :class:`~repro.sim.engine.NetworkResultCache` tier
    (``get_network`` / ``put_network``).  Both tiers share the root
    directory, the atomic-write discipline, and one unified
    :class:`CacheStats` object (tier shares in its ``network_*`` /
    ``layer_*`` views).
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    @property
    def layers_dir(self) -> Path:
        return self.root / "layers"

    @property
    def networks_dir(self) -> Path:
        return self.root / "networks"

    def path_for(self, key: str) -> Path:
        return self.layers_dir / key[:2] / f"{key}.json"

    def network_path_for(self, key: str) -> Path:
        return self.networks_dir / key[:2] / f"{key}.json"

    def _read(self, path: Path, decode) -> object | None:
        """One tier-agnostic lookup.

        Returns the decoded result, ``None`` for a plain miss (absent or
        unreadable file), or raises ``_CorruptEntry`` after unlinking a
        malformed file so callers can count the error against the right
        tier.
        """
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            return decode(json.loads(text))
        except (ValueError, KeyError, TypeError):
            # Corrupt or stale-schema entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            raise _CorruptEntry from None

    def _write(self, path: Path, payload: str, key: str) -> bool:
        """Atomic write; ``False`` (never an exception) on disk errors."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full disk never fails the simulation.
            return False
        return True

    # ------------------------------------------------------------------
    # Layer tier.
    # ------------------------------------------------------------------

    def get(self, key: str) -> LayerSimResult | None:
        if not obs.ACTIVE.enabled:
            return self._get(key)
        with obs.ACTIVE.span("cache.layer.get", key=key) as span:
            result = self._get(key)
            span.set(hit=result is not None)
        return result

    def _get(self, key: str) -> LayerSimResult | None:
        try:
            result = self._read(self.path_for(key), result_from_dict)
        except _CorruptEntry:
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: LayerSimResult) -> None:
        if not obs.ACTIVE.enabled:
            return self._put(key, result)
        with obs.ACTIVE.span("cache.layer.put", key=key):
            self._put(key, result)

    def _put(self, key: str, result: LayerSimResult) -> None:
        payload = json.dumps(result_to_dict(result), separators=(",", ":"))
        if self._write(self.path_for(key), payload, key):
            self.stats.puts += 1
        else:
            self.stats.errors += 1

    # ------------------------------------------------------------------
    # Network tier.
    # ------------------------------------------------------------------

    def get_network(self, key: str) -> NetworkSimResult | None:
        if not obs.ACTIVE.enabled:
            return self._get_network(key)
        with obs.ACTIVE.span("cache.network.get", key=key) as span:
            result = self._get_network(key)
            span.set(hit=result is not None)
        return result

    def _get_network(self, key: str) -> NetworkSimResult | None:
        try:
            result = self._read(self.network_path_for(key), network_result_from_dict)
        except _CorruptEntry:
            self.stats.errors += 1
            self.stats.network_errors += 1
            self.stats.misses += 1
            self.stats.network_misses += 1
            return None
        if result is None:
            self.stats.misses += 1
            self.stats.network_misses += 1
            return None
        self.stats.hits += 1
        self.stats.network_hits += 1
        return result

    def put_network(self, key: str, result: NetworkSimResult) -> None:
        if not obs.ACTIVE.enabled:
            return self._put_network(key, result)
        with obs.ACTIVE.span("cache.network.put", key=key):
            self._put_network(key, result)

    def _put_network(self, key: str, result: NetworkSimResult) -> None:
        payload = json.dumps(network_result_to_dict(result), separators=(",", ":"))
        if self._write(self.network_path_for(key), payload, key):
            self.stats.puts += 1
            self.stats.network_puts += 1
        else:
            self.stats.errors += 1
            self.stats.network_errors += 1

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total entries on disk across both tiers."""
        total = 0
        for tier in (self.layers_dir, self.networks_dir):
            if tier.is_dir():
                total += sum(1 for _ in sorted(tier.glob("*/*.json")))
        return total

    def clear(self) -> int:
        """Delete every cached entry (both tiers); returns how many."""
        removed = 0
        for tier in (self.layers_dir, self.networks_dir):
            if not tier.is_dir():
                continue
            for entry in sorted(tier.glob("*/*.json")):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
