"""Parallel, cache-backed execution of design-space sweeps.

:class:`SweepRunner` fans the evaluation of a list of design points --
anything :func:`repro.dse.evaluate.as_design` accepts: borrowing
configurations, Griffin, calibrated baseline rows, or design names -- out
over a :class:`concurrent.futures.ProcessPoolExecutor`.  Chunking is
deterministic in (number of points, chunk size) and results are reassembled
in input order, so the outcome is identical to the serial loop for any
worker count -- every evaluation is an independent, seed-deterministic
function of its design point.

Each worker process installs a :class:`repro.runtime.cache.PersistentLayerCache`
rooted at the runner's cache directory, so simulations computed by one
worker (or a previous run) are read from disk instead of recomputed --
whole networks from the network tier in a single read when the exact
evaluation ran before, individual layers from the layer tier otherwise.
The per-chunk cache-activity deltas (with their per-tier breakdown) are
shipped back with the results and aggregated into
:attr:`SweepOutcome.cache_stats`.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config import ModelCategory
from repro.dse.evaluate import (
    Design,
    DesignEvaluation,
    DesignLike,
    EvalSettings,
    as_design,
    evaluate_design,
)
from repro.runtime.cache import CacheStats, PersistentLayerCache, default_cache_dir
from repro.sim import engine

#: Progress callback: (completed design points, total design points).
ProgressFn = Callable[[int, int], None]


@dataclass(frozen=True)
class SweepOutcome:
    """Results and bookkeeping of one sweep run."""

    evaluations: tuple[DesignEvaluation, ...]
    cache_stats: CacheStats
    workers: int
    chunks: int

    def __len__(self) -> int:
        return len(self.evaluations)


def _worker_init(cache_dir: str | None) -> None:
    # Install the runner's cache -- or explicitly none, so a fork-inherited
    # global cache cannot leak into a use_cache=False run.
    cache = PersistentLayerCache(cache_dir) if cache_dir is not None else None
    engine.set_persistent_cache(cache)


def _evaluate_chunk(
    payload: tuple[tuple[int, ...], tuple[Design, ...],
                   tuple[ModelCategory, ...], EvalSettings],
) -> tuple[tuple[int, ...], list[DesignEvaluation], dict[str, int]]:
    """Evaluate one chunk of design points (runs inside a worker process)."""
    indices, designs, categories, settings = payload
    cache = engine.get_persistent_cache()
    before = cache.stats.snapshot() if isinstance(cache, PersistentLayerCache) else None
    evaluations = [evaluate_design(design, categories, settings) for design in designs]
    if before is not None:
        stats = cache.stats.delta(before)
    else:
        stats = CacheStats()
    return indices, evaluations, stats.as_dict()


def chunk_indices(n_items: int, chunk_size: int) -> list[tuple[int, ...]]:
    """Deterministic contiguous chunking of ``range(n_items)``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        tuple(range(start, min(start + chunk_size, n_items)))
        for start in range(0, n_items, chunk_size)
    ]


def default_chunk_size(n_items: int, workers: int) -> int:
    """About four chunks per worker: coarse enough to amortize process
    startup, fine enough that stragglers do not idle the pool."""
    if n_items <= 0:
        return 1
    return max(1, -(-n_items // max(1, workers * 4)))


class SweepRunner:
    """Run design-point evaluations in parallel with a persistent cache.

    Args:
        workers: process count; ``0`` or ``1`` evaluates serially in-process
            (still through the persistent cache).
        cache_dir: root of the two-tier persistent cache; ``None`` picks
            ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
        use_cache: disable the persistent cache entirely with ``False``.
        chunk_size: design points per task; defaults to
            :func:`default_chunk_size`.
        progress: optional callback invoked with (done, total) as chunks
            complete.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool = True,
        chunk_size: int | None = None,
        progress: ProgressFn | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.use_cache = use_cache
        self.cache_dir = (
            str(cache_dir if cache_dir is not None else default_cache_dir())
            if use_cache
            else None
        )
        self.chunk_size = chunk_size
        self.progress = progress

    def run(
        self,
        designs: Sequence[DesignLike],
        categories: Sequence[ModelCategory],
        settings: EvalSettings | None = None,
    ) -> SweepOutcome:
        """Evaluate every design on every category; order-preserving."""
        settings = settings or EvalSettings()
        resolved = tuple(as_design(design) for design in designs)
        categories = tuple(categories)
        if not resolved:
            return SweepOutcome((), CacheStats(), self.workers, 0)
        if self.workers <= 1:
            return self._run_serial(resolved, categories, settings)
        return self._run_parallel(resolved, categories, settings)

    def _run_serial(
        self,
        designs: tuple[Design, ...],
        categories: tuple[ModelCategory, ...],
        settings: EvalSettings,
    ) -> SweepOutcome:
        cache = PersistentLayerCache(self.cache_dir) if self.cache_dir is not None else None
        # Install the runner's cache -- or explicitly none, so a previously
        # installed global cache cannot leak into a use_cache=False run.
        with engine.persistent_cache(cache):
            evaluations = []
            for done, design in enumerate(designs, start=1):
                evaluations.append(evaluate_design(design, categories, settings))
                self._report(done, len(designs))
            stats = cache.stats.snapshot() if cache is not None else CacheStats()
            return SweepOutcome(tuple(evaluations), stats, self.workers, 1)

    def _run_parallel(
        self,
        designs: tuple[Design, ...],
        categories: tuple[ModelCategory, ...],
        settings: EvalSettings,
    ) -> SweepOutcome:
        size = self.chunk_size or default_chunk_size(len(designs), self.workers)
        chunks = chunk_indices(len(designs), size)
        results: list[DesignEvaluation | None] = [None] * len(designs)
        stats = CacheStats()
        done_points = 0
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            initializer=_worker_init,
            initargs=(self.cache_dir,),
        ) as pool:
            pending = {
                pool.submit(
                    _evaluate_chunk,
                    (chunk, tuple(designs[i] for i in chunk), categories, settings),
                )
                for chunk in chunks
            }
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    indices, evaluations, chunk_stats = future.result()
                    for index, evaluation in zip(indices, evaluations):
                        results[index] = evaluation
                    stats.merge(CacheStats.from_dict(chunk_stats))
                    done_points += len(indices)
                    self._report(done_points, len(designs))
        assert all(r is not None for r in results)
        return SweepOutcome(tuple(results), stats, self.workers, len(chunks))

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)
