"""Parallel, cache-backed execution of design-space sweeps.

:class:`SweepRunner` fans the evaluation of a list of design points --
anything :func:`repro.dse.evaluate.as_design` accepts: borrowing
configurations, Griffin, calibrated baseline rows, or design names -- out
over a :class:`concurrent.futures.ProcessPoolExecutor`.  Chunking is
deterministic in (number of points, chunk size) and results are reassembled
in input order, so the outcome is identical to the serial loop for any
worker count -- every evaluation is an independent, seed-deterministic
function of its design point.

Each worker process installs a :class:`repro.runtime.cache.PersistentLayerCache`
rooted at the runner's cache directory, so simulations computed by one
worker (or a previous run) are read from disk instead of recomputed --
whole networks from the network tier in a single read when the exact
evaluation ran before, individual layers from the layer tier otherwise.
The per-chunk cache-activity deltas (with their per-tier breakdown) are
shipped back with the results and aggregated into
:attr:`SweepOutcome.cache_stats`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config import ModelCategory
from repro.dse.evaluate import (
    Design,
    DesignEvaluation,
    DesignLike,
    EvalSettings,
    as_design,
    evaluate_design,
)
from repro.obs import trace as obs
from repro.runtime.cache import CacheStats, PersistentLayerCache, default_cache_dir
from repro.sim import engine

#: Progress callback: (completed design points, total design points).
ProgressFn = Callable[[int, int], None]


@dataclass(frozen=True)
class SweepOutcome:
    """Results and bookkeeping of one sweep run."""

    evaluations: tuple[DesignEvaluation, ...]
    cache_stats: CacheStats
    workers: int
    chunks: int

    def __len__(self) -> int:
        return len(self.evaluations)


def _worker_init(cache_dir: str | None) -> None:
    # Install the runner's cache -- or explicitly none, so a fork-inherited
    # global cache cannot leak into a use_cache=False run.
    cache = PersistentLayerCache(cache_dir) if cache_dir is not None else None
    engine.set_persistent_cache(cache)


def _evaluate_chunk(
    payload: tuple[tuple[int, ...], tuple[Design, ...],
                   tuple[ModelCategory, ...], EvalSettings, bool],
) -> tuple[tuple[int, ...], list[DesignEvaluation], dict[str, int], list[dict]]:
    """Evaluate one chunk of design points (runs inside a worker process).

    When ``traced``, the worker records spans into its own local tracer
    and ships them back as plain dicts; the parent re-parents them with
    :meth:`repro.obs.Tracer.absorb` in chunk order.  The flag never
    reaches the evaluation itself, so results are bitwise-identical
    either way.
    """
    indices, designs, categories, settings, traced = payload
    cache = engine.get_persistent_cache()
    before = cache.stats.snapshot() if isinstance(cache, PersistentLayerCache) else None
    spans: list[dict] = []
    if traced:
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            with tracer.span("runner.chunk", first=indices[0], points=len(indices)):
                evaluations = []
                for index, design in zip(indices, designs):
                    with tracer.span("evaluate.design", index=index, design=design.label):
                        evaluations.append(
                            evaluate_design(design, categories, settings)
                        )
        finally:
            obs.set_tracer(previous)
        spans = tracer.export()
    else:
        evaluations = [
            evaluate_design(design, categories, settings) for design in designs
        ]
    if before is not None:
        stats = cache.stats.delta(before)
    else:
        stats = CacheStats()
    return indices, evaluations, stats.as_dict(), spans


def chunk_indices(n_items: int, chunk_size: int) -> list[tuple[int, ...]]:
    """Deterministic contiguous chunking of ``range(n_items)``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        tuple(range(start, min(start + chunk_size, n_items)))
        for start in range(0, n_items, chunk_size)
    ]


def default_chunk_size(n_items: int, workers: int) -> int:
    """About four chunks per worker: coarse enough to amortize process
    startup, fine enough that stragglers do not idle the pool."""
    if n_items <= 0:
        return 1
    return max(1, -(-n_items // max(1, workers * 4)))


class SweepRunner:
    """Run design-point evaluations in parallel with a persistent cache.

    Args:
        workers: process count; ``0`` or ``1`` evaluates serially in-process
            (still through the persistent cache).
        cache_dir: root of the two-tier persistent cache; ``None`` picks
            ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
        use_cache: disable the persistent cache entirely with ``False``.
        chunk_size: design points per task; defaults to
            :func:`default_chunk_size`.
        progress: optional callback invoked with (done, total) as chunks
            complete (``run`` also takes a per-call override).
        keep_pool: keep the worker process pool warm across ``run`` calls
            instead of creating and tearing one down per call -- what a
            long-lived service (``repro serve``) wants, since pool startup
            dwarfs a cache-warm evaluation.  Call :meth:`close` (or use
            the runner as a context manager) to release it; a later run
            transparently recreates it.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool = True,
        chunk_size: int | None = None,
        progress: ProgressFn | None = None,
        keep_pool: bool = False,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.use_cache = use_cache
        self.cache_dir = (
            str(cache_dir if cache_dir is not None else default_cache_dir())
            if use_cache
            else None
        )
        self.chunk_size = chunk_size
        self.progress = progress
        self.keep_pool = keep_pool
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._submitter: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Lifecycle: the warm pool and the async submission seam.
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=max(1, self.workers),
                    initializer=_worker_init,
                    initargs=(self.cache_dir,),
                )
            return self._pool

    def close(self, wait: bool = True) -> None:
        """Shut down the warm pool and submission threads (idempotent).

        ``wait=False`` cancels queued work and returns without joining
        chunks already running -- for a bounded-time service shutdown.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            submitter, self._submitter = self._submitter, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=not wait)
        if submitter is not None:
            submitter.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def submit(
        self,
        designs: Sequence[DesignLike],
        categories: Sequence[ModelCategory],
        settings: EvalSettings | None = None,
        progress: ProgressFn | None = None,
    ) -> "Future[SweepOutcome]":
        """Schedule :meth:`run` on a background thread; returns a future.

        The asyncio-friendly submission seam: an event loop awaits the
        result without blocking on the (process-pool-coordinating) run
        via ``asyncio.wrap_future(runner.submit(...))``.  Concurrent
        submissions are fine -- each run tracks its own pending chunk
        set, and under ``keep_pool=True`` they interleave over one warm
        pool.
        """
        with self._lock:
            if self._submitter is None:
                self._submitter = ThreadPoolExecutor(
                    max_workers=max(2, self.workers),
                    thread_name_prefix="sweep-submit",
                )
            submitter = self._submitter
        return submitter.submit(self.run, designs, categories, settings, progress)

    def run(
        self,
        designs: Sequence[DesignLike],
        categories: Sequence[ModelCategory],
        settings: EvalSettings | None = None,
        progress: ProgressFn | None = None,
    ) -> SweepOutcome:
        """Evaluate every design on every category; order-preserving.

        ``progress`` overrides the runner-wide callback for this call
        (per-request progress in a shared-runner service).
        """
        settings = settings or EvalSettings()
        progress = progress if progress is not None else self.progress
        resolved = tuple(as_design(design) for design in designs)
        categories = tuple(categories)
        if not resolved:
            return SweepOutcome((), CacheStats(), self.workers, 0)
        if self.workers <= 1:
            return self._run_serial(resolved, categories, settings, progress)
        return self._run_parallel(resolved, categories, settings, progress)

    def _run_serial(
        self,
        designs: tuple[Design, ...],
        categories: tuple[ModelCategory, ...],
        settings: EvalSettings,
        progress: ProgressFn | None,
    ) -> SweepOutcome:
        cache = PersistentLayerCache(self.cache_dir) if self.cache_dir is not None else None
        tracer = obs.ACTIVE
        # Install the runner's cache -- or explicitly none, so a previously
        # installed global cache cannot leak into a use_cache=False run.
        with engine.persistent_cache(cache):
            with tracer.span("runner.serial", points=len(designs)):
                evaluations = []
                for done, design in enumerate(designs, start=1):
                    with tracer.span(
                        "evaluate.design", index=done - 1, design=design.label
                    ):
                        evaluations.append(
                            evaluate_design(design, categories, settings)
                        )
                    self._report(progress, done, len(designs))
            stats = cache.stats.snapshot() if cache is not None else CacheStats()
            return SweepOutcome(tuple(evaluations), stats, self.workers, 1)

    def _run_parallel(
        self,
        designs: tuple[Design, ...],
        categories: tuple[ModelCategory, ...],
        settings: EvalSettings,
        progress: ProgressFn | None,
    ) -> SweepOutcome:
        size = self.chunk_size or default_chunk_size(len(designs), self.workers)
        chunks = chunk_indices(len(designs), size)
        results: list[DesignEvaluation | None] = [None] * len(designs)
        stats = CacheStats()
        done_points = 0
        if self.keep_pool:
            pool = self._ensure_pool()
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)),
                initializer=_worker_init,
                initargs=(self.cache_dir,),
            )
        tracer = obs.ACTIVE
        chunk_spans: dict[int, list[dict]] = {}
        try:
            with tracer.span(
                "runner.parallel",
                points=len(designs),
                chunks=len(chunks),
                workers=self.workers,
            ) as dispatch:
                pending = {
                    pool.submit(
                        _evaluate_chunk,
                        (
                            chunk,
                            tuple(designs[i] for i in chunk),
                            categories,
                            settings,
                            tracer.enabled,
                        ),
                    )
                    for chunk in chunks
                }
                while pending:
                    finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        indices, evaluations, chunk_stats, spans = future.result()
                        for index, evaluation in zip(indices, evaluations):
                            results[index] = evaluation
                        stats.merge(CacheStats.from_dict(chunk_stats))
                        chunk_spans[indices[0]] = spans
                        done_points += len(indices)
                        self._report(progress, done_points, len(designs))
                if tracer.enabled:
                    # Absorb worker spans in chunk order -- not completion
                    # order -- so two traced runs yield structurally
                    # identical span trees.
                    for chunk in chunks:
                        tracer.absorb(chunk_spans.get(chunk[0], []), parent=dispatch)
        finally:
            if not self.keep_pool:
                pool.shutdown(wait=True)
        assert all(r is not None for r in results)
        return SweepOutcome(tuple(results), stats, self.workers, len(chunks))

    @staticmethod
    def _report(progress: ProgressFn | None, done: int, total: int) -> None:
        if progress is not None:
            progress(done, total)
