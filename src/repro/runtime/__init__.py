"""Sweep runtime: parallel design-space execution + persistent result cache.

The runtime package turns the serial, process-lifetime-memoized evaluation
loop into an incremental, parallel one:

* :class:`~repro.runtime.cache.PersistentLayerCache` stores every simulated
  result on disk in two content-addressed tiers -- whole networks keyed by
  :func:`repro.sim.engine.network_key` (a warm run resolves each network in
  one read) and individual layers keyed by
  :func:`repro.sim.engine.simulation_key` (the fallback that makes partial
  reuse work across configs and categories);
* :class:`~repro.runtime.runner.SweepRunner` fans design-point evaluations
  out over worker processes with deterministic chunking, so any worker
  count reproduces the serial results bit for bit;
* :func:`~repro.runtime.search.run_search_loop` pumps guided-search
  strategies (:mod:`repro.search`) through batched, cache-backed
  evaluations -- the ask/tell loop behind ``repro search``.

Example -- a warm sweep served from the network tier::

    from repro.runtime import SweepRunner
    from repro.config import ModelCategory
    from repro.dse.explorer import design_space

    runner = SweepRunner(workers=4, cache_dir="/tmp/repro-cache")
    outcome = runner.run(design_space("b"), (ModelCategory.B,))
    print(outcome.cache_stats.network_hits, outcome.cache_stats.layer_lookups)

See ``docs/caching.md`` for the key derivation and invalidation rules.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    PersistentLayerCache,
    default_cache_dir,
    network_result_from_dict,
    network_result_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.runtime.runner import SweepOutcome, SweepRunner
from repro.runtime.search import SearchLoopOutcome, run_search_loop

__all__ = [
    "SearchLoopOutcome",
    "run_search_loop",
    "CACHE_DIR_ENV",
    "CacheStats",
    "PersistentLayerCache",
    "SweepOutcome",
    "SweepRunner",
    "default_cache_dir",
    "network_result_from_dict",
    "network_result_to_dict",
    "result_from_dict",
    "result_to_dict",
]
