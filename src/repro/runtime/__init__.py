"""Sweep runtime: parallel design-space execution + persistent result cache.

The runtime package turns the serial, process-lifetime-memoized evaluation
loop into an incremental, parallel one:

* :class:`~repro.runtime.cache.PersistentLayerCache` stores every simulated
  layer on disk, content-addressed by the engine's simulation key;
* :class:`~repro.runtime.runner.SweepRunner` fans design-point evaluations
  out over worker processes with deterministic chunking, so any worker
  count reproduces the serial results bit for bit.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    PersistentLayerCache,
    default_cache_dir,
)
from repro.runtime.runner import SweepOutcome, SweepRunner

__all__ = [
    "CACHE_DIR_ENV",
    "CacheStats",
    "PersistentLayerCache",
    "SweepOutcome",
    "SweepRunner",
    "default_cache_dir",
]
