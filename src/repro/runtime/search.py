"""The batched ask/tell evaluation loop behind guided search.

:func:`run_search_loop` is the runtime half of :mod:`repro.search`: it
pumps candidate batches out of a strategy, evaluates every *new* config
through one batched ``evaluate_batch`` call (in practice
:meth:`repro.api.Session.evaluate`, so candidates fan out over worker
processes and land in the two-tier persistent cache), folds the scores
into a :class:`~repro.search.archive.ParetoArchive`, and feeds the results
back to the strategy.  Configs the archive has already recorded -- from a
resumed checkpoint or a repetitive strategy -- are answered from the
archive without re-evaluation, which is what makes checkpoint/resume and
warm re-runs effectively free.

Determinism: batches are evaluated order-preserved and every evaluation is
a pure function of its design point, so for a fixed strategy seed the loop
is bitwise-identical across runs and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.config import ArchConfig
from repro.dse.evaluate import DesignEvaluation
from repro.obs import trace as obs
from repro.runtime.cache import CacheStats
from repro.search.archive import ParetoArchive
from repro.search.objectives import ObjectiveSet
from repro.search.strategy import SearchStrategy, TellResult

#: Evaluate a batch of configs, order-preserving; returns the evaluations
#: plus the persistent-cache activity of the batch.
EvaluateBatch = Callable[
    [Sequence[ArchConfig]], tuple[Sequence[DesignEvaluation], CacheStats]
]


class SearchProgressFn(Protocol):
    def __call__(self, evaluated: int, budget: int | None) -> None: ...


@dataclass(frozen=True)
class SearchLoopOutcome:
    """Bookkeeping of one ask/tell run (the archive carries the results)."""

    archive: ParetoArchive
    cache_stats: CacheStats
    batches: int
    evaluated: int
    reused: int
    #: Configs scored by a surrogate model instead of the exact engine
    #: (0 for single-fidelity strategies).  ``evaluated`` stays what it
    #: always was: exact-engine evaluations only.
    screened: int = 0

    @property
    def total_told(self) -> int:
        """Results handed to the strategy (fresh evaluations + replays)."""
        return self.evaluated + self.reused


def run_search_loop(
    strategy: SearchStrategy,
    evaluate_batch: EvaluateBatch,
    objectives: ObjectiveSet,
    archive: ParetoArchive,
    budget: int | None = None,
    progress: SearchProgressFn | None = None,
    checkpoint: Callable[[], None] | None = None,
) -> SearchLoopOutcome:
    """Drive a strategy to completion (or to its evaluation budget).

    ``budget`` caps *fresh* evaluations added to the archive, counting any
    records a resumed archive already holds; replayed answers are free.
    ``checkpoint`` (if given) runs after every batch that changed the
    archive -- ``repro search --checkpoint`` saves the archive there, so a
    killed run loses at most one batch.
    """
    if budget is not None and budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    stats = CacheStats()
    batches = 0
    evaluated = 0
    reused = 0
    replay_streak = 0
    # Multi-fidelity strategies *screen* with a surrogate inside ask()
    # and the exact evaluations *confirm*; name the spans accordingly.
    surrogate = getattr(strategy, "name", "") == "surrogate"
    ask_span = "search.screen" if surrogate else "search.ask"
    eval_span = "search.confirm" if surrogate else "search.evaluate"
    while budget is None or len(archive) < budget:
        with obs.ACTIVE.span(ask_span, strategy=strategy.name, batch=batches) as span:
            asked = strategy.ask()
            span.set(asked=len(asked))
        if not asked:
            break
        # Dedup within the batch; split into archive replays vs fresh work.
        batch: list[ArchConfig] = []
        seen: set[str] = set()
        for config in asked:
            if config.notation not in seen:
                seen.add(config.notation)
                batch.append(config)
        fresh = [config for config in batch if config.notation not in archive]
        if budget is not None:
            fresh = fresh[: budget - len(archive)]
        fresh_keys = {config.notation for config in fresh}

        # A well-behaved strategy eventually proposes something new (or goes
        # silent); bound the replay-only churn so a broken one cannot spin
        # the loop forever.  Resumed runs legitimately replay many batches
        # before reaching fresh ground, so the cap is deliberately generous.
        replay_streak = 0 if fresh else replay_streak + 1
        if replay_streak > 10_000:
            raise RuntimeError(
                f"search strategy {strategy.name!r} proposed 10000 consecutive "
                f"batches with no unevaluated config; aborting the loop"
            )

        if fresh:
            with obs.ACTIVE.span(eval_span, strategy=strategy.name, fresh=len(fresh)):
                evaluations, batch_stats = evaluate_batch(fresh)
            stats.merge(batch_stats)
            for config, evaluation in zip(fresh, evaluations):
                archive.record(
                    config.notation, evaluation, objectives.scores(evaluation)
                )
            evaluated += len(fresh)
            batches += 1
            if checkpoint is not None:
                checkpoint()
            if progress is not None:
                progress(len(archive), budget)

        results: list[TellResult] = []
        for config in batch:
            record = archive.get(config.notation)
            if record is None:
                continue  # trimmed by the budget: never evaluated
            results.append((config, record.scores))
            if config.notation not in fresh_keys:
                reused += 1
        if not results:
            # The strategy asked only for configs the budget excluded;
            # telling it nothing cannot advance it, so stop here.
            break
        strategy.tell(results)
    return SearchLoopOutcome(
        archive=archive,
        cache_stats=stats,
        batches=batches,
        evaluated=evaluated,
        reused=reused,
        screened=int(getattr(strategy, "screened", 0)),
    )
