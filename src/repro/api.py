"""Unified session/experiment API: one evaluation path for every design.

:class:`Session` is the facade over the whole toolkit.  It owns the
two-tier persistent result cache (whole networks, then layers -- see
``docs/caching.md``) and the parallel
:class:`~repro.runtime.runner.SweepRunner`, replacing ad-hoc use of the
mutable global ``set_persistent_cache`` with context-managed,
session-scoped state: the cache is installed only for the duration of a
session call (or a ``with session:`` block) and the previous state is
always restored.  Any design -- a borrowing
:class:`~repro.config.ArchConfig`, the hybrid
:class:`~repro.config.GriffinArch`, a calibrated
:class:`~repro.baselines.registry.BaselineArch` row, or a name understood
by :func:`~repro.dse.evaluate.parse_design` -- evaluates through the same
batched, cache-backed ``session.evaluate(designs, categories, settings)``
call, fanning out over worker processes exactly like ``repro sweep``::

    from repro.api import Session
    from repro.config import ModelCategory

    session = Session(workers=4)
    outcome = session.evaluate(
        ["Dense", "Sparse.B*", "Griffin", "SparTen"],
        (ModelCategory.B, ModelCategory.DENSE),
    )
    for ev in outcome.evaluations:
        print(ev.label, ev.point(ModelCategory.B).tops_per_watt)
    # A repeated run answers from the network tier: one read per network,
    # zero layer simulations.
    print(outcome.cache_stats.network_hits, outcome.cache_stats.layer_lookups)

:class:`ExperimentSpec` is the declarative counterpart: a dict / JSON
description of designs + categories + sampling that can express any of the
paper's Fig. 5-8 / Table VI experiments and runs via
``repro run experiment.json`` or :meth:`Session.run`::

    {
      "name": "fig8",
      "designs": ["Baseline", "Sparse.B*", "Griffin", "SparTen"],
      "categories": ["DNN.dense", "DNN.B", "DNN.A", "DNN.AB"],
      "options": {"passes_per_gemm": 3, "max_t_steps": 64}
    }

The legacy functions (``evaluate_arch``, ``evaluate_griffin``,
``simulate_network`` used directly) keep working; the first two are
deprecation shims over :func:`default_session`, slated for removal in
v2.0 -- see the migration table in ``docs/architecture.md``.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.config import ModelCategory
from repro.dse.evaluate import (
    Design,
    DesignEvaluation,
    DesignLike,
    EvalSettings,
    as_design,
    evaluate_design,
    parse_design,
)
from repro.dse.explorer import design_space, space_categories
from repro.dse.report import format_table, sweep_rows
from repro.hw.cost import CostBreakdown
from repro.runtime.cache import CacheStats, PersistentLayerCache, default_cache_dir
from repro.runtime.runner import ProgressFn, SweepOutcome, SweepRunner
from repro.sim import engine
from repro.sim.engine import NetworkSimResult, SimulationOptions, simulate_network
from repro.workloads.models import Network
from repro.workloads.registry import benchmark

#: ``use_cache`` mode for sessions that neither install nor remove the
#: globally installed cache -- the default session backing the deprecation
#: shims, which must keep the legacy functions' exact semantics.
INHERIT = "inherit"

#: Default sampling of declarative experiments (matches EvalSettings).
_SPEC_DEFAULT_OPTIONS = {"passes_per_gemm": 3, "max_t_steps": 64}

_SPEC_KEYS = {"name", "title", "designs", "space", "categories", "quick",
              "networks", "options"}
_OPTION_KEYS = {"passes_per_gemm", "max_t_steps", "seed", "pipeline_drain",
                "include_stalls", "include_dram"}


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment (any Fig. 5-8 panel).

    ``designs`` are names resolved by
    :func:`~repro.dse.evaluate.parse_design`; ``space`` optionally expands
    a whole Fig. 5-7 sweep space (``"a"`` / ``"b"`` / ``"ab"``) in front of
    them.  ``categories`` default to the space's (sparse, dense) pair, or
    to all four Table I categories for a plain design list.  ``quick``
    picks the three-benchmark suite (the default) versus the full Table IV
    six; ``networks`` restricts the suite explicitly.
    """

    name: str = "experiment"
    title: str = ""
    designs: tuple[str, ...] = ()
    space: str | None = None
    categories: tuple[str, ...] = ()
    quick: bool = True
    networks: tuple[str, ...] | None = None
    options: SimulationOptions = field(
        default_factory=lambda: SimulationOptions(**_SPEC_DEFAULT_OPTIONS)
    )

    @staticmethod
    def from_dict(data: Mapping) -> "ExperimentSpec":
        """Build and validate a spec from a plain mapping (JSON shape)."""
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown experiment keys {sorted(unknown)}; "
                f"accepted: {sorted(_SPEC_KEYS)}"
            )
        option_data = dict(data.get("options") or {})
        unknown_options = set(option_data) - _OPTION_KEYS
        if unknown_options:
            raise ValueError(
                f"unknown simulation options {sorted(unknown_options)}; "
                f"accepted: {sorted(_OPTION_KEYS)}"
            )
        networks = data.get("networks")
        spec = ExperimentSpec(
            name=str(data.get("name", "experiment")),
            title=str(data.get("title", "")),
            designs=tuple(str(d) for d in data.get("designs") or ()),
            space=str(data["space"]) if data.get("space") else None,
            categories=tuple(str(c) for c in data.get("categories") or ()),
            quick=bool(data.get("quick", True)),
            networks=tuple(str(n) for n in networks) if networks else None,
            options=SimulationOptions(**{**_SPEC_DEFAULT_OPTIONS, **option_data}),
        )
        if not spec.designs and spec.space is None:
            raise ValueError("experiment spec needs 'designs' and/or 'space'")
        # Fail fast on bad design/category/space names, before simulating.
        spec.resolve_designs()
        spec.resolve_categories()
        return spec

    @staticmethod
    def from_json(text: str) -> "ExperimentSpec":
        return ExperimentSpec.from_dict(json.loads(text))

    @staticmethod
    def load(path: str | os.PathLike) -> "ExperimentSpec":
        """Read a spec from a JSON file (the ``repro run`` input)."""
        return ExperimentSpec.from_json(Path(path).read_text())

    @staticmethod
    def coerce(
        spec: "ExperimentSpec | Mapping | str | os.PathLike",
    ) -> "ExperimentSpec":
        """Accept a spec object, a dict, or a path to a JSON file."""
        if isinstance(spec, ExperimentSpec):
            return spec
        if isinstance(spec, Mapping):
            return ExperimentSpec.from_dict(spec)
        return ExperimentSpec.load(spec)

    def to_dict(self) -> dict:
        """JSON-serializable form; ``from_dict`` round-trips it."""
        return {
            "name": self.name,
            "title": self.title,
            "designs": list(self.designs),
            "space": self.space,
            "categories": list(self.categories),
            "quick": self.quick,
            "networks": list(self.networks) if self.networks else None,
            "options": {
                "passes_per_gemm": self.options.passes_per_gemm,
                "max_t_steps": self.options.max_t_steps,
                "seed": self.options.seed,
                "pipeline_drain": self.options.pipeline_drain,
                "include_stalls": self.options.include_stalls,
                "include_dram": self.options.include_dram,
            },
        }

    def resolve_designs(self) -> list[Design]:
        """The design list: the expanded space (if any) plus named designs."""
        designs: list[Design] = []
        if self.space is not None:
            designs.extend(as_design(config) for config in design_space(self.space))
        designs.extend(parse_design(name) for name in self.designs)
        return designs

    def resolve_categories(self) -> tuple[ModelCategory, ...]:
        if self.categories:
            return tuple(ModelCategory.from_text(c) for c in self.categories)
        if self.space is not None:
            return space_categories(self.space)
        return (ModelCategory.DENSE, ModelCategory.B, ModelCategory.A,
                ModelCategory.AB)

    def eval_settings(self, quick: bool | None = None) -> EvalSettings:
        """The spec's :class:`EvalSettings`.

        ``quick`` overrides the spec: ``True`` forces smoke sampling (one
        pass per GEMM, 16 time steps) on top of the quick suite -- what
        ``repro run --quick`` and the CI examples job use; ``False``
        forces the full six-network Table IV suite with the spec's
        sampling options; ``None`` runs the spec as written.
        """
        if quick is None:
            return EvalSettings(
                quick=self.quick, options=self.options, networks=self.networks
            )
        if quick:
            options = SimulationOptions(
                passes_per_gemm=1,
                max_t_steps=16,
                seed=self.options.seed,
                pipeline_drain=self.options.pipeline_drain,
                include_stalls=self.options.include_stalls,
                include_dram=self.options.include_dram,
            )
            return EvalSettings(quick=True, options=options, networks=self.networks)
        return EvalSettings(quick=False, options=self.options, networks=self.networks)


@dataclass(frozen=True)
class ExperimentResult:
    """Evaluations and bookkeeping of one :meth:`Session.run`."""

    spec: ExperimentSpec
    categories: tuple[ModelCategory, ...]
    outcome: SweepOutcome

    @property
    def evaluations(self) -> tuple[DesignEvaluation, ...]:
        return self.outcome.evaluations

    @property
    def cache_stats(self) -> CacheStats:
        return self.outcome.cache_stats

    def rows(self) -> list[dict[str, object]]:
        """Figure-ready rows (one per design, metrics per category)."""
        return sweep_rows(self.evaluations, self.categories)

    def table(self) -> str:
        """The experiment as an aligned ASCII table."""
        return format_table(self.rows(), title=self.spec.title or self.spec.name)

    def to_dict(self) -> dict:
        """JSON payload for ``repro run --json``."""
        return {
            "experiment": self.spec.name,
            "categories": [c.value for c in self.categories],
            "workers": self.outcome.workers,
            "rows": self.rows(),
            "cache": self.cache_stats.as_dict(),
        }


class Session:
    """One evaluation path for configs, Griffin, and baselines.

    Args:
        workers: process count for :meth:`evaluate`; ``0`` or ``1``
            evaluates serially in-process (still through the cache).
        cache_dir: root of the two-tier persistent cache; ``None`` picks
            ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
        use_cache: ``True`` for a session-owned persistent cache,
            ``False`` for none, or :data:`INHERIT` to use whatever cache is
            currently installed (serial only; this is what the deprecation
            shims run under, so legacy semantics are preserved exactly).
        settings: default :class:`EvalSettings` for calls that omit them.
        chunk_size: design points per parallel task (defaults to
            :func:`repro.runtime.runner.default_chunk_size`).
        progress: optional ``(done, total)`` callback.

    The session accumulates persistent-cache activity across all of its
    calls in :attr:`stats` (unified across the network and layer tiers;
    per-tier shares in ``stats.network_hits`` / ``stats.layer_hits`` and
    friends).  Used as a context manager, it installs its cache
    engine-wide for the duration of the block (so direct
    ``simulate_network`` calls inside also hit it) and restores the
    previous state on exit.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool | str = True,
        settings: EvalSettings | None = None,
        chunk_size: int | None = None,
        progress: ProgressFn | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.settings = settings or EvalSettings()
        self.chunk_size = chunk_size
        self.progress = progress
        self.stats = CacheStats()
        self._inherit = False
        if use_cache is True:
            root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
            self._cache: PersistentLayerCache | None = PersistentLayerCache(root)
            self.cache_dir: str | None = str(root)
        elif use_cache is False:
            self._cache = None
            self.cache_dir = None
        elif use_cache == INHERIT:
            self._cache = None
            self.cache_dir = None
            self._inherit = True
        else:
            raise ValueError(
                f"use_cache must be True, False or {INHERIT!r}, got {use_cache!r}"
            )
        self._entered: list[object] = []

    @property
    def cache(self) -> PersistentLayerCache | None:
        """The session-owned persistent cache (``None`` without one)."""
        return self._cache

    # ------------------------------------------------------------------
    # Context management: session-scoped cache installation.
    # ------------------------------------------------------------------

    def __enter__(self) -> "Session":
        if not self._inherit:
            self._entered.append(engine.set_persistent_cache(self._cache))
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._inherit:
            engine.set_persistent_cache(self._entered.pop())

    @contextmanager
    def _scoped(self) -> Iterator[None]:
        """Install the session cache (or inherit) around one call."""
        if self._inherit:
            yield
            return
        with engine.persistent_cache(self._cache):
            yield

    def _snapshot(self) -> CacheStats | None:
        return self._cache.stats.snapshot() if self._cache is not None else None

    def _absorb(self, before: CacheStats | None) -> CacheStats:
        """Fold cache activity since ``before`` into the session totals."""
        if before is None:
            return CacheStats()
        delta = self._cache.stats.delta(before)
        self.stats.merge(delta)
        return delta

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------

    def evaluate(
        self,
        designs: Sequence[DesignLike],
        categories: Sequence[ModelCategory],
        settings: EvalSettings | None = None,
    ) -> SweepOutcome:
        """Evaluate every design on every category, order-preserving.

        With ``workers > 1`` the designs fan out over a process pool
        through :class:`SweepRunner`; results are bitwise-identical to the
        serial loop either way, and all paths share the session's
        persistent cache directory.
        """
        resolved = tuple(as_design(design) for design in designs)
        categories = tuple(categories)
        settings = settings or self.settings
        if not resolved:
            return SweepOutcome((), CacheStats(), self.workers, 0)
        if self.workers <= 1 or self._inherit:
            outcome = self._evaluate_serial(resolved, categories, settings)
        else:
            runner = SweepRunner(
                workers=self.workers,
                cache_dir=self.cache_dir,
                use_cache=self._cache is not None,
                chunk_size=self.chunk_size,
                progress=self.progress,
            )
            outcome = runner.run(resolved, categories, settings)
            self.stats.merge(outcome.cache_stats)
        return outcome

    def _evaluate_serial(
        self,
        designs: tuple[Design, ...],
        categories: tuple[ModelCategory, ...],
        settings: EvalSettings,
    ) -> SweepOutcome:
        before = self._snapshot()
        evaluations = []
        with self._scoped():
            for done, design in enumerate(designs, start=1):
                evaluations.append(evaluate_design(design, categories, settings))
                if self.progress is not None:
                    self.progress(done, len(designs))
        return SweepOutcome(
            tuple(evaluations), self._absorb(before), self.workers, 1
        )

    def evaluate_one(
        self,
        design: DesignLike,
        categories: Sequence[ModelCategory],
        settings: EvalSettings | None = None,
    ) -> DesignEvaluation:
        """Evaluate a single design (always serial, through the cache)."""
        return self._evaluate_serial(
            (as_design(design),), tuple(categories), settings or self.settings
        ).evaluations[0]

    def simulate(
        self,
        network: Network | str,
        design: DesignLike,
        category: ModelCategory,
        options: SimulationOptions | None = None,
    ) -> NetworkSimResult:
        """Cycle-simulate one network on one design, through the cache.

        ``network`` may be a benchmark name or a :class:`Network`; the
        design's category-specific configuration is used (Griffin morphs).
        """
        net = benchmark(network).network if isinstance(network, str) else network
        config = as_design(design).config_for(category)
        before = self._snapshot()
        with self._scoped():
            result = simulate_network(net, config, category, options)
        self._absorb(before)
        return result

    def cost(self, design: DesignLike) -> CostBreakdown:
        """The Table VII-style cost row of any design."""
        return as_design(design).cost()

    def run(
        self,
        spec: "ExperimentSpec | Mapping | str | os.PathLike",
        quick: bool | None = None,
    ) -> ExperimentResult:
        """Run a declarative experiment (spec object, dict, or JSON path).

        ``quick`` overrides the spec's sampling (see
        :meth:`ExperimentSpec.eval_settings`).
        """
        spec = ExperimentSpec.coerce(spec)
        categories = spec.resolve_categories()
        return ExperimentResult(
            spec=spec,
            categories=categories,
            outcome=self.evaluate(
                spec.resolve_designs(),
                categories,
                spec.eval_settings(quick=quick),
            ),
        )


_default_session: Session | None = None


def default_session() -> Session:
    """The process-wide session backing the deprecation shims.

    It *inherits* whatever persistent cache is currently installed instead
    of owning one, so ``evaluate_arch`` / ``evaluate_griffin`` keep their
    exact pre-session semantics (including "no cache unless one was
    installed").
    """
    global _default_session
    if _default_session is None:
        _default_session = Session(use_cache=INHERIT)
    return _default_session


def run_experiment(
    spec: "ExperimentSpec | Mapping | str | os.PathLike",
    session: Session | None = None,
    quick: bool | None = None,
) -> ExperimentResult:
    """Convenience wrapper: run a spec on ``session`` (or a fresh one)."""
    return (session or Session()).run(spec, quick=quick)
