"""Unified session/experiment API: one evaluation path for every design.

:class:`Session` is the facade over the whole toolkit.  It owns the
two-tier persistent result cache (whole networks, then layers -- see
``docs/caching.md``) and the parallel
:class:`~repro.runtime.runner.SweepRunner`, replacing ad-hoc use of the
mutable global ``set_persistent_cache`` with context-managed,
session-scoped state: the cache is installed only for the duration of a
session call (or a ``with session:`` block) and the previous state is
always restored.  Any design -- a borrowing
:class:`~repro.config.ArchConfig`, the hybrid
:class:`~repro.config.GriffinArch`, a calibrated
:class:`~repro.baselines.registry.BaselineArch` row, or a name understood
by :func:`~repro.dse.evaluate.parse_design` -- evaluates through the same
batched, cache-backed ``session.evaluate(designs, categories, settings)``
call, fanning out over worker processes exactly like ``repro sweep``::

    from repro.api import Session
    from repro.config import ModelCategory

    session = Session(workers=4)
    outcome = session.evaluate(
        ["Dense", "Sparse.B*", "Griffin", "SparTen"],
        (ModelCategory.B, ModelCategory.DENSE),
    )
    for ev in outcome.evaluations:
        print(ev.label, ev.point(ModelCategory.B).tops_per_watt)
    # A repeated run answers from the network tier: one read per network,
    # zero layer simulations.
    print(outcome.cache_stats.network_hits, outcome.cache_stats.layer_lookups)

:class:`ExperimentSpec` is the declarative counterpart: a dict / JSON
description of designs + categories + sampling that can express any of the
paper's Fig. 5-8 / Table VI experiments and runs via
``repro run experiment.json`` or :meth:`Session.run`::

    {
      "name": "fig8",
      "designs": ["Baseline", "Sparse.B*", "Griffin", "SparTen"],
      "categories": ["DNN.dense", "DNN.B", "DNN.A", "DNN.AB"],
      "options": {"passes_per_gemm": 3, "max_t_steps": 64}
    }

:meth:`Session.search` extends the same machinery from fixed design lists
to *guided* design-space search (:mod:`repro.search`): a declarative
:class:`~repro.search.spec.SearchSpec` (or a space + strategy pair) runs
through the batched ask/tell loop, every candidate evaluation fanning out
over the pool and landing in the persistent cache, with the Pareto front
archived and checkpointable -- see ``docs/search.md``.

The pre-1.0 functions ``evaluate_arch`` / ``evaluate_griffin`` were
removed in v2.0 after a deprecation cycle; the migration table lives in
``docs/architecture.md``.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.config import ModelCategory
from repro.dse.evaluate import (
    Design,
    DesignEvaluation,
    DesignLike,
    EvalSettings,
    as_design,
    evaluate_design,
    parse_design,
)
from repro.dse.explorer import design_space, space_categories
from repro.dse.report import format_table, sweep_rows
from repro.hw.cost import CostBreakdown
from repro.obs import trace as obs
from repro.runtime.cache import CacheStats, PersistentLayerCache, default_cache_dir
from repro.runtime.runner import ProgressFn, SweepOutcome, SweepRunner
from repro.runtime.search import SearchLoopOutcome, run_search_loop
from repro.search.archive import ParetoArchive, SearchRecord
from repro.search.objectives import ObjectiveSet
from repro.search.space import SearchSpace, resolve_space
from repro.search.spec import SPEC_DEFAULT_OPTIONS, SearchSpec
from repro.search.strategy import (
    ExhaustiveSearch,
    SearchStrategy,
    SurrogateScreenedSearch,
)
from repro.sim import engine
from repro.sim.engine import NetworkSimResult, SimulationOptions, simulate_network
from repro.workloads.models import Network
from repro.workloads.registry import (
    Workload,
    WorkloadLike,
    anchor_workload_tokens,
    parse_workload,
)

#: ``use_cache`` mode for sessions that neither install nor remove the
#: globally installed cache -- for embedding the session API inside an
#: environment that already manages the engine-wide persistent cache.
INHERIT = "inherit"

#: Default sampling of declarative experiments (matches EvalSettings).
_SPEC_DEFAULT_OPTIONS = SPEC_DEFAULT_OPTIONS

_SPEC_KEYS = {"name", "title", "designs", "space", "categories", "quick",
              "networks", "options"}


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment (any Fig. 5-8 panel).

    ``designs`` are names resolved by
    :func:`~repro.dse.evaluate.parse_design`; ``space`` optionally expands
    a whole Fig. 5-7 sweep space (``"a"`` / ``"b"`` / ``"ab"``) in front of
    them.  ``categories`` default to the space's (sparse, dense) pair, or
    to all four Table I categories for a plain design list.  ``quick``
    picks the three-benchmark suite (the default) versus the full Table IV
    six; ``networks`` replaces the suite explicitly -- each entry is any
    workload token :func:`~repro.workloads.registry.parse_workload`
    accepts: a preset name (``"BERT"``), a ``name:override`` derivation
    (``"BERT:weight_sparsity=0.9"``), or a path to a declarative
    WorkloadSpec JSON file (resolved relative to the spec file when loaded
    with :meth:`load`; see ``docs/workloads.md``).
    """

    name: str = "experiment"
    title: str = ""
    designs: tuple[str, ...] = ()
    space: str | None = None
    categories: tuple[str, ...] = ()
    quick: bool = True
    networks: tuple[str, ...] | None = None
    options: SimulationOptions = field(
        default_factory=lambda: SimulationOptions(**_SPEC_DEFAULT_OPTIONS)
    )

    @staticmethod
    def from_dict(data: Mapping) -> "ExperimentSpec":
        """Build and validate a spec from a plain mapping (JSON shape)."""
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown experiment keys {sorted(unknown)}; "
                f"accepted: {sorted(_SPEC_KEYS)}"
            )
        networks = data.get("networks")
        spec = ExperimentSpec(
            name=str(data.get("name", "experiment")),
            title=str(data.get("title", "")),
            designs=tuple(str(d) for d in data.get("designs") or ()),
            space=str(data["space"]) if data.get("space") else None,
            categories=tuple(str(c) for c in data.get("categories") or ()),
            quick=bool(data.get("quick", True)),
            networks=tuple(str(n) for n in networks) if networks else None,
            options=SimulationOptions.from_dict(
                dict(data.get("options") or {}), defaults=_SPEC_DEFAULT_OPTIONS
            ),
        )
        if not spec.designs and spec.space is None:
            raise ValueError("experiment spec needs 'designs' and/or 'space'")
        # Fail fast on bad design/category/space/workload names, before
        # simulating.
        spec.resolve_designs()
        spec.resolve_categories()
        spec.resolve_networks()
        return spec

    @staticmethod
    def from_json(text: str) -> "ExperimentSpec":
        return ExperimentSpec.from_dict(json.loads(text))

    @staticmethod
    def load(path: str | os.PathLike) -> "ExperimentSpec":
        """Read a spec from a JSON file (the ``repro run`` input).

        Relative WorkloadSpec paths in ``networks`` are resolved against
        the spec file's directory, so a spec can name a workload JSON that
        lives next to it regardless of the working directory.
        """
        data = json.loads(Path(path).read_text())
        if isinstance(data, Mapping) and data.get("networks"):
            data = dict(data)
            data["networks"] = anchor_workload_tokens(
                data["networks"], Path(path).parent
            )
        return ExperimentSpec.from_dict(data)

    @staticmethod
    def coerce(
        spec: "ExperimentSpec | Mapping | str | os.PathLike",
    ) -> "ExperimentSpec":
        """Accept a spec object, a dict, or a path to a JSON file."""
        if isinstance(spec, ExperimentSpec):
            return spec
        if isinstance(spec, Mapping):
            return ExperimentSpec.from_dict(spec)
        return ExperimentSpec.load(spec)

    def to_dict(self) -> dict:
        """JSON-serializable form; ``from_dict`` round-trips it."""
        return {
            "name": self.name,
            "title": self.title,
            "designs": list(self.designs),
            "space": self.space,
            "categories": list(self.categories),
            "quick": self.quick,
            "networks": list(self.networks) if self.networks else None,
            "options": self.options.to_dict(),
        }

    def resolve_designs(self) -> list[Design]:
        """The design list: the expanded space (if any) plus named designs."""
        designs: list[Design] = []
        if self.space is not None:
            designs.extend(as_design(config) for config in design_space(self.space))
        designs.extend(parse_design(name) for name in self.designs)
        return designs

    def resolve_categories(self) -> tuple[ModelCategory, ...]:
        if self.categories:
            return tuple(ModelCategory.from_text(c) for c in self.categories)
        if self.space is not None:
            return space_categories(self.space)
        return (ModelCategory.DENSE, ModelCategory.B, ModelCategory.A,
                ModelCategory.AB)

    def resolve_networks(self) -> tuple[Workload, ...] | None:
        """The evaluation suite as resolved workloads (``None`` = default)."""
        if self.networks is None:
            return None
        return tuple(parse_workload(token) for token in self.networks)

    def eval_settings(self, quick: bool | None = None) -> EvalSettings:
        """The spec's :class:`EvalSettings`.

        ``quick`` overrides the spec: ``True`` forces smoke sampling (one
        pass per GEMM, 16 time steps) on top of the quick suite -- what
        ``repro run --quick`` and the CI examples job use; ``False``
        forces the full six-network Table IV suite with the spec's
        sampling options; ``None`` runs the spec as written.
        """
        if quick is None:
            return EvalSettings(
                quick=self.quick, options=self.options, networks=self.networks
            )
        if quick:
            options = SimulationOptions(
                passes_per_gemm=1,
                max_t_steps=16,
                seed=self.options.seed,
                pipeline_drain=self.options.pipeline_drain,
                include_stalls=self.options.include_stalls,
                include_dram=self.options.include_dram,
            )
            return EvalSettings(quick=True, options=options, networks=self.networks)
        return EvalSettings(quick=False, options=self.options, networks=self.networks)


@dataclass(frozen=True)
class ExperimentResult:
    """Evaluations and bookkeeping of one :meth:`Session.run`."""

    spec: ExperimentSpec
    categories: tuple[ModelCategory, ...]
    outcome: SweepOutcome

    @property
    def evaluations(self) -> tuple[DesignEvaluation, ...]:
        return self.outcome.evaluations

    @property
    def cache_stats(self) -> CacheStats:
        return self.outcome.cache_stats

    def rows(self) -> list[dict[str, object]]:
        """Figure-ready rows (one per design, metrics per category)."""
        return sweep_rows(self.evaluations, self.categories)

    def table(self) -> str:
        """The experiment as an aligned ASCII table."""
        return format_table(self.rows(), title=self.spec.title or self.spec.name)

    def to_dict(self) -> dict:
        """JSON payload for ``repro run --json``."""
        return {
            "experiment": self.spec.name,
            "categories": [c.value for c in self.categories],
            "workers": self.outcome.workers,
            "rows": self.rows(),
            "cache": self.cache_stats.as_dict(),
        }


@dataclass(frozen=True)
class SearchResult:
    """Archive and bookkeeping of one :meth:`Session.search` run.

    The archive holds every evaluated design with its score vector and
    full evaluation; :meth:`optimal` applies the paper's product-of-scores
    compromise rule over the Pareto front (for the default objectives this
    is exactly the Table VI starred-point selection of
    :func:`repro.dse.report.select_optimal`).
    """

    name: str
    space: SearchSpace
    strategy: str
    objectives: ObjectiveSet
    outcome: SearchLoopOutcome
    workers: int
    grid_size: int
    title: str = ""
    fidelity: str = "exact"

    @property
    def archive(self) -> ParetoArchive:
        return self.outcome.archive

    @property
    def cache_stats(self) -> CacheStats:
        return self.outcome.cache_stats

    @property
    def evaluated(self) -> int:
        """Fresh evaluations this run (excludes archive replays)."""
        return self.outcome.evaluated

    @property
    def screened(self) -> int:
        """Configs scored by the surrogate (multi-fidelity runs only)."""
        return self.outcome.screened

    def front(self) -> list[SearchRecord]:
        return self.archive.front()

    def optimal(self) -> SearchRecord:
        """The starred point: product rule over the Pareto front."""
        return self.archive.best(self.objectives.scalar)

    def rows(self, front_only: bool = True) -> list[dict[str, object]]:
        """Figure-ready rows: one per (front) record, scores per objective."""
        records = self.front() if front_only else list(self.archive)
        rows: list[dict[str, object]] = []
        for record in records:
            row: dict[str, object] = {"Config": record.label}
            for objective, score in zip(self.objectives, record.scores):
                row[objective.name] = score
            row["on front"] = self.archive.on_front(record.key)
            rows.append(row)
        return rows

    def table(self) -> str:
        """The Pareto front as an aligned ASCII table."""
        coverage = (
            f"{len(self.archive)} of {self.grid_size} feasible designs "
            f"({100.0 * len(self.archive) / max(1, self.grid_size):.1f}%)"
        )
        title = (
            f"{self.title or self.name} [{self.strategy}]: "
            f"Pareto front after evaluating {coverage}"
        )
        return format_table(self.rows(), title=title)

    def to_dict(self) -> dict:
        """JSON payload for ``repro search --json``."""
        return {
            "search": self.name,
            "space": self.space.to_dict(),
            "strategy": self.strategy,
            "objectives": list(self.objectives.names),
            "grid_size": self.grid_size,
            "fidelity": self.fidelity,
            "screened": self.screened,
            "evaluations": len(self.archive),
            "fresh_evaluations": self.evaluated,
            "reused": self.outcome.reused,
            "batches": self.outcome.batches,
            "workers": self.workers,
            "optimal": self.optimal().to_dict(),
            "front": [record.to_dict() for record in self.front()],
            "cache": self.cache_stats.as_dict(),
        }


def _resolve_surrogate(surrogate):
    """Coerce the ``surrogate=`` argument into a loaded model.

    Accepts a ready model, a fitted constants document, or a path to one;
    ``None`` loads the committed golden (which also version-checks it
    against the running engine).
    """
    from repro.surrogate import SurrogateConstants, SurrogateModel

    if isinstance(surrogate, SurrogateModel):
        return surrogate
    if isinstance(surrogate, SurrogateConstants):
        return SurrogateModel(surrogate)
    return SurrogateModel.load(surrogate)


class Session:
    """One evaluation path for configs, Griffin, and baselines.

    Args:
        workers: process count for :meth:`evaluate`; ``0`` or ``1``
            evaluates serially in-process (still through the cache).
        cache_dir: root of the two-tier persistent cache; ``None`` picks
            ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
        use_cache: ``True`` for a session-owned persistent cache,
            ``False`` for none, or :data:`INHERIT` to use whatever cache is
            currently installed (serial only; for embedding inside an
            environment that manages the engine-wide cache itself).
        settings: default :class:`EvalSettings` for calls that omit them.
        chunk_size: design points per parallel task (defaults to
            :func:`repro.runtime.runner.default_chunk_size`).
        progress: optional ``(done, total)`` callback (every evaluating
            method also takes a per-call ``progress=`` override, so
            concurrent callers can each observe their own run).
        keep_pool: keep one warm :class:`SweepRunner` process pool alive
            across calls instead of spinning one up per ``evaluate`` --
            what a long-lived ``repro serve`` session uses.  Call
            :meth:`close` (or use the session as a context manager) to
            release the pool.

    The session accumulates persistent-cache activity across all of its
    calls in :attr:`stats` (unified across the network and layer tiers;
    per-tier shares in ``stats.network_hits`` / ``stats.layer_hits`` and
    friends).  Used as a context manager, it installs its cache
    engine-wide for the duration of the block (so direct
    ``simulate_network`` calls inside also hit it) and restores the
    previous state on exit.

    A session is safe to share across threads (the ``repro serve``
    deployment: one warm session answering many concurrent requests).
    The engine-wide cache installation is reference-counted under a lock,
    so overlapping serial evaluations keep the same session cache
    installed until the last one finishes; note that per-call
    ``cache_stats`` deltas then attribute concurrent activity to every
    overlapping call, while :attr:`stats` totals stay exact -- each call
    folds in only the cache's cumulative advance since the previous
    fold, so overlapping windows are never double-counted.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool | str = True,
        settings: EvalSettings | None = None,
        chunk_size: int | None = None,
        progress: ProgressFn | None = None,
        keep_pool: bool = False,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.settings = settings or EvalSettings()
        self.chunk_size = chunk_size
        self.progress = progress
        self.keep_pool = keep_pool
        self.stats = CacheStats()
        self._inherit = False
        if use_cache is True:
            root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
            self._cache: PersistentLayerCache | None = PersistentLayerCache(root)
            self.cache_dir: str | None = str(root)
        elif use_cache is False:
            self._cache = None
            self.cache_dir = None
        elif use_cache == INHERIT:
            self._cache = None
            self.cache_dir = None
            self._inherit = True
        else:
            raise ValueError(
                f"use_cache must be True, False or {INHERIT!r}, got {use_cache!r}"
            )
        self._state_lock = threading.RLock()
        self._absorbed = CacheStats()  # cache counters at the last absorb
        self._install_depth = 0
        self._install_prev: object = None
        self._runner: SweepRunner | None = None

    @property
    def cache(self) -> PersistentLayerCache | None:
        """The session-owned persistent cache (``None`` without one)."""
        return self._cache

    # ------------------------------------------------------------------
    # Context management: session-scoped cache installation.
    # ------------------------------------------------------------------

    def _install(self) -> None:
        """Reference-counted engine-wide installation of the session cache.

        The first concurrent caller installs, the last one restores --
        so overlapping evaluations from different threads of one shared
        session never clobber each other's view of the engine cache.
        """
        with self._state_lock:
            if self._install_depth == 0:
                self._install_prev = engine.set_persistent_cache(self._cache)
            self._install_depth += 1

    def _uninstall(self) -> None:
        with self._state_lock:
            self._install_depth -= 1
            if self._install_depth == 0:
                engine.set_persistent_cache(self._install_prev)  # type: ignore[arg-type]
                self._install_prev = None

    def __enter__(self) -> "Session":
        if not self._inherit:
            self._install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._inherit:
            self._uninstall()
        self.close()

    @contextmanager
    def _scoped(self) -> Iterator[None]:
        """Install the session cache (or inherit) around one call."""
        if self._inherit:
            yield
            return
        self._install()
        try:
            yield
        finally:
            self._uninstall()

    def close(self, wait: bool = True) -> None:
        """Release the warm worker pool, if one is alive (idempotent).

        Only meaningful with ``keep_pool=True``; a later ``evaluate``
        lazily recreates the pool, so a closed session stays usable.
        ``wait=False`` releases without joining in-flight work -- the
        ``repro serve`` shutdown path after a timed-out drain, where
        joining would block on a still-running evaluation.
        """
        with self._state_lock:
            runner, self._runner = self._runner, None
        if runner is not None:
            runner.close(wait=wait)

    def _snapshot(self) -> CacheStats | None:
        return self._cache.stats.snapshot() if self._cache is not None else None

    def _absorb(self, before: CacheStats | None) -> CacheStats:
        """Fold new cache activity into the totals; return this call's delta.

        Concurrent serial calls all read the one shared cache-stats
        counter, so folding each call's own ``before``-to-now window into
        :attr:`stats` would count overlapping activity once per
        overlapping call.  Instead the session tracks the counter value
        it last absorbed (under the state lock) and merges only the
        cumulative advance since then -- every cache event lands in the
        totals exactly once, whatever the interleaving.  The *returned*
        per-call delta is still the plain window since ``before`` (it
        attributes concurrent activity to every overlapping call, as
        documented on the class).
        """
        if before is None:
            return CacheStats()
        with self._state_lock:
            current = self._cache.stats.snapshot()
            self.stats.merge(current.delta(self._absorbed))
            self._absorbed = current
        return current.delta(before)

    def _ensure_runner(self) -> SweepRunner:
        """The session's (lazily created, reusable) parallel runner."""
        with self._state_lock:
            if self._runner is None:
                self._runner = SweepRunner(
                    workers=self.workers,
                    cache_dir=self.cache_dir,
                    use_cache=self._cache is not None,
                    chunk_size=self.chunk_size,
                    keep_pool=self.keep_pool,
                )
            return self._runner

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------

    def evaluate(
        self,
        designs: Sequence[DesignLike],
        categories: Sequence[ModelCategory],
        settings: EvalSettings | None = None,
        networks: Sequence[WorkloadLike] | None = None,
        progress: ProgressFn | None = None,
    ) -> SweepOutcome:
        """Evaluate every design on every category, order-preserving.

        With ``workers > 1`` the designs fan out over a process pool
        through :class:`SweepRunner` (one warm pool reused across calls
        under ``keep_pool=True``); results are bitwise-identical to the
        serial loop either way, and all paths share the session's
        persistent cache directory.

        ``networks`` replaces the evaluation suite for this call: any mix
        of workload tokens (preset names, ``name:override`` derivations,
        WorkloadSpec JSON paths) and
        :class:`~repro.workloads.registry.Workload` objects.  Pass workload
        *objects* (not bare registered names) for programmatically built
        networks in parallel runs -- worker processes resolve string
        tokens themselves and do not see this process's registry.

        ``progress`` overrides the session-wide callback for this call
        only (how ``repro serve`` streams per-request progress).
        """
        resolved = tuple(as_design(design) for design in designs)
        categories = tuple(categories)
        settings = settings or self.settings
        progress = progress if progress is not None else self.progress
        if networks is not None:
            settings = replace(settings, networks=tuple(networks))
        if not resolved:
            return SweepOutcome((), CacheStats(), self.workers, 0)
        with obs.ACTIVE.span(
            "session.evaluate",
            designs=len(resolved),
            categories=len(categories),
            workers=self.workers,
        ):
            if self.workers <= 1 or self._inherit:
                outcome = self._evaluate_serial(
                    resolved, categories, settings, progress
                )
            else:
                outcome = self._ensure_runner().run(
                    resolved, categories, settings, progress=progress
                )
                with self._state_lock:
                    self.stats.merge(outcome.cache_stats)
        return outcome

    def _evaluate_serial(
        self,
        designs: tuple[Design, ...],
        categories: tuple[ModelCategory, ...],
        settings: EvalSettings,
        progress: ProgressFn | None = None,
    ) -> SweepOutcome:
        before = self._snapshot()
        evaluations = []
        tracer = obs.ACTIVE
        with self._scoped():
            for done, design in enumerate(designs, start=1):
                with tracer.span(
                    "evaluate.design", index=done - 1, design=design.label
                ):
                    evaluations.append(
                        evaluate_design(design, categories, settings)
                    )
                if progress is not None:
                    progress(done, len(designs))
        return SweepOutcome(
            tuple(evaluations), self._absorb(before), self.workers, 1
        )

    def evaluate_one(
        self,
        design: DesignLike,
        categories: Sequence[ModelCategory],
        settings: EvalSettings | None = None,
    ) -> DesignEvaluation:
        """Evaluate a single design (always serial, through the cache)."""
        return self._evaluate_serial(
            (as_design(design),), tuple(categories), settings or self.settings,
            self.progress,
        ).evaluations[0]

    def simulate(
        self,
        network: WorkloadLike,
        design: DesignLike,
        category: ModelCategory,
        options: SimulationOptions | None = None,
    ) -> NetworkSimResult:
        """Cycle-simulate one network on one design, through the cache.

        ``network`` is any workload token
        (:func:`~repro.workloads.registry.parse_workload`): a preset name,
        a ``name:override`` derivation, a WorkloadSpec JSON path, or a
        :class:`~repro.workloads.registry.Workload` / :class:`Network`
        object; the design's category-specific configuration is used
        (Griffin morphs).
        """
        net = network if isinstance(network, Network) else parse_workload(network).network
        config = as_design(design).config_for(category)
        before = self._snapshot()
        with obs.ACTIVE.span(
            "session.simulate", network=net.name, category=category.value
        ):
            with self._scoped():
                result = simulate_network(net, config, category, options)
        self._absorb(before)
        return result

    def cost(self, design: DesignLike) -> CostBreakdown:
        """The Table VII-style cost row of any design."""
        return as_design(design).cost()

    def run(
        self,
        spec: "ExperimentSpec | Mapping | str | os.PathLike",
        quick: bool | None = None,
        progress: ProgressFn | None = None,
    ) -> ExperimentResult:
        """Run a declarative experiment (spec object, dict, or JSON path).

        ``quick`` overrides the spec's sampling (see
        :meth:`ExperimentSpec.eval_settings`); ``progress`` overrides the
        session-wide callback for this call only.
        """
        spec = ExperimentSpec.coerce(spec)
        categories = spec.resolve_categories()
        with obs.ACTIVE.span("session.run", experiment=spec.name):
            return ExperimentResult(
                spec=spec,
                categories=categories,
                outcome=self.evaluate(
                    spec.resolve_designs(),
                    categories,
                    spec.eval_settings(quick=quick),
                    progress=progress,
                ),
            )

    def search(
        self,
        spec: "SearchSpec | SearchSpace | Mapping | str | os.PathLike",
        strategy: SearchStrategy | None = None,
        *,
        objectives: ObjectiveSet | None = None,
        settings: EvalSettings | None = None,
        budget: int | None = None,
        quick: bool | None = None,
        checkpoint: str | os.PathLike | None = None,
        resume: bool = False,
        progress: ProgressFn | None = None,
        surrogate=None,
    ) -> SearchResult:
        """Run a guided design-space search (see ``docs/search.md``).

        ``spec`` is a :class:`~repro.search.spec.SearchSpec` (object, dict,
        or JSON path), or directly a :class:`~repro.search.space.SearchSpace`
        / paper-space preset name (``"a"`` / ``"b"`` / ``"ab"``) -- in
        which case ``strategy`` picks the search (default: exhaustive).
        Explicit keyword arguments override the spec.  Candidate batches
        evaluate through :meth:`evaluate`, so the search parallelizes over
        the session's workers and is served by the persistent cache; for a
        fixed strategy seed the run is bitwise-deterministic across runs
        and worker counts.

        ``checkpoint`` names a JSON file the archive is saved to after
        every batch; with ``resume=True`` an existing checkpoint seeds the
        archive, and the strategy replays against the recorded scores
        without re-evaluating (``quick`` must match the original run for
        the replay to be meaningful).  ``budget`` caps total recorded
        evaluations, checkpointed ones included.

        A multi-fidelity run (spec ``fidelity: "multi"`` / strategy kind
        ``surrogate``) screens the space with the calibrated surrogate
        before spending any exact evaluation; ``surrogate`` overrides the
        model -- a :class:`repro.surrogate.SurrogateModel`, a
        :class:`repro.surrogate.SurrogateConstants` document, or a path
        to a fitted constants file (default: the committed golden).
        """
        search_spec: SearchSpec | None = None
        if isinstance(spec, SearchSpace):
            space = spec
        elif isinstance(spec, str) and spec.lower() in ("a", "b", "ab"):
            space = resolve_space(spec)
        else:
            search_spec = SearchSpec.coerce(spec)
            space = search_spec.space

        if search_spec is not None:
            if strategy is None:
                strategy = search_spec.build_strategy()
            if budget is None:
                budget = search_spec.strategy.budget
            if objectives is None:
                objectives = search_spec.resolve_objectives()
            if settings is None:
                settings = search_spec.eval_settings(quick=quick)
            if checkpoint is None:
                checkpoint = search_spec.checkpoint
        else:
            if strategy is None:
                strategy = ExhaustiveSearch(space)
            if budget is None:
                budget = getattr(strategy, "budget", None)
            if objectives is None:
                objectives = ObjectiveSet.for_category(space.default_category())
            if settings is None:
                settings = self.settings

        if resume and checkpoint is None:
            raise ValueError(
                "resume=True needs a checkpoint path (none was given and "
                "the spec names none); pass checkpoint=... / --checkpoint"
            )
        archive: ParetoArchive | None = None
        if resume and checkpoint is not None and Path(checkpoint).exists():
            archive = ParetoArchive.load(checkpoint)
            if archive.objectives != objectives.names:
                raise ValueError(
                    f"checkpoint {str(checkpoint)!r} tracks objectives "
                    f"{list(archive.objectives)}, this search uses "
                    f"{list(objectives.names)}"
                )
            if archive.space != space.name:
                raise ValueError(
                    f"checkpoint {str(checkpoint)!r} was recorded on space "
                    f"{archive.space!r}, this search runs on {space.name!r}"
                )
        if archive is None:
            archive = ParetoArchive(objectives.names, space=space.name)

        categories = objectives.categories
        grid_size = len(space)

        if isinstance(strategy, SurrogateScreenedSearch) and not strategy.bound:
            model = _resolve_surrogate(surrogate)

            def predict(config):
                return objectives.scores(
                    model.evaluate_design(config, categories, settings)
                )

            strategy.bind(predict)
        fidelity = (
            "multi" if isinstance(strategy, SurrogateScreenedSearch) else "exact"
        )

        report = progress if progress is not None else self.progress

        def evaluate_batch(configs):
            outcome = self.evaluate(list(configs), categories, settings)
            return outcome.evaluations, outcome.cache_stats

        def loop_progress(evaluated: int, cap: int | None) -> None:
            if report is not None:
                report(evaluated, cap if cap is not None else grid_size)

        checkpoint_fn = None
        if checkpoint is not None:
            checkpoint_fn = lambda: archive.save(checkpoint)  # noqa: E731

        with obs.ACTIVE.span(
            "session.search",
            space=space.name,
            strategy=strategy.name,
            fidelity=fidelity,
        ):
            outcome = run_search_loop(
                strategy,
                evaluate_batch,
                objectives,
                archive,
                budget=budget,
                progress=loop_progress,
                checkpoint=checkpoint_fn,
            )
        if checkpoint_fn is not None:
            checkpoint_fn()
        describe = getattr(strategy, "describe", None)
        return SearchResult(
            name=search_spec.name if search_spec is not None else space.name,
            title=search_spec.title if search_spec is not None else "",
            space=space,
            strategy=describe() if callable(describe) else strategy.name,
            objectives=objectives,
            outcome=outcome,
            workers=self.workers,
            grid_size=grid_size,
            fidelity=fidelity,
        )

    def calibrate(
        self,
        spaces: Sequence[str] | None = None,
        networks: Sequence[str] | None = None,
        regimes: Mapping | None = None,
        save: "bool | str | os.PathLike | None" = None,
    ):
        """Fit surrogate constants against this session's exact results.

        Builds the calibration corpus through this session (parallel over
        the session's workers, served by and absorbed into the persistent
        cache), fits the correction vectors deterministically, and
        returns the :class:`repro.surrogate.SurrogateConstants` document.
        ``spaces`` / ``networks`` / ``regimes`` restrict the corpus (all
        paper spaces x the Table IV suite x the production and quick
        sampling regimes by default).  ``save=True`` refreshes the
        committed golden; a path saves there instead.
        """
        from repro.surrogate import calibrate as _calibrate
        from repro.surrogate import save_constants

        with obs.ACTIVE.span("session.calibrate"):
            constants = _calibrate(self, spaces, networks, regimes)
        if save is not None and save is not False:
            save_constants(constants, None if save is True else save)
        return constants


def run_experiment(
    spec: "ExperimentSpec | Mapping | str | os.PathLike",
    session: Session | None = None,
    quick: bool | None = None,
) -> ExperimentResult:
    """Convenience wrapper: run a spec on ``session`` (or a fresh one)."""
    return (session or Session()).run(spec, quick=quick)
