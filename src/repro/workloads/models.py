"""Layer-exact definitions of the six Table IV benchmark networks.

Each network is a sequence of :class:`NetworkLayer` -- a layer spec plus the
per-layer weight density (of the pruned variant) and input-activation
density (of the ReLU variant).  Topologies follow the standard references
the paper cites; per-layer densities are assigned by a prunability model
(first convolutions and depthwise layers resist pruning, fully-connected
layers prune hardest -- the well-documented shape of magnitude pruning) and
a single scale solved by bisection so the parameter-weighted sparsity
matches the Table IV ratio exactly.

The same network object serves all four model categories: the evaluation
picks which density schedule to apply (e.g. ``DNN.B`` uses the weight
densities with dense activations).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable

from repro.gemm.layers import (
    AttentionSpec,
    Conv2DSpec,
    FeedForwardSpec,
    GemmShape,
    LayerSpec,
    LinearSpec,
)


@dataclass(frozen=True)
class RawGemmSpec(LayerSpec):
    """A layer given directly as GEMM shapes (factorized convs, etc.)."""

    shapes: tuple[GemmShape, ...] = ()

    def gemms(self) -> list[GemmShape]:
        return list(self.shapes)


@dataclass(frozen=True)
class NetworkLayer:
    """One layer with its sparse-variant densities.

    ``weight_density`` / ``act_density`` are nonzero fractions of the pruned
    / ReLU variants; the dense variants use 1.0 on the respective side.
    """

    spec: LayerSpec
    weight_density: float
    act_density: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def weight_params(self) -> int:
        """Prunable weight count (dynamic GEMM operands carry no weights)."""
        return sum(g.k * g.n * g.repeats for g in self.spec.gemms() if not g.weight_is_dynamic)

    @property
    def act_volume(self) -> int:
        """Input-activation element count across the layer's GEMMs."""
        return sum(g.m * g.k * g.repeats for g in self.spec.gemms())


@dataclass(frozen=True)
class Network:
    """A benchmark network with its sparsity schedules."""

    name: str
    layers: tuple[NetworkLayer, ...]

    @property
    def macs(self) -> int:
        return sum(layer.spec.macs for layer in self.layers)

    @property
    def weight_sparsity(self) -> float:
        """Parameter-weighted zero fraction of the pruned variant."""
        params = sum(layer.weight_params for layer in self.layers)
        kept = sum(layer.weight_params * layer.weight_density for layer in self.layers)
        return 1.0 - kept / params if params else 0.0

    @property
    def act_sparsity(self) -> float:
        """Volume-weighted zero fraction of the ReLU variant's activations.

        Measured over the ReLU-fed layers (everything after the first),
        matching how Table IV reports activation sparsity: the first layer
        consumes the dense input image and is excluded from the average.
        """
        relu_fed = self.layers[1:]
        volume = sum(layer.act_volume for layer in relu_fed)
        kept = sum(layer.act_volume * layer.act_density for layer in relu_fed)
        return 1.0 - kept / volume if volume else 0.0

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the workload (see :func:`network_fingerprint`)."""
        return network_fingerprint(self)


def gemm_content(gemms: Iterable[GemmShape]) -> str:
    """Canonical serialization of a GEMM sequence.

    This is the exact per-layer content string the engine's
    :func:`repro.sim.engine.simulation_key` hashes, shared here so the
    workload fingerprint and the cache keys can never drift apart.
    """
    return ";".join(
        f"{g.m},{g.k},{g.n},{g.repeats},{int(g.weight_is_dynamic)},{g.channels}"
        for g in gemms
    )


def layer_content(layer: NetworkLayer) -> str:
    """Canonical serialization of one layer: name, GEMMs, densities."""
    return (
        f"{layer.name}|{gemm_content(layer.spec.gemms())}"
        f"|{layer.weight_density!r}|{layer.act_density!r}"
    )


def network_fingerprint(network: Network) -> str:
    """Stable content fingerprint of a workload.

    Hashes the network name plus every layer's canonical content (display
    name, lowered GEMM shapes, and the per-layer density assignments) --
    exactly the workload-side inputs a simulation depends on.  The
    fingerprint is stable across processes and sessions, and any edit to a
    layer or a density produces a new fingerprint; it feeds
    :func:`repro.sim.engine.network_key`, so user-defined workloads cache
    correctly without name collisions.
    """
    parts = [network.name]
    parts.extend(layer_content(layer) for layer in network.layers)
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


_DENSITY_FLOOR = 0.05


def _solve_scale(weights: list[float], factors: list[float], target_kept: float) -> float:
    """Bisection for the scale making weighted clipped densities hit target."""

    def kept(scale: float) -> float:
        total = sum(weights)
        acc = sum(
            w * min(1.0, max(_DENSITY_FLOOR, scale * f))
            for w, f in zip(weights, factors)
        )
        return acc / total

    lo, hi = 1e-4, 20.0
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if kept(mid) < target_kept:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _weight_prunability(spec: LayerSpec, index: int) -> float:
    """Relative density factor: higher keeps more weights after pruning."""
    if isinstance(spec, Conv2DSpec):
        if index == 0:
            return 3.0  # first layer famously resists pruning
        if spec.groups > 1:
            return 2.0  # depthwise kernels are tiny and kept dense-ish
        if spec.kernel == 1:
            return 0.9
        return 1.0
    if isinstance(spec, LinearSpec):
        return 0.55  # fully-connected layers prune hardest
    return 1.0


def _assign_densities(
    specs: list[LayerSpec],
    weight_sparsity: float,
    act_sparsity: float,
) -> list[NetworkLayer]:
    """Attach per-layer densities hitting the network-level Table IV ratios."""
    n_layers = len(specs)
    w_weights = [
        sum(g.k * g.n * g.repeats for g in s.gemms() if not g.weight_is_dynamic)
        for s in specs
    ]
    w_factors = [_weight_prunability(s, i) for i, s in enumerate(specs)]
    w_scale = _solve_scale(w_weights, w_factors, 1.0 - weight_sparsity)
    w_density = [
        min(1.0, max(_DENSITY_FLOOR, w_scale * f)) if w > 0 else 1.0
        for w, f in zip(w_weights, w_factors)
    ]

    a_weights = [sum(g.m * g.k * g.repeats for g in s.gemms()) for s in specs]
    if act_sparsity <= 0.0:
        a_density = [1.0] * n_layers
    else:
        # The first layer consumes the dense input image and is excluded
        # from the Table IV ratio; deeper layers see progressively sparser
        # ReLU outputs.
        a_factors = [
            1.25 - 0.5 * (i / max(1, n_layers - 1)) for i in range(n_layers)
        ]
        a_scale = _solve_scale(a_weights[1:], a_factors[1:], 1.0 - act_sparsity)
        a_density = [1.0] + [
            min(1.0, max(_DENSITY_FLOOR, a_scale * f)) for f in a_factors[1:]
        ]

    return [
        NetworkLayer(spec=s, weight_density=wd, act_density=ad)
        for s, wd, ad in zip(specs, w_density, a_density)
    ]


#: Public name of the analytical per-layer density solver -- the default
#: sparsity profile of declarative workload specs (see
#: :mod:`repro.workloads.spec`).
def assign_densities(
    specs: list[LayerSpec],
    weight_sparsity: float,
    act_sparsity: float,
) -> list[NetworkLayer]:
    """Per-layer densities hitting network-level (weight, act) sparsity ratios.

    The prunability-model solver the Table IV presets use: first and
    depthwise convolutions resist pruning, fully-connected layers prune
    hardest, and a single scale solved by bisection makes the
    parameter-weighted sparsity match the target exactly.
    """
    return _assign_densities(specs, weight_sparsity, act_sparsity)


def _network(
    name: str, specs: list[LayerSpec], weight_sparsity: float, act_sparsity: float
) -> Network:
    return Network(name=name, layers=tuple(_assign_densities(specs, weight_sparsity, act_sparsity)))


def _conv(name, cin, cout, k, hw, stride=1, pad=None, groups=1) -> Conv2DSpec:
    if pad is None:
        pad = k // 2
    return Conv2DSpec(
        name=name, in_channels=cin, out_channels=cout, kernel=k,
        input_hw=hw, stride=stride, padding=pad, groups=groups,
    )


@lru_cache(maxsize=None)
def alexnet() -> Network:
    """AlexNet, Table IV: (B, A) sparsity (89%, 53%) -- Deep Compression."""
    specs: list[LayerSpec] = [
        _conv("conv1", 3, 64, 11, 224, stride=4, pad=2),
        _conv("conv2", 64, 192, 5, 27),
        _conv("conv3", 192, 384, 3, 13),
        _conv("conv4", 384, 256, 3, 13),
        _conv("conv5", 256, 256, 3, 13),
        LinearSpec(name="fc6", in_features=9216, out_features=4096),
        LinearSpec(name="fc7", in_features=4096, out_features=4096),
        LinearSpec(name="fc8", in_features=4096, out_features=1000),
    ]
    return _network("AlexNet", specs, 0.89, 0.53)


def _inception_block(name: str, cin: int, hw: int, cfg: tuple[int, ...]) -> list[LayerSpec]:
    c1, c3r, c3, c5r, c5, pp = cfg
    return [
        _conv(f"{name}.1x1", cin, c1, 1, hw),
        _conv(f"{name}.3x3red", cin, c3r, 1, hw),
        _conv(f"{name}.3x3", c3r, c3, 3, hw),
        _conv(f"{name}.5x5red", cin, c5r, 1, hw),
        _conv(f"{name}.5x5", c5r, c5, 5, hw),
        _conv(f"{name}.pool", cin, pp, 1, hw),
    ]


@lru_cache(maxsize=None)
def googlenet() -> Network:
    """GoogLeNet (Inception v1), Table IV: (82%, 37%)."""
    specs: list[LayerSpec] = [
        _conv("conv1", 3, 64, 7, 224, stride=2, pad=3),
        _conv("conv2.red", 64, 64, 1, 56),
        _conv("conv2", 64, 192, 3, 56),
    ]
    blocks = [
        ("3a", 192, 28, (64, 96, 128, 16, 32, 32)),
        ("3b", 256, 28, (128, 128, 192, 32, 96, 64)),
        ("4a", 480, 14, (192, 96, 208, 16, 48, 64)),
        ("4b", 512, 14, (160, 112, 224, 24, 64, 64)),
        ("4c", 512, 14, (128, 128, 256, 24, 64, 64)),
        ("4d", 512, 14, (112, 144, 288, 32, 64, 64)),
        ("4e", 528, 14, (256, 160, 320, 32, 128, 128)),
        ("5a", 832, 7, (256, 160, 320, 32, 128, 128)),
        ("5b", 832, 7, (384, 192, 384, 48, 128, 128)),
    ]
    for name, cin, hw, cfg in blocks:
        specs.extend(_inception_block(name, cin, hw, cfg))
    specs.append(LinearSpec(name="fc", in_features=1024, out_features=1000))
    return _network("GoogleNet", specs, 0.82, 0.37)


def _bottleneck(name: str, cin: int, mid: int, cout: int, hw: int, stride: int,
                downsample: bool) -> list[LayerSpec]:
    out_hw = hw // stride
    layers = [
        _conv(f"{name}.c1", cin, mid, 1, hw),
        _conv(f"{name}.c2", mid, mid, 3, hw, stride=stride),
        _conv(f"{name}.c3", mid, cout, 1, out_hw),
    ]
    if downsample:
        layers.append(_conv(f"{name}.down", cin, cout, 1, hw, stride=stride))
    return layers


@lru_cache(maxsize=None)
def resnet50() -> Network:
    """ResNet-50, Table IV: (81%, 43%)."""
    specs: list[LayerSpec] = [_conv("conv1", 3, 64, 7, 224, stride=2, pad=3)]
    stage_cfg = [
        ("layer1", 64, 64, 256, 56, 3, 1),
        ("layer2", 256, 128, 512, 56, 4, 2),
        ("layer3", 512, 256, 1024, 28, 6, 2),
        ("layer4", 1024, 512, 2048, 14, 3, 2),
    ]
    for name, cin, mid, cout, hw, blocks, stride in stage_cfg:
        specs.extend(_bottleneck(f"{name}.0", cin, mid, cout, hw, stride, downsample=True))
        out_hw = hw // stride
        for b in range(1, blocks):
            specs.extend(_bottleneck(f"{name}.{b}", cout, mid, cout, out_hw, 1, downsample=False))
    specs.append(LinearSpec(name="fc", in_features=2048, out_features=1000))
    return _network("ResNet50", specs, 0.81, 0.43)


def _sep7x7(name: str, cin: int, mid: int, cout: int, hw: int) -> RawGemmSpec:
    """A factorized 1x7 + 7x1 pair as raw GEMMs (InceptionV3 branch piece)."""
    m = hw * hw
    return RawGemmSpec(
        name=name,
        shapes=(
            GemmShape(m=m, k=cin * 7, n=mid, channels=cin),
            GemmShape(m=m, k=mid * 7, n=cout, channels=mid),
        ),
    )


@lru_cache(maxsize=None)
def inception_v3() -> Network:
    """Inception-V3 (299x299 input), Table IV: (79%, 46%)."""
    specs: list[LayerSpec] = [
        _conv("Conv2d_1a", 3, 32, 3, 299, stride=2, pad=0),
        _conv("Conv2d_2a", 32, 32, 3, 149, pad=0),
        _conv("Conv2d_2b", 32, 64, 3, 147),
        _conv("Conv2d_3b", 64, 80, 1, 73),
        _conv("Conv2d_4a", 80, 192, 3, 73, pad=0),
    ]
    # Three InceptionA blocks at 35x35 (pool_features 32/64/64).
    for idx, (cin, pool) in enumerate([(192, 32), (256, 64), (288, 64)]):
        n = f"MixedA{idx}"
        specs += [
            _conv(f"{n}.1x1", cin, 64, 1, 35),
            _conv(f"{n}.5x5red", cin, 48, 1, 35),
            _conv(f"{n}.5x5", 48, 64, 5, 35),
            _conv(f"{n}.3x3red", cin, 64, 1, 35),
            _conv(f"{n}.3x3a", 64, 96, 3, 35),
            _conv(f"{n}.3x3b", 96, 96, 3, 35),
            _conv(f"{n}.pool", cin, pool, 1, 35),
        ]
    # Grid reduction 35 -> 17.
    specs += [
        _conv("MixedB.3x3", 288, 384, 3, 35, stride=2, pad=0),
        _conv("MixedB.dbl1", 288, 64, 1, 35),
        _conv("MixedB.dbl2", 64, 96, 3, 35),
        _conv("MixedB.dbl3", 96, 96, 3, 35, stride=2, pad=0),
    ]
    # Four InceptionC blocks at 17x17 with factorized 7x7 branches.
    for idx, c7 in enumerate([128, 160, 160, 192]):
        n = f"MixedC{idx}"
        specs += [
            _conv(f"{n}.1x1", 768, 192, 1, 17),
            _conv(f"{n}.7x7red", 768, c7, 1, 17),
            _sep7x7(f"{n}.7x7", c7, c7, 192, 17),
            _conv(f"{n}.dblred", 768, c7, 1, 17),
            _sep7x7(f"{n}.dbl7a", c7, c7, c7, 17),
            _sep7x7(f"{n}.dbl7b", c7, c7, 192, 17),
            _conv(f"{n}.pool", 768, 192, 1, 17),
        ]
    # Grid reduction 17 -> 8.
    specs += [
        _conv("MixedD.red", 768, 192, 1, 17),
        _conv("MixedD.3x3", 192, 320, 3, 17, stride=2, pad=0),
        _conv("MixedD.dblred", 768, 192, 1, 17),
        _sep7x7("MixedD.dbl7", 192, 192, 192, 17),
        _conv("MixedD.dbl3", 192, 192, 3, 17, stride=2, pad=0),
    ]
    # Two InceptionE blocks at 8x8 (expanded 1x3/3x1 forks as raw GEMMs).
    for idx, cin in enumerate([1280, 2048]):
        n = f"MixedE{idx}"
        fork = RawGemmSpec(
            name=f"{n}.fork",
            shapes=(
                GemmShape(m=64, k=384 * 3, n=384, channels=384),  # 1x3
                GemmShape(m=64, k=384 * 3, n=384, channels=384),  # 3x1
            ),
        )
        dbl_fork = RawGemmSpec(
            name=f"{n}.dblfork",
            shapes=(
                GemmShape(m=64, k=384 * 3, n=384, channels=384),
                GemmShape(m=64, k=384 * 3, n=384, channels=384),
            ),
        )
        specs += [
            _conv(f"{n}.1x1", cin, 320, 1, 8),
            _conv(f"{n}.3x3red", cin, 384, 1, 8),
            fork,
            _conv(f"{n}.dblred", cin, 448, 1, 8),
            _conv(f"{n}.dbl3", 448, 384, 3, 8),
            dbl_fork,
            _conv(f"{n}.pool", cin, 192, 1, 8),
        ]
    specs.append(LinearSpec(name="fc", in_features=2048, out_features=1000))
    return _network("InceptionV3", specs, 0.79, 0.46)


@lru_cache(maxsize=None)
def mobilenet_v2() -> Network:
    """MobileNet-V2, Table IV: (81%, 52%) -- RigL-style pruning."""
    specs: list[LayerSpec] = [_conv("stem", 3, 32, 3, 224, stride=2)]
    # (expansion t, output channels c, repeats n, first stride s)
    cfg = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
    cin, hw = 32, 112
    for block, (t, c, n, s) in enumerate(cfg):
        for i in range(n):
            stride = s if i == 0 else 1
            mid = cin * t
            name = f"ir{block}.{i}"
            if t != 1:
                specs.append(_conv(f"{name}.expand", cin, mid, 1, hw))
            specs.append(_conv(f"{name}.dw", mid, mid, 3, hw, stride=stride, groups=mid))
            hw = hw // stride
            specs.append(_conv(f"{name}.project", mid, c, 1, hw))
            cin = c
    specs.append(_conv("head", 320, 1280, 1, 7))
    specs.append(LinearSpec(name="fc", in_features=1280, out_features=1000))
    return _network("MobileNetV2", specs, 0.81, 0.52)


@lru_cache(maxsize=None)
def relu_transformer(seq_len: int = 64, hidden: int = 512, layers: int = 12) -> Network:
    """A ReLU transformer (Table I: "Transformer+ReLU", e.g. MobileBERT).

    Same encoder structure as BERT but with ReLU feed-forward activations,
    so it populates the DNN.A / DNN.AB categories on the transformer side:
    activation sparsity ~45% (ReLU FFN statistics), weight sparsity 80%
    when pruned.  Not a Table IV benchmark -- provided so users can
    exercise every Table I row.
    """
    intermediate = 4 * hidden
    heads = max(1, hidden // 64)
    specs: list[LayerSpec] = []
    for layer in range(layers):
        specs.append(
            AttentionSpec(name=f"enc{layer}.attn", hidden=hidden, heads=heads, seq_len=seq_len)
        )
        specs.append(
            FeedForwardSpec(
                name=f"enc{layer}.ffn", hidden=hidden, intermediate=intermediate,
                seq_len=seq_len,
            )
        )
    specs.append(LinearSpec(name="classifier", in_features=hidden, out_features=3))
    return _network("ReLU-Transformer", specs, 0.80, 0.45)


@lru_cache(maxsize=None)
def bert_base(seq_len: int = 64) -> Network:
    """BERT-base (MNLI) at sentence length 64, Table IV: (82%, 0%).

    Movement pruning sparsifies the weight projections; GeLU keeps the
    activations dense, so the ``DNN.A`` variant of BERT has nothing to skip
    on the A side (Table IV lists its activation sparsity as 0%).
    """
    specs: list[LayerSpec] = []
    for layer in range(12):
        specs.append(AttentionSpec(name=f"enc{layer}.attn", hidden=768, heads=12, seq_len=seq_len))
        specs.append(FeedForwardSpec(name=f"enc{layer}.ffn", hidden=768, intermediate=3072, seq_len=seq_len))
    specs.append(LinearSpec(name="classifier", in_features=768, out_features=3))
    return _network("BERT", specs, 0.82, 0.0)
