"""Declarative workload specifications (the WorkloadSpec JSON format).

A :class:`WorkloadSpec` is to workloads what
:class:`repro.api.ExperimentSpec` is to experiments: a dict / JSON
description of a network -- a layer list using the existing layer-spec
shapes plus a pluggable sparsity profile -- that builds into a first-class
:class:`~repro.workloads.registry.Workload`::

    {
      "name": "TinyCNN",
      "layers": [
        {"type": "conv2d", "name": "conv1", "in_channels": 3,
         "out_channels": 32, "kernel": 3, "input_hw": 32, "padding": 1},
        {"type": "linear", "name": "fc", "in_features": 2048,
         "out_features": 10}
      ],
      "sparsity": {"profile": "analytical",
                   "weight_sparsity": 0.75, "act_sparsity": 0.45}
    }

Layer types map one-to-one onto the :mod:`repro.gemm.layers` /
:mod:`repro.workloads.models` dataclasses: ``conv2d``
(:class:`~repro.gemm.layers.Conv2DSpec`), ``linear``
(:class:`~repro.gemm.layers.LinearSpec`), ``attention``
(:class:`~repro.gemm.layers.AttentionSpec`), ``feedforward``
(:class:`~repro.gemm.layers.FeedForwardSpec`), and ``gemm``
(:class:`~repro.workloads.models.RawGemmSpec`, raw ``{m, k, n}`` shapes).

Sparsity profiles are pluggable (:func:`register_sparsity_profile`); three
ship built in:

* ``analytical`` (the default) -- the Table IV prunability-model solver
  (:func:`repro.workloads.models.assign_densities`): network-level
  ``weight_sparsity`` / ``act_sparsity`` targets, per-layer densities
  derived from layer shape and position;
* ``uniform`` -- one ``weight_density`` / ``act_density`` pair applied to
  every layer literally;
* ``explicit`` -- per-layer densities keyed by layer name, for externally
  measured or hierarchical/structured schedules.

``to_dict`` / ``from_dict`` round-trip exactly, and the built workload's
content fingerprint (:func:`repro.workloads.models.network_fingerprint`)
is a pure function of the spec -- the property ``repro workloads
validate`` checks and the cache keys rely on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping, Protocol, Sequence

from repro.gemm.layers import (
    AttentionSpec,
    Conv2DSpec,
    FeedForwardSpec,
    GemmShape,
    LayerSpec,
    LinearSpec,
)
from repro.workloads.models import (
    Network,
    NetworkLayer,
    RawGemmSpec,
    assign_densities,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.registry import Workload


# ----------------------------------------------------------------------
# Layer (de)serialization.
# ----------------------------------------------------------------------

_GEMM_KEYS = {"m", "k", "n", "repeats", "weight_is_dynamic", "channels"}

#: type tag -> (dataclass, JSON keys beyond "type"/"name", required keys)
_LAYER_TYPES: dict[str, tuple[type, tuple[str, ...], tuple[str, ...]]] = {
    "conv2d": (
        Conv2DSpec,
        ("in_channels", "out_channels", "kernel", "input_hw", "stride",
         "padding", "groups"),
        ("in_channels", "out_channels", "kernel", "input_hw"),
    ),
    "linear": (
        LinearSpec,
        ("in_features", "out_features", "batch"),
        ("in_features", "out_features"),
    ),
    "attention": (AttentionSpec, ("hidden", "heads", "seq_len"), ()),
    "feedforward": (
        FeedForwardSpec, ("hidden", "intermediate", "seq_len"), ()
    ),
    "gemm": (RawGemmSpec, ("shapes",), ("shapes",)),
}

_TYPE_OF_CLASS = {cls: tag for tag, (cls, _, _) in _LAYER_TYPES.items()}


def _gemm_from_dict(data: object, where: str) -> GemmShape:
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{where}: each GEMM shape must be a mapping "
            f"{{m, k, n, ...}}, got {data!r}"
        )
    unknown = set(data) - _GEMM_KEYS
    if unknown:
        raise ValueError(
            f"{where}: unknown GEMM shape keys {sorted(unknown)}; "
            f"accepted: {sorted(_GEMM_KEYS)}"
        )
    for key in ("m", "k", "n"):
        if key not in data:
            raise ValueError(f"{where}: GEMM shape needs '{key}'")
    return GemmShape(
        m=int(data["m"]),
        k=int(data["k"]),
        n=int(data["n"]),
        repeats=int(data.get("repeats", 1)),
        weight_is_dynamic=bool(data.get("weight_is_dynamic", False)),
        channels=int(data.get("channels", 0)),
    )


def _gemm_to_dict(gemm: GemmShape) -> dict:
    payload: dict = {"m": gemm.m, "k": gemm.k, "n": gemm.n}
    if gemm.repeats != 1:
        payload["repeats"] = gemm.repeats
    if gemm.weight_is_dynamic:
        payload["weight_is_dynamic"] = True
    if gemm.channels:
        payload["channels"] = gemm.channels
    return payload


def layer_from_dict(data: object) -> LayerSpec:
    """Build one layer spec from its JSON mapping (strict keys)."""
    if not isinstance(data, Mapping):
        raise ValueError(
            f"each layer must be a mapping with a 'type' and a 'name', "
            f"got {data!r}"
        )
    tag = str(data.get("type", "")).lower()
    if tag not in _LAYER_TYPES:
        raise ValueError(
            f"unknown layer type {data.get('type')!r}; "
            f"accepted: {', '.join(sorted(_LAYER_TYPES))}"
        )
    cls, keys, required = _LAYER_TYPES[tag]
    name = data.get("name")
    if not name:
        raise ValueError(f"{tag} layer needs a 'name'")
    where = f"layer {name!r}"
    unknown = set(data) - set(keys) - {"type", "name"}
    if unknown:
        raise ValueError(
            f"{where}: unknown {tag} keys {sorted(unknown)}; "
            f"accepted: {sorted(keys)}"
        )
    missing = [key for key in required if key not in data]
    if missing:
        raise ValueError(f"{where}: missing required {tag} keys {missing}")
    if tag == "gemm":
        shapes = data["shapes"]
        if not isinstance(shapes, Sequence) or isinstance(shapes, (str, bytes)):
            raise ValueError(f"{where}: 'shapes' must be a list of GEMM dicts")
        return RawGemmSpec(
            name=str(name),
            shapes=tuple(_gemm_from_dict(s, where) for s in shapes),
        )
    try:
        kwargs = {key: int(data[key]) for key in keys if key in data}
    except (TypeError, ValueError):
        bad = {k: data[k] for k in keys
               if k in data and not isinstance(data[k], int)}
        raise ValueError(
            f"{where}: {tag} dimensions must be integers, got {bad}"
        ) from None
    # Conv2D keeps the models.py convention: padding defaults to "same".
    if tag == "conv2d" and "padding" not in data:
        kwargs["padding"] = kwargs["kernel"] // 2
    return cls(name=str(name), **kwargs)


def layer_to_dict(spec: LayerSpec) -> dict:
    """Serialize one layer spec to its JSON mapping (round-trips exactly)."""
    tag = _TYPE_OF_CLASS.get(type(spec))
    if tag is None:
        raise TypeError(
            f"layer {spec.name!r} has unserializable type {type(spec).__name__}; "
            f"supported: {', '.join(sorted(_LAYER_TYPES))}"
        )
    payload: dict = {"type": tag, "name": spec.name}
    if tag == "gemm":
        payload["shapes"] = [_gemm_to_dict(g) for g in spec.shapes]
        return payload
    keys = _LAYER_TYPES[tag][1]
    payload.update({key: getattr(spec, key) for key in keys})
    return payload


# ----------------------------------------------------------------------
# Sparsity profiles (pluggable).
# ----------------------------------------------------------------------


class SparsityProfileSpec(Protocol):
    """The pluggable sparsity half of a workload spec.

    A profile assigns per-layer (weight, activation) densities to a layer
    list and serializes to the spec's ``sparsity`` JSON mapping (with a
    ``profile`` tag naming its kind).
    """

    def assign(self, specs: Sequence[LayerSpec]) -> tuple[NetworkLayer, ...]: ...

    def to_dict(self) -> dict: ...


def _check_fraction(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class AnalyticalSparsity:
    """The default profile: the Table IV prunability-model density solver."""

    weight_sparsity: float = 0.0
    act_sparsity: float = 0.0

    def __post_init__(self) -> None:
        _check_fraction("weight_sparsity", self.weight_sparsity)
        _check_fraction("act_sparsity", self.act_sparsity)

    def assign(self, specs: Sequence[LayerSpec]) -> tuple[NetworkLayer, ...]:
        return tuple(
            assign_densities(list(specs), self.weight_sparsity, self.act_sparsity)
        )

    def to_dict(self) -> dict:
        return {
            "profile": "analytical",
            "weight_sparsity": self.weight_sparsity,
            "act_sparsity": self.act_sparsity,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "AnalyticalSparsity":
        return AnalyticalSparsity(
            weight_sparsity=float(data.get("weight_sparsity", 0.0)),
            act_sparsity=float(data.get("act_sparsity", 0.0)),
        )


@dataclass(frozen=True)
class UniformSparsity:
    """One density pair applied to every layer literally."""

    weight_density: float = 1.0
    act_density: float = 1.0

    def __post_init__(self) -> None:
        _check_fraction("weight_density", self.weight_density)
        _check_fraction("act_density", self.act_density)

    def assign(self, specs: Sequence[LayerSpec]) -> tuple[NetworkLayer, ...]:
        return tuple(
            NetworkLayer(
                spec=spec,
                weight_density=self.weight_density,
                act_density=self.act_density,
            )
            for spec in specs
        )

    def to_dict(self) -> dict:
        return {
            "profile": "uniform",
            "weight_density": self.weight_density,
            "act_density": self.act_density,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "UniformSparsity":
        return UniformSparsity(
            weight_density=float(data.get("weight_density", 1.0)),
            act_density=float(data.get("act_density", 1.0)),
        )


@dataclass(frozen=True)
class ExplicitSparsity:
    """Per-layer densities keyed by layer name.

    ``densities`` maps each layer name to its ``(weight_density,
    act_density)`` pair; every network layer must have an entry unless a
    ``"*"`` default entry is given, and entries naming no layer are
    rejected (typo protection).  This is the profile for externally
    measured schedules and structured/hierarchical sparsity variants where
    the analytical solver's shape heuristics do not apply.
    """

    densities: tuple[tuple[str, float, float], ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for name, weight, act in self.densities:
            if name in seen:
                raise ValueError(f"duplicate explicit-sparsity entry {name!r}")
            seen.add(name)
            _check_fraction(f"{name} weight_density", weight)
            _check_fraction(f"{name} act_density", act)

    def assign(self, specs: Sequence[LayerSpec]) -> tuple[NetworkLayer, ...]:
        table = {name: (weight, act) for name, weight, act in self.densities}
        default = table.pop("*", None)
        known = {spec.name for spec in specs}
        unmatched = [name for name in table if name not in known]
        if unmatched:
            raise ValueError(
                f"explicit sparsity names layers that do not exist: "
                f"{unmatched} (layers: {sorted(known)})"
            )
        missing = [spec.name for spec in specs
                   if spec.name not in table and default is None]
        if missing:
            raise ValueError(
                f"explicit sparsity is missing entries for layers {missing}; "
                f"add them or a '*' default entry"
            )
        layers = []
        for spec in specs:
            weight, act = table.get(spec.name, default or (1.0, 1.0))
            layers.append(
                NetworkLayer(spec=spec, weight_density=weight, act_density=act)
            )
        return tuple(layers)

    def to_dict(self) -> dict:
        return {
            "profile": "explicit",
            "layers": {
                name: {"weight_density": weight, "act_density": act}
                for name, weight, act in self.densities
            },
        }

    @staticmethod
    def from_dict(data: Mapping) -> "ExplicitSparsity":
        layers = data.get("layers")
        if not isinstance(layers, Mapping) or not layers:
            raise ValueError(
                "explicit sparsity needs a non-empty 'layers' mapping of "
                "layer name -> {weight_density, act_density}"
            )
        entries = []
        for name, pair in layers.items():
            if not isinstance(pair, Mapping):
                raise ValueError(
                    f"explicit sparsity entry {name!r} must be a mapping "
                    f"{{weight_density, act_density}}, got {pair!r}"
                )
            unknown = set(pair) - {"weight_density", "act_density"}
            if unknown:
                raise ValueError(
                    f"explicit sparsity entry {name!r} has unknown keys "
                    f"{sorted(unknown)}; accepted: weight_density, act_density"
                )
            entries.append(
                (
                    str(name),
                    float(pair.get("weight_density", 1.0)),
                    float(pair.get("act_density", 1.0)),
                )
            )
        return ExplicitSparsity(densities=tuple(entries))


#: kind -> parser; extend with :func:`register_sparsity_profile`.
SPARSITY_PROFILES: dict[str, Callable[[Mapping], SparsityProfileSpec]] = {
    "analytical": AnalyticalSparsity.from_dict,
    "uniform": UniformSparsity.from_dict,
    "explicit": ExplicitSparsity.from_dict,
}


def register_sparsity_profile(
    kind: str, parser: Callable[[Mapping], SparsityProfileSpec], *,
    replace: bool = False,
) -> None:
    """Register a custom sparsity-profile kind for WorkloadSpec JSON.

    ``parser`` receives the spec's ``sparsity`` mapping (minus nothing --
    the ``profile`` tag included) and returns an object implementing
    :class:`SparsityProfileSpec`.
    """
    key = kind.strip().lower()
    if not replace and key in SPARSITY_PROFILES:
        raise ValueError(
            f"sparsity profile {kind!r} is already registered; pass "
            f"replace=True to overwrite it"
        )
    SPARSITY_PROFILES[key] = parser


def sparsity_from_dict(data: object) -> SparsityProfileSpec:
    """Build a sparsity profile from its JSON mapping (``profile`` tag)."""
    if not isinstance(data, Mapping):
        raise ValueError(
            f"'sparsity' must be a mapping with a 'profile' tag, got {data!r}"
        )
    kind = str(data.get("profile", "analytical")).lower()
    parser = SPARSITY_PROFILES.get(kind)
    if parser is None:
        import difflib

        close = difflib.get_close_matches(kind, SPARSITY_PROFILES, n=1, cutoff=0.6)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise ValueError(
            f"unknown sparsity profile {data.get('profile')!r}{hint} "
            f"(registered: {', '.join(sorted(SPARSITY_PROFILES))})"
        )
    payload = {key: value for key, value in data.items() if key != "profile"}
    return parser(payload)


# ----------------------------------------------------------------------
# The spec itself.
# ----------------------------------------------------------------------

_SPEC_KEYS = {"name", "layers", "sparsity", "accuracy", "dense_latency_cycles"}


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one workload (JSON-shaped)."""

    name: str
    layers: tuple[LayerSpec, ...]
    sparsity: SparsityProfileSpec
    accuracy: str = ""
    dense_latency_cycles: float = 0.0

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"workload {self.name!r} needs at least one layer")
        seen = set()
        for spec in self.layers:
            if spec.name in seen:
                raise ValueError(
                    f"workload {self.name!r} has duplicate layer name "
                    f"{spec.name!r}"
                )
            seen.add(spec.name)

    @staticmethod
    def from_dict(data: object) -> "WorkloadSpec":
        """Build and validate a spec from a plain mapping (JSON shape)."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a workload spec must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown workload keys {sorted(unknown)}; "
                f"accepted: {sorted(_SPEC_KEYS)}"
            )
        name = data.get("name")
        if not name:
            raise ValueError("workload spec needs a 'name'")
        layers = data.get("layers")
        if not isinstance(layers, Sequence) or isinstance(layers, (str, bytes)):
            raise ValueError("workload spec needs a 'layers' list")
        spec = WorkloadSpec(
            name=str(name),
            layers=tuple(layer_from_dict(layer) for layer in layers),
            sparsity=sparsity_from_dict(data.get("sparsity") or {}),
            accuracy=str(data.get("accuracy", "")),
            dense_latency_cycles=float(data.get("dense_latency_cycles", 0.0)),
        )
        # Fail fast on an unassignable profile (e.g. explicit entries that
        # name no layer), before the spec reaches a simulation.
        spec.sparsity.assign(spec.layers)
        return spec

    @staticmethod
    def from_json(text: str) -> "WorkloadSpec":
        return WorkloadSpec.from_dict(json.loads(text))

    @staticmethod
    def load(path: str | os.PathLike) -> "WorkloadSpec":
        """Read a spec from a JSON file (the workload-token file format).

        Any malformed-content failure (bad JSON, wrong shapes, bad values)
        surfaces as a ``ValueError`` naming the file, so callers validating
        untrusted specs need exactly one except clause.
        """
        try:
            return WorkloadSpec.from_json(Path(path).read_text())
        except (ValueError, TypeError, KeyError) as exc:
            raise ValueError(f"workload spec {os.fspath(path)!r}: {exc}") from None

    @staticmethod
    def coerce(spec: "WorkloadSpec | Mapping | str | os.PathLike") -> "WorkloadSpec":
        """Accept a spec object, a dict, or a path to a JSON file."""
        if isinstance(spec, WorkloadSpec):
            return spec
        if isinstance(spec, Mapping):
            return WorkloadSpec.from_dict(spec)
        return WorkloadSpec.load(spec)

    def to_dict(self) -> dict:
        """JSON-serializable form; ``from_dict`` round-trips it exactly."""
        payload: dict = {
            "name": self.name,
            "layers": [layer_to_dict(spec) for spec in self.layers],
            "sparsity": self.sparsity.to_dict(),
        }
        if self.accuracy:
            payload["accuracy"] = self.accuracy
        if self.dense_latency_cycles:
            payload["dense_latency_cycles"] = self.dense_latency_cycles
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def build(self) -> "Workload":
        """Materialize the spec into a first-class :class:`Workload`.

        The per-layer densities come from the sparsity profile; the
        workload's reference ratios are the built network's realized
        (parameter- / volume-weighted) sparsities, so category gating
        (``DNN.A`` needs nonzero activation sparsity) reflects the actual
        densities rather than the requested targets.
        """
        from repro.workloads.registry import Workload

        network = Network(name=self.name, layers=self.sparsity.assign(self.layers))
        return Workload(
            name=self.name,
            source=network,
            weight_sparsity=network.weight_sparsity,
            act_sparsity=network.act_sparsity,
            accuracy=self.accuracy,
            dense_latency_cycles=self.dense_latency_cycles,
        )
