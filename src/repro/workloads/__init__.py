"""First-class workloads: declarative networks, sparsity, and the registry.

The six Table IV networks are the built-in presets of the mutable
:data:`WORKLOADS` registry; any workload token -- a registry name, a
``name:override`` derivation, or a path to a declarative
:class:`WorkloadSpec` JSON file -- resolves through :func:`parse_workload`
into a fingerprinted :class:`Workload` (see ``docs/workloads.md``).
"""

from repro.workloads.sparsity import (
    SparsityProfile,
    LayerSparsity,
    act_profile,
    activation_tile_mask,
    channel_factors,
    sample_act_field,
    sample_weight_field,
    weight_profile,
    weight_tile_mask,
)
from repro.workloads.models import (
    Network,
    NetworkLayer,
    RawGemmSpec,
    alexnet,
    assign_densities,
    bert_base,
    gemm_content,
    googlenet,
    inception_v3,
    layer_content,
    mobilenet_v2,
    network_fingerprint,
    relu_transformer,
    resnet50,
)
from repro.workloads.registry import (
    BENCHMARKS,
    WORKLOADS,
    BenchmarkInfo,
    Workload,
    WorkloadLike,
    WorkloadRegistry,
    benchmark,
    benchmark_names,
    parse_workload,
    suite_for,
)
from repro.workloads.spec import (
    SPARSITY_PROFILES,
    AnalyticalSparsity,
    ExplicitSparsity,
    SparsityProfileSpec,
    UniformSparsity,
    WorkloadSpec,
    register_sparsity_profile,
    sparsity_from_dict,
)

__all__ = [
    "SparsityProfile",
    "LayerSparsity",
    "act_profile",
    "weight_profile",
    "channel_factors",
    "sample_weight_field",
    "sample_act_field",
    "weight_tile_mask",
    "activation_tile_mask",
    "Network",
    "NetworkLayer",
    "RawGemmSpec",
    "alexnet",
    "googlenet",
    "resnet50",
    "inception_v3",
    "mobilenet_v2",
    "bert_base",
    "relu_transformer",
    "assign_densities",
    "gemm_content",
    "layer_content",
    "network_fingerprint",
    "BENCHMARKS",
    "WORKLOADS",
    "BenchmarkInfo",
    "Workload",
    "WorkloadLike",
    "WorkloadRegistry",
    "benchmark",
    "benchmark_names",
    "parse_workload",
    "suite_for",
    "WorkloadSpec",
    "SparsityProfileSpec",
    "AnalyticalSparsity",
    "UniformSparsity",
    "ExplicitSparsity",
    "SPARSITY_PROFILES",
    "register_sparsity_profile",
    "sparsity_from_dict",
]
