"""Benchmark workloads: the six Table IV networks and sparsity synthesis."""

from repro.workloads.sparsity import (
    SparsityProfile,
    LayerSparsity,
    act_profile,
    activation_tile_mask,
    channel_factors,
    sample_act_field,
    sample_weight_field,
    weight_profile,
    weight_tile_mask,
)
from repro.workloads.models import (
    Network,
    NetworkLayer,
    alexnet,
    bert_base,
    googlenet,
    inception_v3,
    mobilenet_v2,
    relu_transformer,
    resnet50,
)
from repro.workloads.registry import BENCHMARKS, BenchmarkInfo, benchmark, benchmark_names

__all__ = [
    "SparsityProfile",
    "LayerSparsity",
    "act_profile",
    "weight_profile",
    "channel_factors",
    "sample_weight_field",
    "sample_act_field",
    "weight_tile_mask",
    "activation_tile_mask",
    "Network",
    "NetworkLayer",
    "alexnet",
    "googlenet",
    "resnet50",
    "inception_v3",
    "mobilenet_v2",
    "bert_base",
    "relu_transformer",
    "BENCHMARKS",
    "BenchmarkInfo",
    "benchmark",
    "benchmark_names",
]
