"""Synthetic structured sparsity for benchmark tensors.

The simulator needs nonzero *structure*, not values.  Real pruned weights
and ReLU activations are far from i.i.d. Bernoulli; the structure that the
borrowing architectures exploit is *channel level*:

* **per-lane imbalance** (``lane_cv``) -- magnitude pruning keeps very
  different fractions of each input channel / kernel tap, and the Figure 1
  blocking maps those positions onto fixed dot-product-unit lanes, so some
  lanes are persistently denser.  This is the imbalance the rotation
  shuffler and the ``d2`` lane lookaside fix (Fig. 5/6 observations 3-4).
* **per-filter channel structure** (``cross_cv``) -- which channels a
  filter keeps is largely filter-specific, so the density seen by adjacent
  PE columns is independent; that is the imbalance the cross-PE ``d3``
  dimension pools (Fig. 5 observation 2).
* **per-output totals** (``other_cv``) -- whole filters / spatial rows have
  different overall densities, a milder persistent component.
* **local variation** (``local_cv``) -- residual per-element density noise
  absorbed by the ``d1`` lookahead.

All factors are gamma-distributed with unit mean, multiplied, clipped and
Bernoulli-sampled, deterministic in the layer seed.  The default CVs are
calibration constants: EXPERIMENTS.md records how the resulting network
level speedups line up with the paper's Figs. 5-7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Persistent per-lane density CV of pruned weight tensors.
WEIGHT_LANE_CV = 0.45
#: Filter-specific channel-structure CV of pruned weight tensors.
WEIGHT_CROSS_CV = 0.55
#: Per-filter total-density CV of pruned weight tensors.
WEIGHT_N_CV = 0.2
#: Residual local CV of pruned weight tensors.
WEIGHT_LOCAL_CV = 0.2
#: Persistent per-lane density CV of ReLU activation tensors.
ACT_LANE_CV = 0.4
#: Channel-structure CV of ReLU activation tensors (varies per row block).
ACT_CROSS_CV = 0.4
#: Per-row (output-pixel) density CV of ReLU activation tensors.
ACT_M_CV = 0.3
#: Residual local CV of ReLU activation tensors.
ACT_LOCAL_CV = 0.25
#: Densities are clipped to at least this after applying factors.
DENSITY_FLOOR = 0.01


@dataclass(frozen=True)
class SparsityProfile:
    """Statistical description of one operand tensor's sparsity.

    ``density`` is the nonzero fraction; the CVs correspond to the factor
    fields described in the module docstring.  ``cross_cv`` only applies to
    weights (filter-specific channel structure).
    """

    density: float
    lane_cv: float
    cross_cv: float
    other_cv: float
    local_cv: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {self.density}")
        for name in ("lane_cv", "cross_cv", "other_cv", "local_cv"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def is_dense(self) -> bool:
        return self.density >= 1.0


def weight_profile(density: float) -> SparsityProfile:
    """Default profile for a pruned weight tensor."""
    return SparsityProfile(
        density=density,
        lane_cv=WEIGHT_LANE_CV,
        cross_cv=WEIGHT_CROSS_CV,
        other_cv=WEIGHT_N_CV,
        local_cv=WEIGHT_LOCAL_CV,
    )


def act_profile(density: float) -> SparsityProfile:
    """Default profile for a ReLU activation tensor."""
    return SparsityProfile(
        density=density,
        lane_cv=ACT_LANE_CV,
        cross_cv=ACT_CROSS_CV,
        other_cv=ACT_M_CV,
        local_cv=ACT_LOCAL_CV,
    )


@dataclass(frozen=True)
class LayerSparsity:
    """The sparsity of one layer's GEMM operands."""

    weights: SparsityProfile
    activations: SparsityProfile


def channel_factors(rng: np.random.Generator, count: int, cv: float) -> np.ndarray:
    """Per-channel density multipliers with unit mean and the given CV.

    Gamma-distributed with ``shape = 1 / cv**2`` (gamma CV is
    ``1/sqrt(shape)``), so higher CV concentrates density into fewer
    channels -- the signature of magnitude pruning.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    if cv <= 0:
        return np.ones(count)
    shape = 1.0 / (cv * cv)
    factors = rng.gamma(shape, 1.0 / shape, size=count)
    return factors / factors.mean()


def smooth_factors(rng: np.random.Generator, count: int, cv: float, window: int = 4) -> np.ndarray:
    """Spatially-correlated factors (adjacent rows share density)."""
    raw = channel_factors(rng, count, cv)
    if count >= 2 * window:
        kernel = np.ones(window) / window
        raw = np.convolve(raw, kernel, mode="same")
        raw /= raw.mean()
    return raw


@dataclass(frozen=True)
class WeightFactorField:
    """Sampled density-factor fields for one weight tensor ``B[K, N]``.

    The probability of element ``(k, n)`` being nonzero is
    ``density * lane[k % K0] * delta[c(k), n] * nf[n] * local[k]`` with
    ``c(k) = k % channels``: a persistent per-lane factor, a
    filter-specific channel-structure factor, a per-filter total, and
    residual local noise (see the module docstring).
    """

    k0: int
    channels: int
    lane: np.ndarray  # [K0]
    delta: np.ndarray  # [channels, N]
    n_factor: np.ndarray  # [N]
    local: np.ndarray  # [K]

    def probs(self, density: float, k_idx: np.ndarray, n_idx: np.ndarray) -> np.ndarray:
        """Nonzero probabilities for positions ``k_idx x n_idx``."""
        c = k_idx % self.channels
        delta = self.delta[c[..., np.newaxis], n_idx[np.newaxis, np.newaxis, :]]
        kf = (self.lane[k_idx % self.k0] * self.local[k_idx])[..., np.newaxis]
        probs = density * kf * delta * self.n_factor[n_idx]
        return np.clip(probs, DENSITY_FLOOR, 1.0)


def sample_weight_field(
    rng: np.random.Generator,
    profile: SparsityProfile,
    k_total: int,
    n_total: int,
    channels: int,
    k0: int = 16,
) -> WeightFactorField:
    """Draw the factor fields for one weight tensor."""
    channels = max(1, min(channels, k_total))
    lane = channel_factors(rng, k0, profile.lane_cv)
    if profile.cross_cv > 0:
        shape = 1.0 / (profile.cross_cv ** 2)
        delta = rng.gamma(shape, 1.0 / shape, size=(channels, n_total))
        delta /= delta.mean()
    else:
        delta = np.ones((channels, n_total))
    n_factor = channel_factors(rng, n_total, profile.other_cv)
    local = channel_factors(rng, k_total, profile.local_cv)
    return WeightFactorField(
        k0=k0, channels=channels, lane=lane, delta=delta, n_factor=n_factor, local=local
    )


@dataclass(frozen=True)
class ActFactorField:
    """Sampled density-factor fields for one activation tensor ``A[M, K]``.

    The probability of element ``(m, k)`` being nonzero is
    ``density * lane[k % K0] * chan[c(k)] * mf[m] * local[k]``: a
    persistent per-lane factor, a per-channel temporal factor (dead / hot
    feature maps), a spatially-smoothed per-row factor, and local noise.
    """

    k0: int
    channels: int
    lane: np.ndarray  # [K0]
    chan: np.ndarray  # [channels]
    m_factor: np.ndarray  # [M]
    local: np.ndarray  # [K]

    def probs(self, density: float, k_idx: np.ndarray, m_idx: np.ndarray) -> np.ndarray:
        c = k_idx % self.channels
        kf = self.lane[k_idx % self.k0] * self.chan[c] * self.local[k_idx]
        probs = density * kf[..., np.newaxis] * self.m_factor[m_idx]
        return np.clip(probs, DENSITY_FLOOR, 1.0)


def sample_act_field(
    rng: np.random.Generator,
    profile: SparsityProfile,
    k_total: int,
    m_total: int,
    channels: int,
    k0: int = 16,
) -> ActFactorField:
    """Draw the factor fields for one activation tensor."""
    channels = max(1, min(channels, k_total))
    lane = channel_factors(rng, k0, profile.lane_cv)
    chan = channel_factors(rng, channels, profile.cross_cv)
    m_factor = smooth_factors(rng, m_total, profile.other_cv)
    local = channel_factors(rng, k_total, profile.local_cv)
    return ActFactorField(
        k0=k0, channels=channels, lane=lane, chan=chan, m_factor=m_factor, local=local
    )


def _tile_indices(
    offset: int, width: int, total: int
) -> tuple[np.ndarray, np.ndarray]:
    idx = offset + np.arange(width)
    valid = idx < total
    return np.minimum(idx, total - 1), valid


def weight_tile_mask(
    rng: np.random.Generator,
    profile: SparsityProfile,
    field: WeightFactorField,
    t_steps: int,
    k0: int,
    k_offset: int,
    k_total: int,
    n_offset: int,
    n_tile: int,
    n_total: int,
) -> np.ndarray:
    """Generate a weight (B) tile mask ``[T, K0, N_tile]``.

    Positions past the end of K or N (edge tiles) are forced to zero, so
    edge passes naturally model idle lanes/PEs.
    """
    k_idx, k_valid = _tile_indices(k_offset, t_steps * k0, k_total)
    n_idx, n_valid = _tile_indices(n_offset, n_tile, n_total)
    probs = field.probs(profile.density, k_idx.reshape(t_steps, k0), n_idx)
    valid = k_valid.reshape(t_steps, k0)[:, :, np.newaxis] & n_valid[np.newaxis, np.newaxis, :]
    if profile.is_dense:
        return np.broadcast_to(valid, probs.shape).copy()
    mask = rng.random(probs.shape) < probs
    return mask & valid


def activation_tile_mask(
    rng: np.random.Generator,
    profile: SparsityProfile,
    field: ActFactorField,
    t_steps: int,
    k0: int,
    k_offset: int,
    k_total: int,
    m_offset: int,
    m_tile: int,
    m_total: int,
) -> np.ndarray:
    """Generate an activation (A) tile mask ``[T, K0, M_tile]``."""
    k_idx, k_valid = _tile_indices(k_offset, t_steps * k0, k_total)
    m_idx, m_valid = _tile_indices(m_offset, m_tile, m_total)
    probs = field.probs(profile.density, k_idx.reshape(t_steps, k0), m_idx)
    valid = k_valid.reshape(t_steps, k0)[:, :, np.newaxis] & m_valid[np.newaxis, np.newaxis, :]
    if profile.is_dense:
        return np.broadcast_to(valid, probs.shape).copy()
    mask = rng.random(probs.shape) < probs
    return mask & valid
