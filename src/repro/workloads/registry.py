"""First-class workloads: the mutable registry and the workload parser.

A :class:`Workload` mirrors the :class:`repro.dse.evaluate.Design` protocol
on the network side: one named, content-fingerprinted (layer specs +
per-layer density assignments) network with its reference metadata, built
lazily from a factory or wrapped around a prebuilt
:class:`~repro.workloads.models.Network`.  The six Table IV benchmarks are
the built-in presets of the global :data:`WORKLOADS` registry
(:class:`BenchmarkInfo` is a thin back-compat wrapper over
:class:`Workload`); :meth:`WorkloadRegistry.register` adds user networks
programmatically, and :func:`parse_workload` resolves any workload token
uniformly:

* a registry name, case-insensitive (``"ResNet50"``);
* a ``name:override`` token re-deriving sparsity
  (``"BERT:weight_sparsity=0.9"``, ``"AlexNet:act_density=0.5"``);
* a path to a declarative WorkloadSpec JSON file
  (``"examples/workloads/tinycnn.json"``, overridable the same way);
* a :class:`Workload`, :class:`~repro.workloads.spec.WorkloadSpec`, or bare
  :class:`~repro.workloads.models.Network` object, passed through.

Unknown names suggest the closest registered match (difflib), in the same
style as :func:`repro.dse.explorer.design_space` errors.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from functools import cached_property, lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Union

from repro.config import ModelCategory
from repro.workloads.models import (
    Network,
    alexnet,
    assign_densities,
    bert_base,
    googlenet,
    inception_v3,
    mobilenet_v2,
    network_fingerprint,
    resnet50,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec -> registry)
    from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class Workload:
    """One first-class workload: a network plus its reference metadata.

    ``factory`` builds the network lazily (the Table IV presets);
    ``source`` carries a prebuilt network instead (spec-built and derived
    workloads).  The built network is memoized per instance -- repeated
    ``.network`` accesses (benchmark loops, suite assembly) never rebuild.

    ``weight_sparsity`` / ``act_sparsity`` are the reference ratios the
    workload's sparse variants target (Table IV columns for the presets);
    ``accuracy`` and ``dense_latency_cycles`` are published reference
    numbers for the reproduction tables (empty / 0 for user workloads).
    """

    name: str
    factory: Callable[[], Network] | None = None
    weight_sparsity: float = 0.0
    act_sparsity: float = 0.0
    accuracy: str = ""
    dense_latency_cycles: float = 0.0
    source: Network | None = None

    def __post_init__(self) -> None:
        if (self.factory is None) == (self.source is None):
            raise ValueError(
                f"workload {self.name!r} needs exactly one of factory= or "
                f"source= (got factory={self.factory!r}, source={self.source!r})"
            )

    @cached_property
    def network(self) -> Network:
        """The built network (memoized per instance)."""
        if self.source is not None:
            return self.source
        return self.factory()

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the built network (layers + densities)."""
        return network_fingerprint(self.network)

    def categories(self) -> tuple[ModelCategory, ...]:
        """Model categories this workload can exercise.

        Every workload runs dense and weight-sparse; the activation-sparse
        categories need nonzero activation sparsity (BERT's GeLU keeps
        activations dense, so it cannot exercise A-side skipping).
        """
        cats = [ModelCategory.DENSE, ModelCategory.B]
        if self.act_sparsity > 0.0:
            cats += [ModelCategory.A, ModelCategory.AB]
        return tuple(cats)

    def describe(self) -> dict:
        """JSON-shaped summary record (what ``repro workloads list --json``
        and ``tools/bench_report.py`` emit)."""
        network = self.network
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "layers": len(network.layers),
            "macs": network.macs,
            "weight_sparsity": self.weight_sparsity,
            "act_sparsity": self.act_sparsity,
            "categories": [c.value for c in self.categories()],
        }


@dataclass(frozen=True)
class BenchmarkInfo(Workload):
    """One row of Table IV (thin back-compat wrapper over :class:`Workload`)."""


#: What :func:`parse_workload` accepts: a workload, a spec, a bare network,
#: or a token string (registry name, ``name:override``, or a JSON path).
WorkloadLike = Union[Workload, "WorkloadSpec", Network, str]


class WorkloadRegistry:
    """A mutable, name-keyed collection of workloads.

    Lookup is case-insensitive; registration preserves display case.  The
    global :data:`WORKLOADS` instance is pre-populated with the Table IV
    presets; :meth:`register` adds user workloads for the current process
    (worker processes resolve tokens themselves, so pass :class:`Workload`
    objects -- not bare registered names -- through
    ``Session.evaluate(networks=...)`` if you need a programmatically
    registered workload in a parallel run; workload objects pickle fine).
    """

    def __init__(self, workloads: tuple[Workload, ...] = ()) -> None:
        self._entries: dict[str, Workload] = {}
        for workload in workloads:
            self.register(workload)

    def register(
        self, workload: "Workload | Network | WorkloadSpec", *, replace: bool = False
    ) -> Workload:
        """Add a workload (or a network / spec, coerced) to the registry."""
        workload = _coerce(workload)
        key = workload.name.lower()
        if not replace and key in self._entries:
            raise ValueError(
                f"workload {workload.name!r} is already registered; pass "
                f"replace=True to overwrite it"
            )
        self._entries[key] = workload
        return workload

    def unregister(self, name: str) -> None:
        """Remove a workload by (case-insensitive) name."""
        try:
            del self._entries[name.strip().lower()]
        except KeyError:
            raise KeyError(self._unknown(name)) from None

    def get(self, name: str) -> Workload:
        """Look a workload up by (case-insensitive) name."""
        try:
            return self._entries[name.strip().lower()]
        except KeyError:
            raise KeyError(self._unknown(name)) from None

    def names(self) -> list[str]:
        return [workload.name for workload in self._entries.values()]

    def suite_for(self, category: ModelCategory) -> list[Workload]:
        """Registered workloads that exercise a given model category."""
        return [w for w in self._entries.values() if category in w.categories()]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.strip().lower() in self._entries

    def __iter__(self) -> Iterator[Workload]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def _unknown(self, name: str) -> str:
        close = difflib.get_close_matches(
            name.strip().lower(), list(self._entries), n=3, cutoff=0.6
        )
        hint = ""
        if close:
            shown = [self._entries[key].name for key in close]
            hint = f"; did you mean {' or '.join(shown)}?"
        return (
            f"unknown workload {name!r}{hint} "
            f"(registered: {', '.join(self.names())}; or pass a WorkloadSpec "
            f"JSON path)"
        )


def _coerce(obj: "Workload | Network | WorkloadSpec") -> Workload:
    """Coerce a workload-ish object (not a token string) to a Workload."""
    if isinstance(obj, Workload):
        return obj
    if isinstance(obj, Network):
        return Workload(
            name=obj.name,
            source=obj,
            weight_sparsity=obj.weight_sparsity,
            act_sparsity=obj.act_sparsity,
        )
    build = getattr(obj, "build", None)
    if callable(build):  # WorkloadSpec, without importing it (cycle guard)
        return build()
    raise TypeError(
        f"cannot use {obj!r} as a workload: expected a Workload, Network, "
        f"WorkloadSpec, or token string"
    )


BENCHMARKS: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("AlexNet", alexnet, 0.89, 0.53, "57.3% (top-1)", 1.0e6),
    BenchmarkInfo("GoogleNet", googlenet, 0.82, 0.37, "68.2% (top-1)", 2.2e6),
    BenchmarkInfo("ResNet50", resnet50, 0.81, 0.43, "76.1% (top-1)", 4.8e6),
    BenchmarkInfo("InceptionV3", inception_v3, 0.79, 0.46, "75.1% (top-1)", 6.9e6),
    BenchmarkInfo("MobileNetV2", mobilenet_v2, 0.81, 0.52, "67.5% (top-1)", 2.2e6),
    BenchmarkInfo("BERT", bert_base, 0.82, 0.00, "81.0%/81.4% (MNLI)", 5.3e6),
)

#: The global registry: Table IV presets built in, user workloads via
#: :meth:`WorkloadRegistry.register`.
WORKLOADS = WorkloadRegistry(BENCHMARKS)


def benchmark(name: str) -> Workload:
    """Look a workload up by (case-insensitive) name in the global registry."""
    return WORKLOADS.get(name)


def benchmark_names() -> list[str]:
    return WORKLOADS.names()


def suite_for(category: ModelCategory) -> list[BenchmarkInfo]:
    """Table IV presets that exercise a given model category.

    Deliberately scoped to the built-in presets (not the whole registry):
    this is the default evaluation suite, and user-registered workloads
    only participate when named explicitly.
    """
    return [info for info in BENCHMARKS if category in info.categories()]


#: Override keys a ``name:override`` token accepts, with their semantics.
_OVERRIDE_KEYS = ("weight_sparsity", "act_sparsity", "weight_density",
                  "act_density", "name")


def _apply_overrides(base: Workload, text: str, token: str) -> Workload:
    """Derive a workload from ``base`` per a ``k=v[,k=v...]`` override string.

    ``weight_sparsity`` / ``act_sparsity`` re-run the analytical density
    solver over the base network's layer specs at the new network-level
    ratios; ``weight_density`` / ``act_density`` pin a uniform per-layer
    density on the respective side afterwards; ``name`` renames the derived
    workload (default: the full token, so labels stay self-describing).
    """
    overrides: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip().lower()
        if not sep or not value.strip():
            raise ValueError(
                f"bad workload override {part!r} in {token!r}: expected "
                f"key=value with key one of {', '.join(_OVERRIDE_KEYS)}"
            )
        if key not in _OVERRIDE_KEYS:
            close = difflib.get_close_matches(key, _OVERRIDE_KEYS, n=1, cutoff=0.6)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ValueError(
                f"unknown workload override {key!r} in {token!r}{hint} "
                f"(accepted: {', '.join(_OVERRIDE_KEYS)})"
            )
        overrides[key] = value.strip()
    if not overrides:
        raise ValueError(f"workload token {token!r} has an empty override list")

    def _ratio(key: str, default: float) -> float:
        if key not in overrides:
            return default
        value = float(overrides[key])
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{key} must be in [0, 1], got {value} in {token!r}")
        return value

    network = base.network
    weight_sparsity = _ratio("weight_sparsity", base.weight_sparsity)
    act_sparsity = _ratio("act_sparsity", base.act_sparsity)
    layers = list(network.layers)
    if "weight_sparsity" in overrides or "act_sparsity" in overrides:
        layers = assign_densities(
            [layer.spec for layer in layers], weight_sparsity, act_sparsity
        )
    if "weight_density" in overrides:
        density = _ratio("weight_density", 1.0)
        layers = [
            type(layer)(spec=layer.spec, weight_density=density,
                        act_density=layer.act_density)
            for layer in layers
        ]
    if "act_density" in overrides:
        density = _ratio("act_density", 1.0)
        layers = [
            type(layer)(spec=layer.spec, weight_density=layer.weight_density,
                        act_density=density)
            for layer in layers
        ]
    name = overrides.get("name", token)
    derived = Network(name=name, layers=tuple(layers))
    return Workload(
        name=name,
        source=derived,
        weight_sparsity=derived.weight_sparsity,
        act_sparsity=derived.act_sparsity,
        accuracy=base.accuracy,
    )


def _looks_like_path(token: str) -> bool:
    return token.endswith(".json") or "/" in token or "\\" in token


@lru_cache(maxsize=256)
def _spec_workload_cached(path: str, mtime_ns: int, size: int) -> Workload:
    from repro.workloads.spec import WorkloadSpec

    return WorkloadSpec.load(path).build()


def _load_spec_workload(path: Path) -> Workload:
    """Load-and-build a WorkloadSpec path, memoized per file content.

    ``EvalSettings.suite`` resolves its tokens on every call (they must
    stay cheap, picklable strings for the worker processes), so without
    memoization a sweep would re-read the JSON and re-run the density
    solver for every (design, category) evaluation.  Keying on
    (path, mtime, size) keeps edits visible: touching the file is a cache
    miss, and the built ``Workload`` -- whose ``network`` is memoized per
    instance -- is shared by every later resolution.
    """
    stat = path.stat()
    return _spec_workload_cached(str(path), stat.st_mtime_ns, stat.st_size)


def anchor_workload_tokens(
    tokens: object, base: Path | str
) -> object:
    """Re-anchor relative WorkloadSpec paths in a token list onto ``base``.

    Experiment/search spec loaders call this with the spec file's parent
    directory so a spec can reference workload JSON files relative to
    *itself* (``"../workloads/tinycnn.json"``) and keep working from any
    working directory.  Only string tokens whose path half resolves under
    ``base`` are rewritten; everything else (names, absolute paths, tokens
    resolvable from the current directory, non-string workloads) passes
    through untouched.
    """
    if not isinstance(tokens, (list, tuple)):
        return tokens
    base = Path(base)
    anchored = []
    for token in tokens:
        if isinstance(token, str):
            head, sep, overrides = token.partition(":")
            path = Path(head)
            if (
                _looks_like_path(head)
                and not path.is_absolute()
                and not path.exists()
                and (base / head).exists()
            ):
                token = str(base / head) + sep + overrides
        anchored.append(token)
    return type(tokens)(anchored)


def parse_workload(token: WorkloadLike) -> Workload:
    """Resolve any workload token into a :class:`Workload`, uniformly.

    Accepted: :class:`Workload` / :class:`~repro.workloads.spec.WorkloadSpec`
    / :class:`~repro.workloads.models.Network` objects (passed through or
    built), registry names (case-insensitive), paths to WorkloadSpec JSON
    files, and ``base:key=value[,key=value...]`` override tokens where
    ``base`` is itself a name or a path (see module docstring).  Unknown
    names raise ``ValueError`` naming the closest registered match.
    """
    if not isinstance(token, str):
        return _coerce(token)
    text = token.strip()
    if not text:
        raise ValueError("empty workload token")
    if text in WORKLOADS:
        return WORKLOADS.get(text)
    base_text, sep, override_text = text.partition(":")
    base_text = base_text.strip()
    if _looks_like_path(base_text):
        path = Path(base_text)
        if not path.exists():
            raise ValueError(
                f"workload spec file {base_text!r} does not exist "
                f"(tokens ending in .json or containing a path separator "
                f"are resolved as WorkloadSpec JSON paths)"
            )
        base = _load_spec_workload(path)
    else:
        try:
            base = WORKLOADS.get(base_text)
        except KeyError as exc:
            raise ValueError(exc.args[0]) from None
    if not sep:
        return base
    return _apply_overrides(base, override_text, text)
