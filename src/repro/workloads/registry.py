"""The Table IV benchmark registry.

Maps each benchmark to its network definition and the published reference
numbers (sparsity ratios, accuracy, dense-baseline latency in cycles) so the
Table IV reproduction bench can print paper-vs-measured side by side.

Per Table I, every benchmark participates in the model categories its
tensors support: all six in ``DNN.dense`` and ``DNN.B``; the five CNNs in
``DNN.A`` and ``DNN.AB`` (BERT's GeLU keeps activations dense -- Table IV
lists its activation sparsity as 0%, so it cannot exercise A-side skipping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import ModelCategory
from repro.workloads.models import (
    Network,
    alexnet,
    bert_base,
    googlenet,
    inception_v3,
    mobilenet_v2,
    resnet50,
)


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of Table IV."""

    name: str
    factory: Callable[[], Network]
    weight_sparsity: float
    act_sparsity: float
    accuracy: str
    dense_latency_cycles: float

    @property
    def network(self) -> Network:
        return self.factory()

    def categories(self) -> tuple[ModelCategory, ...]:
        """Model categories this benchmark can exercise."""
        cats = [ModelCategory.DENSE, ModelCategory.B]
        if self.act_sparsity > 0.0:
            cats += [ModelCategory.A, ModelCategory.AB]
        return tuple(cats)


BENCHMARKS: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("AlexNet", alexnet, 0.89, 0.53, "57.3% (top-1)", 1.0e6),
    BenchmarkInfo("GoogleNet", googlenet, 0.82, 0.37, "68.2% (top-1)", 2.2e6),
    BenchmarkInfo("ResNet50", resnet50, 0.81, 0.43, "76.1% (top-1)", 4.8e6),
    BenchmarkInfo("InceptionV3", inception_v3, 0.79, 0.46, "75.1% (top-1)", 6.9e6),
    BenchmarkInfo("MobileNetV2", mobilenet_v2, 0.81, 0.52, "67.5% (top-1)", 2.2e6),
    BenchmarkInfo("BERT", bert_base, 0.82, 0.00, "81.0%/81.4% (MNLI)", 5.3e6),
)


def benchmark(name: str) -> BenchmarkInfo:
    """Look a benchmark up by (case-insensitive) name."""
    for info in BENCHMARKS:
        if info.name.lower() == name.lower():
            return info
    raise KeyError(f"unknown benchmark {name!r}; known: {[b.name for b in BENCHMARKS]}")


def benchmark_names() -> list[str]:
    return [info.name for info in BENCHMARKS]


def suite_for(category: ModelCategory) -> list[BenchmarkInfo]:
    """Benchmarks that exercise a given model category."""
    return [info for info in BENCHMARKS if category in info.categories()]
