"""The lint driver: collect files, run rules, report findings.

:func:`run_lint` is the single entry point used by the CLI, the tier-1
suite, and CI.  Given a repo root it walks ``src/**/*.py`` in sorted
order, parses each file once, applies every file-level rule whose scope
covers it, runs repo-level rules (the key manifest) once, filters waived
findings, and returns a :class:`LintReport` with deterministic ordering.

Explicitly named paths restrict the run.  A named file that falls under
no rule's scope (a fixture, a scratch snippet) gets *all* file-level
rules applied -- naming the file is the opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint import determinism as _determinism  # noqa: F401  (registers rules)
from repro.lint import locks as _locks  # noqa: F401  (registers rules)
from repro.lint import manifest as _manifest  # noqa: F401  (registers rules)
from repro.lint.framework import (
    LINT_SCHEMA_VERSION,
    Finding,
    ModuleSource,
    Rule,
    rules_for_codes,
)


def default_root() -> Path:
    """The repo root this installed tree belongs to (``src/repro/lint/../../..``)."""
    return Path(__file__).resolve().parents[3]


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    waived: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "v": LINT_SCHEMA_VERSION,
            "clean": self.clean,
            "files_checked": self.files_checked,
            "waived": self.waived,
            "rules": list(self.rules_run),
            "findings": [finding.as_dict() for finding in self.findings],
        }


def _relpath(path: Path, root: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(root).as_posix()
    except ValueError:
        # Explicitly named file outside the repo (a fixture, a scratch
        # snippet): report it by its absolute path.
        return resolved.as_posix()


def collect_files(root: Path, paths: list[str] | None = None) -> list[Path]:
    """The Python files a run covers, sorted for deterministic output.

    With no ``paths``, the whole ``src/`` tree.  Named directories are
    walked recursively; named files are taken as-is.
    """
    if not paths:
        return sorted((root / "src").rglob("*.py"))
    collected: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        path = path.resolve()
        if path.is_dir():
            collected.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            collected.add(path)
        else:
            raise ValueError(f"lint path {raw!r} is not a Python file or directory")
    return sorted(collected)


def run_lint(
    root: Path | None = None,
    paths: list[str] | None = None,
    codes: set[str] | None = None,
) -> LintReport:
    """Lint ``paths`` (default: all of ``src/``) under ``root``.

    ``codes`` restricts to rules emitting those codes (``ValueError`` on
    an unknown code).  Findings come back sorted by (path, line, rule).
    """
    root = (root if root is not None else default_root()).resolve()
    rules = rules_for_codes(codes)
    file_rules = [rule for rule in rules if not rule.repo_level]
    repo_rules = [rule for rule in rules if rule.repo_level]

    explicit = bool(paths)
    files = collect_files(root, paths)
    findings: list[Finding] = []
    waived = 0

    for path in files:
        relpath = _relpath(path, root)
        applicable = [rule for rule in file_rules if rule.applies_to(relpath)]
        if not applicable:
            if not explicit:
                continue
            # Explicitly named, out of every scope: run every file rule.
            applicable = file_rules
        module = ModuleSource.load(path, relpath)
        for rule in applicable:
            for finding in rule.check(module):
                if module.waived(finding):
                    waived += 1
                else:
                    findings.append(finding)

    # Repo-level rules run when the target set isn't narrowed away from
    # their scope: always on a full run, and on an explicit run that
    # names at least one file inside the rule's scope.
    checked_rels = {_relpath(path, root) for path in files}
    for rule in repo_rules:
        if explicit and not any(rule.applies_to(rel) for rel in checked_rels):
            continue
        for finding in rule.check_repo(root):
            waiver_site = root / finding.path
            if waiver_site.exists():
                module = ModuleSource.load(waiver_site, finding.path)
                if module.waived(finding):
                    waived += 1
                    continue
            findings.append(finding)

    return LintReport(
        findings=sorted(findings),
        files_checked=len(files),
        waived=waived,
        rules_run=tuple(
            sorted({code for rule in rules for code in rule.codes})
        ),
    )


def all_rules() -> list[Rule]:
    """Every registered rule (import side effects guaranteed by this module)."""
    return rules_for_codes(None)
