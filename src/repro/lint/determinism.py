"""Determinism rules (``DET*``) for result-affecting modules.

The repo's load-bearing guarantees -- parallel == serial bitwise,
content-addressed caching, RNG-free surrogate calibration -- all reduce to
one property: everything that feeds a result, a cache key, a fingerprint,
or serialized output must be a pure function of its declared inputs.
These rules forbid the classic leaks statically, in the modules whose
outputs are keyed and compared (``sim/``, ``surrogate/``, ``search/``,
``workloads/``, and the persistent cache):

* **DET001** -- wall-clock reads (``time.time``, ``datetime.now``,
  ``perf_counter``...): a timestamp in a result or key breaks replay.
* **DET002** -- unseeded or process-global RNG (``random.random()``,
  ``np.random.rand()``, ``np.random.default_rng()`` with no seed): draws
  depend on interpreter-global state and call order across workers.
  Seeded construction (``random.Random(seed)``,
  ``np.random.default_rng(seed)``) is the sanctioned form.
* **DET003** -- iterating a bare ``set`` (literal, ``set(...)`` call, or
  ``list(set(...))``): iteration order is salted per process.  Membership
  tests are fine; iterate ``sorted(...)`` instead.
* **DET004** -- unsorted filesystem enumeration (``os.listdir``,
  ``os.scandir``, ``glob.glob``, ``Path.glob/rglob/iterdir``): directory
  order is filesystem-dependent.  Wrap the call in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    Finding,
    ModuleSource,
    Rule,
    import_aliases,
    register,
    resolve_call_target,
)

#: Result-affecting modules (repo-relative prefixes).
DETERMINISM_SCOPE = (
    "src/repro/sim/",
    "src/repro/surrogate/",
    "src/repro/search/",
    "src/repro/workloads/",
    "src/repro/runtime/cache.py",
)

#: Canonical dotted paths of wall-clock reads.
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: RNG constructors that are fine *seeded* and findings unseeded.
SEEDED_RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
})

#: Module-global RNG namespaces: any call below these is a finding.
GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.")

#: Filesystem enumerators with filesystem-dependent order.
FS_ENUM_CALLS = frozenset({
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
})

#: Method names whose call on *any* receiver enumerates a directory.
FS_ENUM_METHODS = frozenset({"glob", "rglob", "iterdir"})


class _DeterminismRule(Rule):
    scope = DETERMINISM_SCOPE

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            rule=self.code,
            message=message,
        )


@register
class WallClockRule(_DeterminismRule):
    code = "DET001"
    name = "no-wall-clock"
    summary = "wall-clock reads are forbidden in result-affecting modules"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target in WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"wall-clock read {target}() in a result-affecting "
                    f"module; results must be pure functions of their "
                    f"declared inputs",
                )


@register
class UnseededRngRule(_DeterminismRule):
    code = "DET002"
    name = "no-global-rng"
    summary = "only explicitly seeded RNG generators are allowed"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target is None:
                continue
            if target in SEEDED_RNG_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        f"{target}() constructed without a seed; pass an "
                        f"explicit seed so every worker draws the same "
                        f"stream",
                    )
                continue
            if any(target.startswith(prefix) for prefix in GLOBAL_RNG_PREFIXES):
                yield self.finding(
                    module, node,
                    f"{target}() draws from process-global RNG state; "
                    f"construct a seeded Generator "
                    f"(np.random.default_rng(seed) / random.Random(seed)) "
                    f"and thread it through",
                )


def _is_set_expr(node: ast.AST) -> bool:
    """A set literal, set comprehension, or ``set(...)``/``frozenset(...)``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class SetIterationRule(_DeterminismRule):
    code = "DET003"
    name = "no-set-iteration"
    summary = "iterating a bare set has salted, per-process order"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        advice = (
            "set iteration order is salted per process; iterate "
            "sorted(...) instead"
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.finding(module, node.iter, advice)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield self.finding(module, comp.iter, advice)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                # list(set(x)) / tuple(set(x)): an ordered sequence built
                # straight from salted order.  sorted(set(x)) is the fix.
                if node.func.id in ("list", "tuple") and node.args:
                    if _is_set_expr(node.args[0]):
                        yield self.finding(
                            module, node,
                            f"{node.func.id}(set(...)) freezes salted set "
                            f"order into a sequence; use sorted(...)",
                        )


@register
class UnsortedFsEnumRule(_DeterminismRule):
    code = "DET004"
    name = "sorted-fs-enumeration"
    summary = "directory enumeration must be wrapped in sorted(...)"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            enumerator: str | None = None
            if target in FS_ENUM_CALLS:
                enumerator = target
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in FS_ENUM_METHODS
                and target not in FS_ENUM_CALLS  # already handled above
            ):
                enumerator = f".{node.func.attr}"
            if enumerator is None:
                continue
            if self._sorted_wraps(module, node):
                continue
            yield self.finding(
                module, node,
                f"{enumerator}(...) enumerates in filesystem order; wrap "
                f"the call in sorted(...) so downstream keys, fingerprints "
                f"and serialized output are stable",
            )

    @staticmethod
    def _sorted_wraps(module: ModuleSource, node: ast.Call) -> bool:
        """True when the enumeration is an immediate argument of sorted()."""
        parent = module.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and node in parent.args
        )
