"""Key-version drift detection (``KEY001``/``KEY002``).

The caching contract says: bump
:data:`repro.sim.engine.SIMULATION_KEY_VERSION` whenever simulation
semantics change (and :data:`~repro.sim.engine.NETWORK_KEY_VERSION` when
network aggregation or fingerprinting changes).  Until now that was a
README sentence enforced by reviewer memory.  This module turns it into a
mechanical gate:

* a committed **manifest** (``src/repro/lint/key_manifest.json``) records,
  for each key version, an AST-normalized content hash of the
  semantics-bearing module set;
* the **hash** is computed from the parsed AST with docstrings,
  comments, and formatting stripped (see :func:`canonical_source_hash`),
  so reformatting, renaming nothing, or editing prose never trips the
  gate -- only code structure does;
* the lint **fails (KEY001)** when the module set's hash has drifted from
  the manifest while the key version string is unchanged: semantics moved
  without an invalidation bump;
* bumping the key version makes the drift finding go away (the bump *is*
  the acknowledgement); run ``repro lint refresh-manifest`` in the same
  change to record the new ``(version, hash)`` pair.  The tier-1 suite
  asserts the committed manifest is exactly fresh, so a stale manifest
  cannot merge;
* for provably-bitwise-identical refactors (the PR 6 hot-path rewrite),
  ``repro lint refresh-manifest`` alone re-records the hash under the
  *unchanged* version -- the golden-result tests are the proof the
  refresh is legitimate, exactly like ``tools/bench_gate.py snapshot``
  refreshes (see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Iterator

from repro.lint.framework import Finding, Rule, register

#: The committed manifest, next to this module.
MANIFEST_PATH = Path(__file__).resolve().parent / "key_manifest.json"

#: Manifest schema version.
MANIFEST_VERSION = 1

#: The two guarded key versions and their semantics-bearing module sets
#: (repo-relative).  ``version_module``/``version_symbol`` locate the
#: key-version string assignment that acknowledges a semantic change.
MANIFEST_ENTRIES: dict[str, dict] = {
    "simulation": {
        "version_module": "src/repro/sim/engine.py",
        "version_symbol": "SIMULATION_KEY_VERSION",
        "modules": (
            "src/repro/config.py",
            "src/repro/core/overhead.py",
            "src/repro/gemm/layers.py",
            "src/repro/gemm/tiling.py",
            "src/repro/memory/dram.py",
            "src/repro/memory/sram.py",
            "src/repro/sim/compaction.py",
            "src/repro/sim/dual.py",
            "src/repro/sim/engine.py",
            "src/repro/sim/shuffle.py",
            "src/repro/workloads/sparsity.py",
        ),
    },
    "network": {
        "version_module": "src/repro/sim/engine.py",
        "version_symbol": "NETWORK_KEY_VERSION",
        "modules": (
            "src/repro/sim/engine.py",
            "src/repro/workloads/models.py",
        ),
    },
}

#: AST fields that carry formatting/position/typing noise, not semantics.
#: ``type_params`` (3.12) and ``type_comment`` are skipped so the hash is
#: stable across the CI interpreter matrix (3.10-3.12); ``ctx`` is
#: derivable from position; ``kind`` only distinguishes ``u""`` prefixes.
_SKIP_FIELDS = frozenset({
    "lineno", "col_offset", "end_lineno", "end_col_offset",
    "ctx", "type_comment", "type_ignores", "type_params", "kind",
})


def _is_docstring_stmt(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Constant)
        and isinstance(node.value.value, str)
    )


def _is_key_version_assign(node: ast.AST) -> bool:
    """A ``*_KEY_VERSION = "..."`` assignment.

    Excluded from the hash: the version string is the *acknowledgement*
    of a semantic change, not semantics itself.  Keeping it out means a
    bump to one key version never reads as drift of another entry that
    happens to share the module (``engine.py`` carries both symbols).
    """
    return (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
        and node.targets[0].id.endswith("_KEY_VERSION")
    )


def _emit(node: object, out: list[str]) -> None:
    """Serialize an AST into a canonical, interpreter-stable form."""
    if isinstance(node, ast.AST):
        out.append(type(node).__name__)
        out.append("(")
        for name, value in ast.iter_fields(node):
            if name in _SKIP_FIELDS:
                continue
            out.append(name)
            out.append("=")
            _emit(value, out)
            out.append(",")
        out.append(")")
    elif isinstance(node, list):
        out.append("[")
        for item in node:
            # Bare string-constant statements are docstrings (module,
            # class, function) or no-op prose: never semantics.
            if _is_docstring_stmt(item) or _is_key_version_assign(item):
                continue
            _emit(item, out)
            out.append(",")
        out.append("]")
    else:
        out.append(repr(node))


def canonical_source_hash(source: str, filename: str = "<lint>") -> str:
    """SHA-256 of the AST-normalized source.

    Comments never reach the AST; docstrings, positions, and
    version-specific fields are stripped by :func:`_emit`, so two sources
    hash equal iff they are structurally the same program.
    """
    tree = ast.parse(source, filename=filename)
    out: list[str] = []
    _emit(tree, out)
    return hashlib.sha256("".join(out).encode()).hexdigest()


def module_set_hash(root: Path, modules: tuple[str, ...]) -> str:
    """Combined hash of a module set: per-file canonical hashes, in order."""
    parts = []
    for relpath in sorted(modules):
        source = (root / relpath).read_text()
        parts.append(f"{relpath}={canonical_source_hash(source, relpath)}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def extract_key_version(root: Path, entry: dict) -> str:
    """The current key-version string, read statically from the source."""
    path = root / entry["version_module"]
    tree = ast.parse(path.read_text(), filename=str(path))
    symbol = entry["version_symbol"]
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == symbol:
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, str
                ):
                    return node.value.value
    raise ValueError(
        f"{entry['version_module']} does not assign a string to {symbol}"
    )


def _version_line(root: Path, entry: dict) -> int:
    """Line of the key-version assignment (where drift findings anchor)."""
    path = root / entry["version_module"]
    symbol = entry["version_symbol"]
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        if text.startswith(f"{symbol} ="):
            return lineno
    return 1


def compute_manifest(root: Path) -> dict:
    """The manifest the current tree *should* commit."""
    entries = {}
    for name, entry in sorted(MANIFEST_ENTRIES.items()):
        entries[name] = {
            "key_version": extract_key_version(root, entry),
            "content_hash": module_set_hash(root, entry["modules"]),
            "modules": list(entry["modules"]),
        }
    return {"v": MANIFEST_VERSION, "entries": entries}


def load_manifest(path: Path | None = None) -> dict:
    """The committed manifest; raises ``ValueError`` when unusable."""
    path = path if path is not None else MANIFEST_PATH
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(
            f"key manifest {path} is missing ({exc}); run "
            f"`repro lint refresh-manifest`"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"key manifest {path} is not valid JSON: {exc}") from None
    if data.get("v") != MANIFEST_VERSION or "entries" not in data:
        raise ValueError(
            f"key manifest {path} has unsupported schema "
            f"(expected v={MANIFEST_VERSION}); run `repro lint refresh-manifest`"
        )
    return data


def refresh_manifest(root: Path, path: Path | None = None) -> dict:
    """Recompute and write the manifest; returns what was written."""
    path = path if path is not None else root / "src/repro/lint/key_manifest.json"
    manifest = compute_manifest(root)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest


def manifest_is_fresh(root: Path, path: Path | None = None) -> bool:
    """True when the committed manifest matches the tree exactly.

    Stronger than the lint gate (which lets a just-bumped version pass
    before its refresh): the tier-1 suite pins this, so a stale manifest
    never merges.
    """
    try:
        committed = load_manifest(
            path if path is not None else root / "src/repro/lint/key_manifest.json"
        )
    except ValueError:
        return False
    return committed == compute_manifest(root)


def manifest_findings(root: Path, path: Path | None = None) -> Iterator[Finding]:
    """KEY001 drift findings (or one KEY002 for an unusable manifest)."""
    manifest_rel = "src/repro/lint/key_manifest.json"
    try:
        committed = load_manifest(
            path if path is not None else root / manifest_rel
        )
    except ValueError as exc:
        yield Finding(path=manifest_rel, line=1, rule="KEY002", message=str(exc))
        return
    for name, entry in sorted(MANIFEST_ENTRIES.items()):
        recorded = committed["entries"].get(name)
        if recorded is None:
            yield Finding(
                path=manifest_rel, line=1, rule="KEY002",
                message=(
                    f"manifest has no entry for {name!r}; run "
                    f"`repro lint refresh-manifest`"
                ),
            )
            continue
        current_version = extract_key_version(root, entry)
        if current_version != recorded.get("key_version"):
            # A version bump acknowledges the semantic change; the
            # freshness test (and the next refresh) records the new pair.
            continue
        current_hash = module_set_hash(root, entry["modules"])
        if current_hash != recorded.get("content_hash"):
            symbol = entry["version_symbol"]
            yield Finding(
                path=entry["version_module"],
                line=_version_line(root, entry),
                rule="KEY001",
                message=(
                    f"semantics-bearing modules of {symbol} "
                    f"({current_version!r}) changed without a key-version "
                    f"bump; bump {symbol} (cache entries are stale) or, for "
                    f"a provably-bitwise-identical refactor, run "
                    f"`repro lint refresh-manifest`"
                ),
            )


@register
class KeyManifestRule(Rule):
    code = "KEY001"
    name = "key-version-drift"
    summary = "key-versioned module sets must not drift from the manifest"
    scope = tuple(
        sorted({
            module
            for entry in MANIFEST_ENTRIES.values()
            for module in entry["modules"]
        })
    )
    repo_level = True

    @property
    def codes(self) -> tuple[str, ...]:
        return ("KEY001", "KEY002")

    def check_repo(self, root: Path) -> Iterator[Finding]:
        return manifest_findings(root)
