"""``repro.lint`` -- AST-based invariant checker.

Statically enforces the repo's load-bearing guarantees: determinism of
result-affecting modules (``DET001``-``DET004``), cache-key-version
discipline against a committed manifest (``KEY001``/``KEY002``), and
lock hygiene in the concurrent layers (``LOCK001``).  See ``docs/lint.md``
for the rule catalogue and ``repro lint --help`` for the CLI.
"""

from repro.lint.checker import LintReport, collect_files, default_root, run_lint
from repro.lint.framework import (
    LINT_SCHEMA_VERSION,
    RULES,
    Finding,
    ModuleSource,
    Rule,
    known_codes,
    parse_waivers,
    rules_for_codes,
)
from repro.lint.manifest import (
    MANIFEST_ENTRIES,
    canonical_source_hash,
    compute_manifest,
    load_manifest,
    manifest_is_fresh,
    module_set_hash,
    refresh_manifest,
)

__all__ = [
    "LINT_SCHEMA_VERSION",
    "MANIFEST_ENTRIES",
    "RULES",
    "Finding",
    "LintReport",
    "ModuleSource",
    "Rule",
    "canonical_source_hash",
    "collect_files",
    "compute_manifest",
    "default_root",
    "known_codes",
    "load_manifest",
    "manifest_is_fresh",
    "module_set_hash",
    "parse_waivers",
    "refresh_manifest",
    "rules_for_codes",
    "run_lint",
]
