"""Lock-hygiene rule (``LOCK001``) for the concurrent layers.

Classes in the serving and runtime layers that are shared across threads
declare their discipline in code: an attribute named ``*lock``
(``_lock``, ``_state_lock``, ``_cache_lock``) assigned a
``threading.Lock``/``RLock`` in ``__init__``.  This rule makes the
declaration enforceable: in any such class, an instance-attribute write
(``self.x = ...``, ``self.x += ...``) outside ``__init__`` must happen
lexically inside a ``with self.<lock>:`` block (or ``async with``), or
carry an explicit ``# repro: lint-ok[LOCK001] reason`` waiver.

Classes that do not declare a lock are exempt -- the serve app, for
example, is serialized by the asyncio event loop and says so in its
docstrings rather than with a mutex.  The rule checks writes, not reads:
the repo's shared state is monotonic counters and swap-on-close handles,
where unlocked reads are deliberate and cheap but an unlocked write is
always a bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    Finding,
    ModuleSource,
    Rule,
    dotted_name,
    register,
)

#: Thread-shared layers (repo-relative prefixes).
LOCK_SCOPE = (
    "src/repro/serve/",
    "src/repro/runtime/runner.py",
    "src/repro/api.py",
)

#: Constructor names that mark an attribute as a mutex.
_LOCK_CONSTRUCTORS = frozenset({
    "threading.Lock",
    "threading.RLock",
    "Lock",
    "RLock",
    "asyncio.Lock",
})


def _lock_attrs(cls: ast.ClassDef) -> frozenset[str]:
    """Attribute names the class assigns a Lock/RLock to (its declared locks)."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        dotted = dotted_name(node.value.func)
        if dotted not in _LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.endswith("lock")
            ):
                locks.add(target.attr)
    return frozenset(locks)


def _self_attr_writes(node: ast.stmt) -> Iterator[tuple[ast.stmt, str]]:
    """(statement, attribute) for each ``self.<attr>`` write in a statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if node.target is not None:
            targets = [node.target]
    flat: list[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flat.extend(target.elts)
        else:
            flat.append(target)
    for target in flat:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield node, target.attr


def _holds_lock(module: ModuleSource, node: ast.AST, locks: frozenset[str]) -> bool:
    """True when ``node`` sits inside ``with self.<one of locks>``."""
    parents = module.parents
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in locks
                ):
                    return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Stop at the enclosing method: a lock held by a *caller* is
            # not visible lexically and must be waived explicitly.
            return False
        current = parents.get(current)
    return False


@register
class UnlockedWriteRule(Rule):
    code = "LOCK001"
    name = "hold-declared-lock"
    summary = "attribute writes in lock-declaring classes must hold the lock"
    scope = LOCK_SCOPE

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _lock_attrs(cls)
            if not locks:
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__":
                    continue  # construction happens-before sharing
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.stmt):
                        continue
                    for write, attr in _self_attr_writes(stmt):
                        if attr in locks:
                            continue  # rebinding the lock itself: not ours
                        if _holds_lock(module, write, locks):
                            continue
                        lock_list = ", ".join(f"self.{name}" for name in sorted(locks))
                        yield Finding(
                            path=module.relpath,
                            line=write.lineno,
                            rule=self.code,
                            message=(
                                f"{cls.name}.{method.name} writes "
                                f"self.{attr} without holding {lock_list}; "
                                f"wrap the write in `with {lock_list.split(', ')[0]}:` "
                                f"or waive with a reason"
                            ),
                        )
