"""The rule framework behind ``repro lint``.

Every rule is a small object with a stable **code** (``DET001``,
``KEY001``, ``LOCK001``, ...), a repo-relative **scope** (the path
prefixes it applies to), and a ``check`` hook that yields
:class:`Finding`s from one parsed module.  Rules register themselves into
the module-level :data:`RULES` list at import time (see
:mod:`repro.lint.determinism`, :mod:`repro.lint.locks`,
:mod:`repro.lint.manifest`); the checker (:mod:`repro.lint.checker`)
drives them over the tree.

Findings are *waivable* inline::

    entries = list(path.iterdir())  # repro: lint-ok[DET004] order logged, not keyed

The marker waives the named code(s) on its own line, or -- when written
as a standalone comment line -- on the line directly below, so long
statements stay readable.  Waivers name explicit codes; there is no
blanket ``lint-ok`` (a waiver should say exactly which invariant it is
opting out of, and why).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: Bump on incompatible changes to the ``repro lint --json`` payload.
LINT_SCHEMA_VERSION = 1

#: ``# repro: lint-ok[DET001]`` / ``# repro: lint-ok[DET001, LOCK001] why``.
_WAIVER_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[\s*([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\s*\]"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation: rule code, repo-relative path, line, message."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """The human one-liner: ``path:line: CODE message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def parse_waivers(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule codes waived on that line.

    A marker waives its own physical line; a line holding nothing but the
    comment also waives the next line (the statement it annotates).
    """
    waivers: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        waivers.setdefault(lineno, set()).update(codes)
        if text[: match.start()].strip() == "":  # standalone comment line
            waivers.setdefault(lineno + 1, set()).update(codes)
    return {line: frozenset(codes) for line, codes in waivers.items()}


@dataclass
class ModuleSource:
    """One parsed source file, shared by every rule that inspects it."""

    relpath: str  # repo-relative, "/"-separated
    source: str
    tree: ast.Module
    waivers: dict[int, frozenset[str]] = field(default_factory=dict)
    _parents: dict[ast.AST, ast.AST] | None = None

    @classmethod
    def load(cls, path: Path, relpath: str) -> "ModuleSource":
        source = path.read_text()
        return cls.parse(source, relpath)

    @classmethod
    def parse(cls, source: str, relpath: str) -> "ModuleSource":
        tree = ast.parse(source, filename=relpath)
        return cls(
            relpath=relpath,
            source=source,
            tree=tree,
            waivers=parse_waivers(source),
        )

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child node -> parent node over the whole tree (lazy, cached)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def waived(self, finding: Finding) -> bool:
        codes = self.waivers.get(finding.line)
        return codes is not None and finding.rule in codes


class Rule:
    """Base class: one invariant, one stable primary code.

    ``codes`` lists every code the rule can emit (usually just the
    primary); ``scope`` is the tuple of repo-relative path prefixes the
    rule applies to when walking the tree.  Explicitly named files
    *outside* every rule's scope get all file rules (how fixtures and
    one-off snippets are linted -- see ``checker.lint_paths``).
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    scope: tuple[str, ...] = ()
    #: True for rules checked once per repo, not once per file.
    repo_level: bool = False

    @property
    def codes(self) -> tuple[str, ...]:
        return (self.code,)

    def applies_to(self, relpath: str) -> bool:
        return any(
            relpath == prefix or relpath.startswith(prefix)
            for prefix in self.scope
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield findings for one module (file-level rules)."""
        return iter(())

    def check_repo(self, root: Path) -> Iterator[Finding]:
        """Yield findings for the whole tree (repo-level rules)."""
        return iter(())


#: The rule registry, populated by the rule modules at import time.
RULES: list[Rule] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to :data:`RULES` (idempotent)."""
    if not any(type(rule) is rule_cls for rule in RULES):
        RULES.append(rule_cls())
    return rule_cls


def known_codes() -> tuple[str, ...]:
    """Every registered rule code, sorted."""
    codes: set[str] = set()
    for rule in RULES:
        codes.update(rule.codes)
    return tuple(sorted(codes))


def rules_for_codes(codes: set[str] | None) -> list[Rule]:
    """The registered rules emitting any of ``codes`` (all when ``None``)."""
    if codes is None:
        return list(RULES)
    unknown = codes - set(known_codes())
    if unknown:
        raise ValueError(
            f"unknown lint rule {', '.join(sorted(unknown))!s}; "
            f"known rules: {', '.join(known_codes())}"
        )
    return [rule for rule in RULES if set(rule.codes) & codes]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted path, from the module's imports.

    Covers ``import numpy as np`` (``np`` -> ``numpy``), ``import
    numpy.random as npr``, and ``from datetime import datetime as dt``
    (``dt`` -> ``datetime.datetime``).  Only top-level-ish imports matter
    for the rules here, but the walk sees nested ones too.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_target(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """The canonical dotted path a call resolves to, through import aliases.

    ``np.random.default_rng(...)`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; a bare ``time()`` after ``from time
    import time`` resolves to ``time.time``.  Returns ``None`` for calls
    whose target is not a plain name/attribute chain.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical_head = aliases.get(head, head)
    return f"{canonical_head}.{rest}" if rest else canonical_head
