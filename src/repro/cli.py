"""Command-line interface: ``python -m repro <command>``.

Ten subcommands cover the everyday questions, all driving the same
session API (:mod:`repro.api`) so every command shares the parallel
runner and the two-tier persistent result cache (whole networks, then
layers -- see ``docs/caching.md``):

* ``simulate``  -- run one design on one workload and category;
* ``cost``      -- print the Table VII-style breakdown of a design;
* ``compare``   -- effective-efficiency table of several designs on one
  category (a one-line slice of Fig. 8);
* ``sweep``     -- evaluate a whole design space (Figs. 5-7) in parallel
  worker processes and print a figure-ready table plus the starred
  optimal point;
* ``run``       -- execute a declarative experiment spec (JSON), e.g. the
  checked-in Fig. 8 overall comparison;
* ``search``    -- guided design-space search (:mod:`repro.search`):
  exhaustive / random / evolutionary / surrogate-screened strategies over
  a declarative constrained space, with a Pareto archive,
  checkpoint/resume, and a multi-fidelity mode (``--fidelity multi``)
  that screens with the calibrated surrogate (see ``docs/search.md``);
* ``surrogate`` -- fit the calibrated analytical surrogate against the
  cache's exact results, or verify the committed constants against their
  error budget (see ``docs/surrogate.md``);
* ``workloads`` -- list the workload registry, validate declarative
  WorkloadSpec JSON files, and print content fingerprints (see
  ``docs/workloads.md``);
* ``serve``     -- the always-on evaluation service: one warm session
  behind an HTTP+JSON API with request coalescing (see ``docs/serve.md``);
* ``lint``      -- the AST-based invariant checker (:mod:`repro.lint`):
  determinism rules for result-affecting modules, cache-key-version drift
  detection against a committed manifest, and lock hygiene for the
  concurrent layers (see ``docs/lint.md``).  ``repro lint
  refresh-manifest`` re-records the key manifest after an acknowledged
  change.

``repro --version`` prints the toolkit version; ``repro --json-errors``
switches error reporting from the one-line ``error: ...`` stderr format
to the same JSON error envelope the server returns (``repro.errors``).

Designs parse uniformly everywhere (:func:`repro.dse.evaluate.parse_design`):
borrowing notation like ``"B(4,0,1,on)"``, ``Dense``, ``Griffin``, the
starred Table VI points (``"Sparse.B*"``), and every Table V baseline name
(``SparTen``, ``TensorDash``, ``BitTactical``, ...), all case-insensitive.
Workloads parse just as uniformly
(:func:`repro.workloads.registry.parse_workload`): every ``--network`` flag
takes a Table IV preset name (``ResNet50``), a ``name:override`` derivation
(``"BERT:weight_sparsity=0.9"``), or a path to a WorkloadSpec JSON file.

Examples::

    python -m repro simulate --arch Griffin --network ResNet50 --category DNN.B
    python -m repro simulate --arch Griffin --network examples/workloads/tinycnn.json
    python -m repro cost --arch SparTen
    python -m repro compare --category DNN.B --arch Dense --arch "B(4,0,1,on)" --arch Griffin
    python -m repro sweep --space b --workers 4
    python -m repro run examples/experiments/fig8.json --workers 4
    python -m repro search examples/experiments/search_b.json --workers 4
    python -m repro search --space b --strategy evolutionary --budget 10 --seed 14
    python -m repro workloads list
    python -m repro workloads validate examples/workloads/*.json
    python -m repro workloads fingerprint ResNet50 "BERT:weight_sparsity=0.9"
    python -m repro serve --port 8757 --workers 4
    python -m repro lint
    python -m repro lint --json --rule DET001 src/repro/sim
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Sequence

from repro import __version__
from repro.api import ExperimentSpec, Session
from repro.config import ModelCategory
from repro.errors import envelope_from_exception, error_envelope, print_error
from repro.obs import trace as obs_trace
from repro.obs.chrome import chrome_trace, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry, cache_metrics
from repro.obs.report import render_summary, summarize
from repro.obs.sink import read_trace, write_trace
from repro.dse.evaluate import EvalSettings, parse_design
from repro.dse.explorer import DESIGN_SPACES, design_space, space_categories, space_label
from repro.dse.report import format_table, select_optimal, sweep_rows, sweep_table
from repro.runtime.cache import CacheStats
from repro.search.space import PAPER_SPACE_NAMES, resolve_space
from repro.search.spec import FIDELITY_KINDS, SearchSpec, StrategySpec
from repro.search.strategy import STRATEGY_KINDS
from repro.sim.engine import SimulationOptions
from repro.workloads.registry import WORKLOADS, benchmark_names, parse_workload
from repro.workloads.spec import WorkloadSpec


def _category(text: str) -> ModelCategory:
    try:
        return ModelCategory.from_text(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _options(args: argparse.Namespace) -> SimulationOptions:
    return SimulationOptions(
        passes_per_gemm=args.passes, max_t_steps=args.max_t, seed=args.seed
    )


def _session(args: argparse.Namespace) -> Session:
    """A session configured from the shared cache/worker flags."""

    def progress(done: int, total: int) -> None:
        print(f"  evaluated {done}/{total} design points", file=sys.stderr)

    return Session(
        workers=getattr(args, "workers", 0),
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
        progress=progress if getattr(args, "progress", False) else None,
    )


def _cache_line(stats: CacheStats, session: Session) -> str:
    """One unified line covering both cache tiers.

    The leading totals aggregate the network and layer tiers; the bracketed
    breakdown shows each tier's hits/misses (a warm run reads ``network
    Nh/0m, layer 0h/0m``: whole networks served in one read each, zero
    layer lookups).  CI greps this format -- keep the prefix stable.
    """
    if session.cache_dir is None:
        return "persistent cache: disabled"
    return (
        f"persistent cache: {stats.hits} hits, {stats.misses} misses, "
        f"{stats.puts} puts ({100.0 * stats.hit_rate:.1f}% hit rate) "
        f"[network {stats.network_hits}h/{stats.network_misses}m, "
        f"layer {stats.layer_hits}h/{stats.layer_misses}m] "
        f"[{session.cache_dir}]"
    )


def _print_metrics(stats: CacheStats, extra: dict[str, float] | None = None) -> None:
    """The ``--metrics`` dump: cache counters (+ run facts) as Prometheus text."""
    registry = MetricsRegistry()
    cache_metrics(registry, stats)
    if extra:
        gauge = registry.gauge(
            "repro_cli_run", "Facts about this CLI invocation.", labelnames=("fact",)
        )
        for name, value in extra.items():
            gauge.set(value, fact=name)
    print(registry.render(), end="")


def cmd_simulate(args: argparse.Namespace) -> int:
    session = _session(args)
    design = parse_design(args.arch)
    config = design.config_for(args.category)
    result = session.simulate(args.network, design, args.category, _options(args))
    shown = design.label if design.label == config.label else (
        f"{design.label} [{config.label}]"
    )
    print(f"{result.network} on {shown} ({args.category.value}):")
    print(f"  dense cycles : {result.dense_cycles:,}")
    print(f"  cycles       : {result.cycles:,.0f}")
    print(f"  speedup      : {result.speedup:.3f}x")
    if args.layers:
        rows = [
            {
                "Layer": layer.name,
                "Cycles": f"{layer.cycles:.3g}",
                "Share%": 100 * layer.dense_cycles / result.dense_cycles,
                "Speedup": layer.speedup,
            }
            for layer in result.layers
        ]
        print(format_table(rows))
    if args.cache_stats:
        print(_cache_line(session.stats, session))
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    row = parse_design(args.arch).cost()
    print(f"{row.label}: {row.total_power_mw:.1f} mW, {row.total_area_kum2:.1f} k um^2")
    print(format_table([
        {"Component": k, "Power (mW)": round(p, 2), "Area (k um^2)": round(a, 2)}
        for (k, p), a in zip(row.power_row().items(), row.area_row().values())
    ]))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    session = _session(args)
    settings = EvalSettings(quick=not args.full, options=_options(args))
    designs = [parse_design(name) for name in args.arch]
    outcome = session.evaluate(designs, (args.category,), settings)
    rows = []
    for evaluation in outcome.evaluations:
        point = evaluation.point(args.category)
        rows.append(
            {
                "Architecture": evaluation.label,
                "Speedup": point.speedup,
                "Power (mW)": round(point.power_mw, 1),
                "TOPS/W": point.tops_per_watt,
                "TOPS/mm2": point.tops_per_mm2,
            }
        )
    print(format_table(rows, title=f"{args.category.value} comparison"))
    if args.cache_stats:
        print(_cache_line(session.stats, session))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    configs = design_space(args.space)
    if args.limit:
        configs = configs[: args.limit]
    sparse_cat, dense_cat = space_categories(args.space)
    categories = tuple(args.category) if args.category else (sparse_cat, dense_cat)

    if args.quick:
        options = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=args.seed)
        networks = tuple(args.network) if args.network else ("BERT", "AlexNet")
    else:
        options = _options(args)
        networks = tuple(args.network) if args.network else None
    settings = EvalSettings(quick=not args.full, options=options, networks=networks)

    session = _session(args)
    outcome = session.evaluate(configs, categories, settings)

    title = (
        f"{space_label(args.space)} sweep: {len(outcome)} design points, "
        f"categories {[c.value for c in categories]}"
    )
    print(sweep_table(outcome.evaluations, categories, title=title))

    if sparse_cat in categories and dense_cat in categories and outcome.evaluations:
        star = select_optimal(outcome.evaluations, sparse_cat, dense_cat)
        print(f"optimal point ({sparse_cat.value} vs {dense_cat.value}): {star.label}")

    print(_cache_line(outcome.cache_stats, session))
    if getattr(args, "metrics", False):
        _print_metrics(
            outcome.cache_stats,
            {"design_points": len(outcome), "workers": outcome.workers},
        )

    if args.json_path:
        payload = {
            "space": args.space,
            "categories": [c.value for c in categories],
            "workers": outcome.workers,
            "rows": sweep_rows(outcome.evaluations, categories),
            "cache": outcome.cache_stats.as_dict(),
        }
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.load(args.spec)
    session = _session(args)
    result = session.run(spec, quick=args.quick or None)
    print(result.table())
    print(_cache_line(result.cache_stats, session))
    if getattr(args, "metrics", False):
        _print_metrics(
            result.cache_stats,
            {
                "design_points": len(result.outcome.evaluations),
                "workers": result.outcome.workers,
            },
        )
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    # Strategy flags the user actually passed (defaults are None so a spec
    # file's own tuning survives a partial override).
    overrides = {
        key: value
        for key, value in (
            ("kind", args.strategy),
            ("seed", args.seed),
            ("budget", args.budget),
            ("population", args.population),
        )
        if value is not None
    }
    if overrides.get("kind") == "exhaustive" and "budget" not in overrides:
        # Switching a spec to exhaustive means "the full grid": drop the
        # spec's sampling budget unless the user explicitly caps it.
        overrides["budget"] = None
    if args.fidelity == "multi":
        if overrides.get("kind") not in (None, "surrogate"):
            raise ValueError(
                f"--fidelity multi runs the surrogate-screened strategy; "
                f"it conflicts with --strategy {overrides['kind']}"
            )
        overrides["kind"] = "surrogate"
    if args.spec:
        spec = SearchSpec.load(args.spec)
        if overrides:
            # e.g. `--strategy exhaustive` reuses a spec's space/settings as
            # the ground truth a guided run is compared against (what the CI
            # smoke does); everything not overridden keeps the spec's value.
            # Fidelity follows the effective strategy kind (they are one
            # choice -- see SearchSpec).
            strategy = replace(spec.strategy, **overrides)
            spec = replace(
                spec,
                strategy=strategy,
                fidelity="multi" if strategy.kind == "surrogate" else "exact",
            )
    else:
        if not args.space:
            raise ValueError(
                "search needs a spec file (see examples/experiments/"
                "search_b.json) or --space"
            )
        strategy = StrategySpec(**{"kind": "evolutionary", **overrides})
        spec = SearchSpec(
            space=resolve_space(args.space),
            strategy=strategy,
            name=f"search-{args.space}",
            networks=tuple(args.network) if args.network else None,
            fidelity="multi" if strategy.kind == "surrogate" else "exact",
        )
    if args.fidelity == "exact" and spec.strategy.kind == "surrogate":
        raise ValueError(
            "--fidelity exact needs an exact strategy; add --strategy "
            "exhaustive, random, or evolutionary"
        )
    quick = True if args.quick else (False if args.full else None)

    session = _session(args)
    result = session.search(
        spec,
        quick=quick,
        checkpoint=args.checkpoint,
        resume=args.resume,
        surrogate=args.surrogate_path,
    )

    print(result.space.describe())
    print(f"strategy: {result.strategy}")
    print(result.table())
    star = result.optimal()
    objectives = " x ".join(result.objectives.names)
    print(f"optimal point ({objectives}): {star.label}")
    # CI greps this coverage line -- keep the prefix stable.
    print(
        f"evaluated {len(result.archive)} of {result.grid_size} feasible "
        f"configs ({100.0 * len(result.archive) / max(1, result.grid_size):.1f}%) "
        f"in {result.outcome.batches} batches"
        + (f", {result.outcome.reused} answered from checkpoint"
           if result.outcome.reused else "")
    )
    if result.fidelity == "multi":
        # CI greps this line too -- keep the prefix stable.
        print(
            f"surrogate screened {result.screened} configs; "
            f"{result.evaluated} exact evaluations confirmed the shortlist"
        )
    if args.checkpoint:
        print(f"archive checkpoint: {args.checkpoint}")
    print(_cache_line(result.cache_stats, session))
    if getattr(args, "metrics", False):
        _print_metrics(
            result.cache_stats,
            {"design_points": result.evaluated, "workers": result.workers},
        )

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def cmd_surrogate(args: argparse.Namespace) -> int:
    return args.surrogate_func(args)


def cmd_surrogate_fit(args: argparse.Namespace) -> int:
    from repro.surrogate import REGIME_OPTIONS, save_constants, summary_lines

    regimes = None
    if args.regime:
        regimes = {name: REGIME_OPTIONS[name] for name in args.regime}
    session = _session(args)
    with session:
        constants = session.calibrate(
            spaces=args.space or None,
            networks=args.network or None,
            regimes=regimes,
        )
    for line in summary_lines(constants):
        print(line)
    path = save_constants(constants, args.out)
    print(f"wrote fitted surrogate constants to {path}")
    print(_cache_line(session.stats, session))
    return 0


def cmd_surrogate_check(args: argparse.Namespace) -> int:
    from repro.surrogate import check_constants, load_constants

    constants = load_constants(args.constants)
    for line in check_constants(constants):
        print(line)
    print("surrogate error budget: OK")
    return 0


def cmd_workloads_list(args: argparse.Namespace) -> int:
    records = [workload.describe() for workload in WORKLOADS]
    rows = [
        {
            "Workload": record["name"],
            "Layers": record["layers"],
            "MACs": f"{record['macs'] / 1e9:.2f}G",
            "W-sparsity": f"{record['weight_sparsity']:.0%}",
            "A-sparsity": f"{record['act_sparsity']:.0%}",
            "Fingerprint": record["fingerprint"][:12],
        }
        for record in records
    ]
    print(format_table(rows, title=f"workload registry ({len(rows)} entries)"))
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(records, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def cmd_workloads_validate(args: argparse.Namespace) -> int:
    """Validate WorkloadSpec JSON files: parse, round-trip, build, fingerprint."""
    failures = 0
    for path in args.paths:
        try:
            spec = WorkloadSpec.load(path)
            round_tripped = WorkloadSpec.from_dict(spec.to_dict())
            if round_tripped != spec:
                raise ValueError(
                    "spec does not round-trip through to_dict/from_dict"
                )
            workload = spec.build()
            fingerprint = workload.fingerprint
            if spec.build().fingerprint != fingerprint:
                raise ValueError("fingerprint is not a pure function of the spec")
        except (ValueError, OSError) as exc:
            failures += 1
            print(f"FAIL  {path}: {exc}", file=sys.stderr)
            continue
        network = workload.network
        print(
            f"ok    {path}: {workload.name} ({len(network.layers)} layers, "
            f"{network.macs / 1e9:.2f}G MACs, "
            f"W {workload.weight_sparsity:.0%} / A {workload.act_sparsity:.0%}) "
            f"fingerprint {fingerprint[:12]}"
        )
    if failures:
        print(f"{failures} of {len(args.paths)} spec(s) failed", file=sys.stderr)
        return 2
    print(f"all {len(args.paths)} spec(s) valid")
    return 0


def cmd_workloads_fingerprint(args: argparse.Namespace) -> int:
    for token in args.tokens:
        workload = parse_workload(token)
        print(f"{workload.fingerprint}  {workload.name}")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    return args.wl_func(args)


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Human report of a recorded trace: critical path, top spans, cache."""
    meta, spans = read_trace(args.path)
    summary = summarize(spans, meta)
    print(render_summary(summary, top_n=args.top))
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    """Convert a trace to Chrome trace-event JSON (Perfetto-loadable)."""
    if not args.chrome:
        raise ValueError(
            "trace export needs an output format; the only one today is "
            "--chrome (Chrome trace-event JSON, loadable in Perfetto)"
        )
    meta, spans = read_trace(args.path)
    document = chrome_trace(spans, meta=meta)
    validate_chrome_trace(document)
    out = args.out or (args.path + ".chrome.json")
    with open(out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    print(f"wrote {out} ({len(document['traceEvents'])} events)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    return args.trace_func(args)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on evaluation service until SIGINT/SIGTERM."""
    import asyncio

    from repro.serve.app import ServeApp

    session = Session(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        keep_pool=True,
    )
    app = ServeApp(
        session,
        compute_threads=args.compute_threads,
        drain_timeout=args.drain_timeout,
    )

    async def serve() -> None:
        await app.start(args.host, args.port)
        print(
            f"repro serve v{__version__} listening on "
            f"http://{args.host}:{app.port} "
            f"(workers={args.workers}, compute_threads={args.compute_threads}, "
            f"cache={'disabled' if session.cache_dir is None else session.cache_dir})",
            flush=True,
        )
        app.install_signal_handlers()
        try:
            await app.wait_for_shutdown_request()
            print("repro serve: draining in-flight work...", flush=True)
        finally:
            await app.shutdown()
            print("repro serve: stopped", flush=True)

    asyncio.run(serve())
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static invariant checker (or refresh the key manifest)."""
    from repro.lint import default_root, refresh_manifest, run_lint

    root = default_root()
    paths = list(args.paths)
    if paths and paths[0] == "refresh-manifest":
        if len(paths) > 1 or args.rules:
            raise ValueError(
                "`repro lint refresh-manifest` takes no paths or --rule flags"
            )
        manifest = refresh_manifest(root)
        versions = ", ".join(
            f"{name}={entry['key_version']}"
            for name, entry in sorted(manifest["entries"].items())
        )
        print(f"refreshed src/repro/lint/key_manifest.json ({versions})")
        return 0

    codes = {code.upper() for code in args.rules} if args.rules else None
    report = run_lint(root, paths=paths or None, codes=codes)
    if args.json:
        if report.clean:
            payload: dict = report.as_dict()
        else:
            payload = error_envelope(
                "lint-findings",
                f"{len(report.findings)} lint finding(s)",
                detail=report.as_dict(),
            )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
        print(
            f"repro lint: {status} "
            f"({report.files_checked} files, {report.waived} waived)"
        )
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Griffin (HPCA 2022) reproduction toolkit"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--json-errors", dest="json_errors", action="store_true",
        help="report failures as the JSON error envelope (the same shape "
             "`repro serve` returns) instead of a one-line stderr message",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--passes", type=int, default=4, help="tiles sampled per GEMM")
        p.add_argument("--max-t", dest="max_t", type=int, default=96)
        p.add_argument("--seed", type=int, default=2022)

    def cache_flags(p: argparse.ArgumentParser, stats_flag: bool = True) -> None:
        p.add_argument(
            "--cache-dir", dest="cache_dir", default=None,
            help="persistent cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        p.add_argument(
            "--no-cache", action="store_true", help="disable the persistent cache"
        )
        if stats_flag:
            p.add_argument(
                "--cache-stats", dest="cache_stats", action="store_true",
                help="print persistent-cache hit/miss statistics",
            )

    def obs_flags(p: argparse.ArgumentParser, metrics: bool = True) -> None:
        p.add_argument(
            "--trace", dest="trace_path", default=None, metavar="PATH",
            help="record a span trace of this command to PATH (JSONL; "
                 "inspect with `repro trace summarize`)",
        )
        if metrics:
            p.add_argument(
                "--metrics", action="store_true",
                help="dump run metrics as Prometheus text after the output",
            )

    workload_help = (
        f"workload token: a registry name ({', '.join(benchmark_names())}), "
        f'a name:override derivation (e.g. "BERT:weight_sparsity=0.9"), '
        f"or a WorkloadSpec JSON path"
    )

    sim = sub.add_parser("simulate", help="cycle-simulate one network on one design")
    sim.add_argument(
        "--arch", required=True,
        help='e.g. "B(4,0,1,on)", Dense, Griffin, Sparse.B*, or a baseline name',
    )
    sim.add_argument("--network", required=True, help=workload_help)
    sim.add_argument("--category", type=_category, default=ModelCategory.B)
    sim.add_argument("--layers", action="store_true", help="print per-layer table")
    cache_flags(sim)
    common(sim)
    sim.set_defaults(func=cmd_simulate)

    cost = sub.add_parser("cost", help="print a design's power/area breakdown")
    cost.add_argument(
        "--arch", required=True, help='notation, "Griffin", or a baseline name'
    )
    cost.set_defaults(func=cmd_cost)

    cmp_ = sub.add_parser("compare", help="efficiency table for several designs")
    cmp_.add_argument("--arch", action="append", required=True)
    cmp_.add_argument("--category", type=_category, default=ModelCategory.B)
    cmp_.add_argument("--full", action="store_true", help="use the full 6-net suite")
    cmp_.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 evaluates serially in-process",
    )
    cache_flags(cmp_)
    common(cmp_)
    cmp_.set_defaults(func=cmd_compare)

    sweep = sub.add_parser(
        "sweep",
        help="evaluate a design space in parallel with the persistent cache",
    )
    sweep.add_argument(
        "--space", choices=sorted(DESIGN_SPACES), default="b",
        help="which Fig. 5-7 space to sweep",
    )
    sweep.add_argument(
        "--category", type=_category, action="append",
        help="categories to evaluate (default: the space's sparse one + DNN.dense)",
    )
    sweep.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 evaluates serially in-process",
    )
    sweep.add_argument("--full", action="store_true", help="use the full 6-net suite")
    sweep.add_argument(
        "--quick", action="store_true",
        help="smoke mode: minimal sampling, BERT+AlexNet suite (overrides --passes/--max-t)",
    )
    sweep.add_argument(
        "--network", action="append",
        help=f"restrict the suite to these workloads ({workload_help})",
    )
    sweep.add_argument(
        "--limit", type=int, default=0, help="evaluate only the first N design points"
    )
    cache_flags(sweep, stats_flag=False)
    obs_flags(sweep)
    sweep.add_argument(
        "--json", dest="json_path", default=None,
        help="also write the figure-ready rows to this JSON file",
    )
    sweep.add_argument(
        "--progress", action="store_true", help="report progress on stderr"
    )
    common(sweep)
    sweep.set_defaults(func=cmd_sweep)

    run_ = sub.add_parser(
        "run", help="run a declarative experiment spec (JSON) through the session"
    )
    run_.add_argument(
        "spec", help="path to an experiment JSON (see examples/experiments/)"
    )
    run_.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 evaluates serially in-process",
    )
    run_.add_argument(
        "--quick", action="store_true",
        help="smoke sampling override (1 pass per GEMM, 16 time steps)",
    )
    cache_flags(run_, stats_flag=False)
    obs_flags(run_)
    run_.add_argument(
        "--json", dest="json_path", default=None,
        help="also write the figure-ready rows to this JSON file",
    )
    run_.add_argument(
        "--progress", action="store_true", help="report progress on stderr"
    )
    run_.set_defaults(func=cmd_run)

    search = sub.add_parser(
        "search",
        help="guided design-space search (constraints, strategies, Pareto "
             "archive) through the session runtime",
    )
    search.add_argument(
        "spec", nargs="?", default=None,
        help="path to a search spec JSON (see examples/experiments/"
             "search_b.json); omit to describe the search with flags",
    )
    search.add_argument(
        "--space", choices=sorted(PAPER_SPACE_NAMES), default=None,
        help="paper space preset to search when no spec file is given",
    )
    search.add_argument(
        "--strategy", choices=sorted(STRATEGY_KINDS), default=None,
        help="search strategy (default: evolutionary; overrides a spec "
             "file's strategy when given)",
    )
    search.add_argument(
        "--budget", type=int, default=None,
        help="evaluation budget (required for random/evolutionary)",
    )
    search.add_argument(
        "--seed", type=int, default=None,
        help="strategy seed (deterministic; default 2022, or the spec's)",
    )
    search.add_argument(
        "--population", type=int, default=None,
        help="evolutionary generation-zero population size "
             "(default 8, or the spec's)",
    )
    search.add_argument(
        "--fidelity", choices=sorted(FIDELITY_KINDS), default=None,
        help="evaluation fidelity: 'multi' screens the whole space with the "
             "calibrated surrogate and exact-confirms only the predicted "
             "shortlist (same choice as --strategy surrogate)",
    )
    search.add_argument(
        "--surrogate", dest="surrogate_path", default=None,
        help="fitted surrogate constants for multi-fidelity runs "
             "(default: the committed golden)",
    )
    search.add_argument(
        "--network", action="append",
        help=f"restrict the evaluation suite to these workloads (flag mode; "
             f"{workload_help})",
    )
    search.add_argument(
        "--quick", action="store_true",
        help="smoke sampling override (1 pass per GEMM, 16 time steps)",
    )
    search.add_argument(
        "--full", action="store_true", help="force the full six-network suite"
    )
    search.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 evaluates serially in-process",
    )
    search.add_argument(
        "--checkpoint", default=None,
        help="JSON file the Pareto archive is saved to after every batch",
    )
    search.add_argument(
        "--resume", action="store_true",
        help="seed the archive from --checkpoint if it exists "
             "(recorded designs are not re-evaluated)",
    )
    cache_flags(search, stats_flag=False)
    obs_flags(search)
    search.add_argument(
        "--json", dest="json_path", default=None,
        help="also write the archive/front payload to this JSON file",
    )
    search.add_argument(
        "--progress", action="store_true", help="report progress on stderr"
    )
    search.set_defaults(func=cmd_search)

    wl = sub.add_parser(
        "workloads",
        help="list the workload registry, validate WorkloadSpec JSON files, "
             "or print content fingerprints",
    )
    wl_sub = wl.add_subparsers(dest="wl_command", required=True)
    wl_list = wl_sub.add_parser(
        "list", help="table of every registered workload with its fingerprint"
    )
    wl_list.add_argument(
        "--json", dest="json_path", default=None,
        help="also write the registry rows to this JSON file",
    )
    wl_list.set_defaults(func=cmd_workloads, wl_func=cmd_workloads_list)
    wl_validate = wl_sub.add_parser(
        "validate",
        help="parse, round-trip, and build WorkloadSpec JSON files "
             "(exit 2 on any failure)",
    )
    wl_validate.add_argument(
        "paths", nargs="+", help="WorkloadSpec JSON files to validate"
    )
    wl_validate.set_defaults(func=cmd_workloads, wl_func=cmd_workloads_validate)
    wl_fp = wl_sub.add_parser(
        "fingerprint",
        help="print the stable content fingerprint of workload tokens",
    )
    wl_fp.add_argument(
        "tokens", nargs="+", metavar="token",
        help="workload tokens (names, name:override, or spec paths)",
    )
    wl_fp.set_defaults(func=cmd_workloads, wl_func=cmd_workloads_fingerprint)

    surrogate = sub.add_parser(
        "surrogate",
        help="calibrated analytical surrogate: fit constants against exact "
             "cached results or verify the committed golden's error budget "
             "(docs/surrogate.md)",
    )
    sur_sub = surrogate.add_subparsers(dest="surrogate_command", required=True)
    sur_fit = sur_sub.add_parser(
        "fit",
        help="build the calibration corpus through the session (warm cache "
             "entries are read back, missing ones simulated) and fit the "
             "correction constants deterministically",
    )
    sur_fit.add_argument(
        "--space", action="append", choices=sorted(PAPER_SPACE_NAMES),
        help="restrict the corpus to these paper spaces (default: all)",
    )
    sur_fit.add_argument(
        "--network", action="append",
        help="restrict the corpus to these Table IV workloads by name "
             "(default: the full suite)",
    )
    sur_fit.add_argument(
        "--regime", action="append", choices=["default", "quick"],
        help="restrict the corpus to these sampling regimes (default: both)",
    )
    sur_fit.add_argument(
        "--out", default=None,
        help="constants file to write (default: the committed golden)",
    )
    sur_fit.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 evaluates serially in-process",
    )
    cache_flags(sur_fit, stats_flag=False)
    sur_fit.add_argument(
        "--progress", action="store_true", help="report progress on stderr"
    )
    sur_fit.set_defaults(func=cmd_surrogate, surrogate_func=cmd_surrogate_fit)
    sur_check = sur_sub.add_parser(
        "check",
        help="re-derive every recorded calibration error from the fitted "
             "constants (no simulation) and enforce the error budget "
             "(exit 2 on breach or on stale constants)",
    )
    sur_check.add_argument(
        "--constants", default=None,
        help="constants file to verify (default: the committed golden)",
    )
    sur_check.set_defaults(
        func=cmd_surrogate, surrogate_func=cmd_surrogate_check
    )

    serve = sub.add_parser(
        "serve",
        help="always-on evaluation service: one warm session behind an "
             "HTTP+JSON API with request coalescing (docs/serve.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8757,
        help="TCP port (default 8757; 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="session worker processes; 0 evaluates serially in-process",
    )
    serve.add_argument(
        "--compute-threads", dest="compute_threads", type=int, default=4,
        help="evaluation requests served concurrently (default 4)",
    )
    serve.add_argument(
        "--drain-timeout", dest="drain_timeout", type=float, default=30.0,
        help="seconds graceful shutdown waits for in-flight work (default 30)",
    )
    cache_flags(serve, stats_flag=False)
    obs_flags(serve, metrics=False)
    serve.set_defaults(func=cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="inspect a recorded span trace: summarize it or export Chrome "
             "trace-event JSON (docs/observability.md)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_sum = trace_sub.add_parser(
        "summarize",
        help="print the critical path, top spans by self time, and the "
             "cache-span breakdown of a trace",
    )
    trace_sum.add_argument("path", help="trace file (JSONL or Chrome JSON)")
    trace_sum.add_argument(
        "--top", type=int, default=10, help="rows in the top-spans table"
    )
    trace_sum.add_argument(
        "--json", dest="json_path", default=None,
        help="also write the summary payload to this JSON file",
    )
    trace_sum.set_defaults(func=cmd_trace, trace_func=cmd_trace_summarize)
    trace_exp = trace_sub.add_parser(
        "export",
        help="convert a JSONL trace to another format (only --chrome today)",
    )
    trace_exp.add_argument("path", help="trace file (JSONL)")
    trace_exp.add_argument(
        "--chrome", action="store_true",
        help="write Chrome trace-event JSON (load in Perfetto or "
             "chrome://tracing)",
    )
    trace_exp.add_argument(
        "--out", default=None,
        help="output path (default: <trace>.chrome.json)",
    )
    trace_exp.set_defaults(func=cmd_trace, trace_func=cmd_trace_export)

    lint = sub.add_parser(
        "lint",
        help="run the AST-based invariant checker (determinism, key-version "
             "drift, lock hygiene -- docs/lint.md); `repro lint "
             "refresh-manifest` re-records the key manifest",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the whole src/ tree); "
             "the special first token `refresh-manifest` recomputes "
             "src/repro/lint/key_manifest.json instead",
    )
    lint.add_argument(
        "--rule", dest="rules", action="append", default=[], metavar="CODE",
        help="restrict to one rule code (repeatable), e.g. --rule DET001",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit machine-readable findings (the repro.errors envelope "
             "with the full report as detail; plain report when clean)",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace_path", None)
    tracer = obs_trace.Tracer() if trace_path else None
    previous = obs_trace.set_tracer(tracer) if tracer is not None else None
    try:
        # The error envelope is built inside this block, while the tracer is
        # still installed, so a traced failure carries its trace_id.
        try:
            return args.func(args)
        except (ValueError, OSError) as exc:
            print_error(
                envelope_from_exception(exc),
                as_json=getattr(args, "json_errors", False),
            )
            return 2
    finally:
        if tracer is not None:
            obs_trace.set_tracer(previous)
            count = write_trace(
                tracer, trace_path, meta={"command": args.command}
            )
            # stderr: stdout stays exactly what an untraced run prints.
            print(
                f"wrote trace {trace_path} ({count} spans, "
                f"trace id {tracer.trace_id})",
                file=sys.stderr,
            )


if __name__ == "__main__":
    raise SystemExit(main())
