"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the everyday questions:

* ``simulate`` -- run one architecture on one benchmark and category;
* ``cost``     -- print the Table VII-style breakdown of a design;
* ``compare``  -- effective-efficiency table of several designs on one
  category (a one-line slice of Fig. 8);
* ``sweep``    -- evaluate a whole design space (Figs. 5-7) in parallel
  worker processes, backed by the persistent layer-result cache, and print
  a figure-ready table plus the starred optimal point.

Examples::

    python -m repro simulate --arch "B(4,0,1,on)" --network ResNet50 --category DNN.B
    python -m repro cost --arch "AB(2,0,0,2,0,1,on)"
    python -m repro compare --category DNN.B --arch Dense --arch "B(4,0,1,on)" --arch Griffin
    python -m repro sweep --space b --workers 4
    python -m repro sweep --space ab --quick --json fig7.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.config import GRIFFIN, ArchConfig, ModelCategory, parse_notation
from repro.core.metrics import effective_tops_per_mm2, effective_tops_per_watt
from repro.dse.evaluate import EvalSettings, category_speedup
from repro.dse.explorer import DESIGN_SPACES, design_space, space_categories, space_label
from repro.dse.report import format_table, select_optimal, sweep_rows, sweep_table
from repro.hw.cost import cost_of, gated_power_mw, griffin_category_power_mw, griffin_cost
from repro.runtime import SweepRunner
from repro.sim.engine import SimulationOptions, simulate_network
from repro.workloads.registry import benchmark, benchmark_names


def _category(text: str) -> ModelCategory:
    for category in ModelCategory:
        if category.value.lower() == text.lower() or category.name.lower() == text.lower():
            return category
    raise argparse.ArgumentTypeError(
        f"unknown category {text!r}; choose from {[c.value for c in ModelCategory]}"
    )


def _options(args: argparse.Namespace) -> SimulationOptions:
    return SimulationOptions(
        passes_per_gemm=args.passes, max_t_steps=args.max_t, seed=args.seed
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    config = parse_notation(args.arch)
    net = benchmark(args.network).network
    result = simulate_network(net, config, args.category, _options(args))
    print(f"{net.name} on {config.label} ({args.category.value}):")
    print(f"  dense cycles : {result.dense_cycles:,}")
    print(f"  cycles       : {result.cycles:,.0f}")
    print(f"  speedup      : {result.speedup:.3f}x")
    if args.layers:
        rows = [
            {
                "Layer": layer.name,
                "Cycles": f"{layer.cycles:.3g}",
                "Share%": 100 * layer.dense_cycles / result.dense_cycles,
                "Speedup": layer.speedup,
            }
            for layer in result.layers
        ]
        print(format_table(rows))
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    if args.arch.lower() == "griffin":
        row = griffin_cost(GRIFFIN)
    else:
        row = cost_of(parse_notation(args.arch))
    print(f"{row.label}: {row.total_power_mw:.1f} mW, {row.total_area_kum2:.1f} k um^2")
    print(format_table([
        {"Component": k, "Power (mW)": round(p, 2), "Area (k um^2)": round(a, 2)}
        for (k, p), a in zip(row.power_row().items(), row.area_row().values())
    ]))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    settings = EvalSettings(quick=not args.full, options=_options(args))
    rows = []
    for name in args.arch:
        if name.lower() == "griffin":
            config: ArchConfig = GRIFFIN.config_for(args.category)
            cost = griffin_cost(GRIFFIN)
            power = griffin_category_power_mw(GRIFFIN, cost, args.category)
            label = "Griffin"
        else:
            config = parse_notation(name)
            cost = cost_of(config)
            power = gated_power_mw(cost, config, args.category)
            label = config.label
        speedup = category_speedup(config, args.category, settings)
        rows.append(
            {
                "Architecture": label,
                "Speedup": speedup,
                "Power (mW)": round(power, 1),
                "TOPS/W": effective_tops_per_watt(speedup, power),
                "TOPS/mm2": effective_tops_per_mm2(speedup, cost.total_area_um2),
            }
        )
    print(format_table(rows, title=f"{args.category.value} comparison"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    configs = design_space(args.space)
    if args.limit:
        configs = configs[: args.limit]
    sparse_cat, dense_cat = space_categories(args.space)
    categories = tuple(args.category) if args.category else (sparse_cat, dense_cat)

    if args.quick:
        options = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=args.seed)
        networks = tuple(args.network) if args.network else ("BERT", "AlexNet")
    else:
        options = _options(args)
        networks = tuple(args.network) if args.network else None
    settings = EvalSettings(quick=not args.full, options=options, networks=networks)

    def progress(done: int, total: int) -> None:
        print(f"  evaluated {done}/{total} design points", file=sys.stderr)

    runner = SweepRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=progress if args.progress else None,
    )
    outcome = runner.run(configs, categories, settings)

    title = (
        f"{space_label(args.space)} sweep: {len(outcome)} design points, "
        f"categories {[c.value for c in categories]}"
    )
    print(sweep_table(outcome.evaluations, categories, title=title))

    if sparse_cat in categories and dense_cat in categories and outcome.evaluations:
        star = select_optimal(outcome.evaluations, sparse_cat, dense_cat)
        print(f"optimal point ({sparse_cat.value} vs {dense_cat.value}): {star.label}")

    stats = outcome.cache_stats
    if args.no_cache:
        print("persistent cache: disabled")
    else:
        print(
            f"persistent cache: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.puts} puts ({100.0 * stats.hit_rate:.1f}% hit rate) "
            f"[{runner.cache_dir}]"
        )

    if args.json_path:
        payload = {
            "space": args.space,
            "categories": [c.value for c in categories],
            "workers": outcome.workers,
            "rows": sweep_rows(outcome.evaluations, categories),
            "cache": stats.as_dict(),
        }
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Griffin (HPCA 2022) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--passes", type=int, default=4, help="tiles sampled per GEMM")
        p.add_argument("--max-t", dest="max_t", type=int, default=96)
        p.add_argument("--seed", type=int, default=2022)

    sim = sub.add_parser("simulate", help="cycle-simulate one network on one design")
    sim.add_argument("--arch", required=True, help='e.g. "B(4,0,1,on)" or Dense')
    sim.add_argument("--network", required=True, choices=benchmark_names())
    sim.add_argument("--category", type=_category, default=ModelCategory.B)
    sim.add_argument("--layers", action="store_true", help="print per-layer table")
    common(sim)
    sim.set_defaults(func=cmd_simulate)

    cost = sub.add_parser("cost", help="print a design's power/area breakdown")
    cost.add_argument("--arch", required=True, help='notation or "Griffin"')
    cost.set_defaults(func=cmd_cost)

    cmp_ = sub.add_parser("compare", help="efficiency table for several designs")
    cmp_.add_argument("--arch", action="append", required=True)
    cmp_.add_argument("--category", type=_category, default=ModelCategory.B)
    cmp_.add_argument("--full", action="store_true", help="use the full 6-net suite")
    common(cmp_)
    cmp_.set_defaults(func=cmd_compare)

    sweep = sub.add_parser(
        "sweep",
        help="evaluate a design space in parallel with the persistent cache",
    )
    sweep.add_argument(
        "--space", choices=sorted(DESIGN_SPACES), default="b",
        help="which Fig. 5-7 space to sweep",
    )
    sweep.add_argument(
        "--category", type=_category, action="append",
        help="categories to evaluate (default: the space's sparse one + DNN.dense)",
    )
    sweep.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 evaluates serially in-process",
    )
    sweep.add_argument("--full", action="store_true", help="use the full 6-net suite")
    sweep.add_argument(
        "--quick", action="store_true",
        help="smoke mode: minimal sampling, BERT+AlexNet suite (overrides --passes/--max-t)",
    )
    sweep.add_argument(
        "--network", action="append", choices=benchmark_names(),
        help="restrict the suite to these benchmarks",
    )
    sweep.add_argument(
        "--limit", type=int, default=0, help="evaluate only the first N design points"
    )
    sweep.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="persistent cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the persistent cache"
    )
    sweep.add_argument(
        "--json", dest="json_path", default=None,
        help="also write the figure-ready rows to this JSON file",
    )
    sweep.add_argument(
        "--progress", action="store_true", help="report progress on stderr"
    )
    common(sweep)
    sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
