"""Search objectives: what "better" means for a design point.

An :class:`Objective` names one maximized metric of a
:class:`~repro.dse.evaluate.DesignEvaluation` -- effective TOPS/W,
TOPS/mm^2, or raw speedup on one model category.  An :class:`ObjectiveSet`
turns an evaluation into the score vector the Pareto machinery ranks, and
collapses a vector to the paper's scalar compromise rule (the *product* of
the scores, the same scale-free rule
:func:`repro.dse.report.select_optimal` applies to pick the Table VI
starred points).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.config import ModelCategory
from repro.dse.evaluate import DesignEvaluation

#: Metrics an objective may maximize.
METRICS = ("tops_per_watt", "tops_per_mm2", "speedup")


@dataclass(frozen=True)
class Objective:
    """Maximize one efficiency metric on one model category."""

    category: ModelCategory
    metric: str = "tops_per_watt"

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown objective metric {self.metric!r}; "
                f"choose from {list(METRICS)}"
            )

    @property
    def name(self) -> str:
        return f"{self.category.value}:{self.metric}"

    def value(self, evaluation: DesignEvaluation) -> float:
        return getattr(evaluation.point(self.category), self.metric)

    def to_dict(self) -> dict:
        return {"category": self.category.value, "metric": self.metric}

    @staticmethod
    def from_dict(data: Mapping) -> "Objective":
        unknown = set(data) - {"category", "metric"}
        if unknown:
            raise ValueError(
                f"unknown objective keys {sorted(unknown)}; "
                f"accepted: ['category', 'metric']"
            )
        if "category" not in data:
            raise ValueError("objective needs a 'category'")
        return Objective(
            category=ModelCategory.from_text(str(data["category"])),
            metric=str(data.get("metric", "tops_per_watt")),
        )


@dataclass(frozen=True)
class ObjectiveSet:
    """The (ordered) objectives of one search run, all maximized."""

    objectives: tuple[Objective, ...]

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("a search needs at least one objective")

    def __len__(self) -> int:
        return len(self.objectives)

    def __iter__(self):
        return iter(self.objectives)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(obj.name for obj in self.objectives)

    @property
    def categories(self) -> tuple[ModelCategory, ...]:
        """The distinct categories the objectives need, in first-use order."""
        return tuple(dict.fromkeys(obj.category for obj in self.objectives))

    def scores(self, evaluation: DesignEvaluation) -> tuple[float, ...]:
        """The evaluation's score vector, in objective order."""
        return tuple(obj.value(evaluation) for obj in self.objectives)

    def scalar(self, scores: Sequence[float]) -> float:
        """The paper's compromise rule: the product of the scores.

        This is the rule behind the Table VI starred points ("high TOPS/W
        on the sparse category with minimal efficiency loss on dense"),
        generalized to any objective count.
        """
        return math.prod(scores)

    def to_dicts(self) -> list[dict]:
        return [obj.to_dict() for obj in self.objectives]

    @staticmethod
    def from_dicts(data: Sequence[Mapping]) -> "ObjectiveSet":
        return ObjectiveSet(tuple(Objective.from_dict(item) for item in data))

    @staticmethod
    def for_category(sparse: ModelCategory) -> "ObjectiveSet":
        """The paper's default pair: sparse-category and dense TOPS/W."""
        if sparse is ModelCategory.DENSE:
            return ObjectiveSet((Objective(ModelCategory.DENSE),))
        return ObjectiveSet(
            (Objective(sparse), Objective(ModelCategory.DENSE))
        )
