"""Declarative design spaces for guided search: domains + constraints.

A :class:`SearchSpace` names the finite domain of every borrowing
distance (``da1..da3``, ``db1..db3``) and the shuffle flag, plus a list of
composable feasibility :class:`Constraint` objects -- the mux fan-in caps
the paper uses to bound its sweeps (larger MUXes "severely impact power
efficiency"), area/energy budgets priced by :mod:`repro.hw.cost`, or
arbitrary predicates.  The three paper spaces (Figs. 5-7) are instances
(:func:`paper_space`), so the guided-search machinery subsumes the legacy
hand-bounded grids in :mod:`repro.dse.explorer` -- which are now thin
wrappers over this module.

Enumeration order is the deterministic nested-loop order
``da1 -> da2 -> da3 -> db1 -> db2 -> db3 -> shuffle`` with each domain
iterated in its declared order; for the paper spaces this reproduces the
legacy explorer lists element for element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.config import ArchConfig, BorrowConfig, ModelCategory
from repro.core.overhead import overhead_of
from repro.hw.cost import cost_of


# ----------------------------------------------------------------------
# Constraints.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MaxAmuxFanin:
    """Cap the A-operand multiplexer fan-in (the Fig. 5/7 bound)."""

    limit: int

    def __call__(self, config: ArchConfig) -> bool:
        return overhead_of(config).amux_fanin <= self.limit

    def describe(self) -> str:
        return f"AMUX fan-in <= {self.limit}"


@dataclass(frozen=True)
class MaxBmuxFanin:
    """Cap the B-operand multiplexer fan-in."""

    limit: int

    def __call__(self, config: ArchConfig) -> bool:
        return overhead_of(config).bmux_fanin <= self.limit

    def describe(self) -> str:
        return f"BMUX fan-in <= {self.limit}"


@dataclass(frozen=True)
class MaxMuxFanin:
    """Cap both operand-mux fan-ins at once (the Fig. 6 bound)."""

    limit: int

    def __call__(self, config: ArchConfig) -> bool:
        ovh = overhead_of(config)
        return max(ovh.amux_fanin, ovh.bmux_fanin) <= self.limit

    def describe(self) -> str:
        return f"AMUX and BMUX fan-in <= {self.limit}"


@dataclass(frozen=True)
class AreaBudget:
    """Reject designs whose Table VII-style area exceeds a budget (k um^2)."""

    max_kum2: float

    def __call__(self, config: ArchConfig) -> bool:
        return cost_of(config).total_area_kum2 <= self.max_kum2

    def describe(self) -> str:
        return f"area <= {self.max_kum2:g} k um^2"


@dataclass(frozen=True)
class PowerBudget:
    """Reject designs whose sparse operating power exceeds a budget (mW)."""

    max_mw: float

    def __call__(self, config: ArchConfig) -> bool:
        return cost_of(config).total_power_mw <= self.max_mw

    def describe(self) -> str:
        return f"power <= {self.max_mw:g} mW"


@dataclass(frozen=True)
class Predicate:
    """An arbitrary feasibility predicate with a human-readable label."""

    fn: Callable[[ArchConfig], bool]
    label: str = "custom predicate"

    def __call__(self, config: ArchConfig) -> bool:
        return self.fn(config)

    def describe(self) -> str:
        return self.label


#: Anything usable as a feasibility constraint: callable on an
#: :class:`ArchConfig`, with an optional ``describe()`` for reports.
Constraint = Callable[[ArchConfig], bool]


#: JSON constraint keys accepted by :meth:`SearchSpace.from_dict`.
_CONSTRAINT_KEYS: dict[str, Callable[[float], Constraint]] = {
    "max_amux_fanin": lambda v: MaxAmuxFanin(int(v)),
    "max_bmux_fanin": lambda v: MaxBmuxFanin(int(v)),
    "max_fanin": lambda v: MaxMuxFanin(int(v)),
    "max_area_kum2": lambda v: AreaBudget(float(v)),
    "max_power_mw": lambda v: PowerBudget(float(v)),
}

_DOMAIN_KEYS = ("da1", "da2", "da3", "db1", "db2", "db3")


# ----------------------------------------------------------------------
# The space itself.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SearchSpace:
    """A finite, constrained design space over borrowing configurations.

    Each distance field holds the tuple of values that dimension may take
    (in iteration order); ``shuffle`` the allowed flag settings.  A config
    is *feasible* when every constraint accepts it.  Spaces are frozen and
    hashable, so they can parameterize strategies and specs directly.
    """

    name: str = "custom"
    da1: tuple[int, ...] = (0,)
    da2: tuple[int, ...] = (0,)
    da3: tuple[int, ...] = (0,)
    db1: tuple[int, ...] = (0,)
    db2: tuple[int, ...] = (0,)
    db3: tuple[int, ...] = (0,)
    shuffle: tuple[bool, ...] = (False, True)
    constraints: tuple[Constraint, ...] = ()

    def __post_init__(self) -> None:
        for key in _DOMAIN_KEYS:
            domain = getattr(self, key)
            if not domain:
                raise ValueError(f"domain {key} must not be empty")
            if len(set(domain)) != len(domain):
                raise ValueError(f"domain {key} has duplicate values: {domain}")
            if any(not isinstance(v, int) or isinstance(v, bool) or v < 0
                   for v in domain):
                raise ValueError(
                    f"domain {key} must hold non-negative integers, got {domain}"
                )
        if not self.shuffle or len(set(self.shuffle)) != len(self.shuffle):
            raise ValueError(f"shuffle domain must be non-empty and unique, "
                             f"got {self.shuffle}")

    # -- enumeration ---------------------------------------------------

    @property
    def grid_size(self) -> int:
        """Number of raw grid points, before constraint filtering."""
        size = len(self.shuffle)
        for key in _DOMAIN_KEYS:
            size *= len(getattr(self, key))
        return size

    def feasible(self, config: ArchConfig) -> bool:
        """True when every constraint accepts the config."""
        return all(constraint(config) for constraint in self.constraints)

    def __iter__(self) -> Iterator[ArchConfig]:
        """Feasible configs in deterministic nested-loop order.

        Configs are deduplicated by :attr:`ArchConfig.notation` -- the
        design identity used by archives and strategies throughout the
        subsystem.  (The only grid points sharing a notation are the
        shuffle variants of the all-dense design, whose shuffler is vacuous
        -- it has no sparse operand path to balance -- so dropping the
        duplicate loses nothing.)
        """
        seen: set[str] = set()
        for da1 in self.da1:
            for da2 in self.da2:
                for da3 in self.da3:
                    for db1 in self.db1:
                        for db2 in self.db2:
                            for db3 in self.db3:
                                for shuffle in self.shuffle:
                                    config = ArchConfig(
                                        a=BorrowConfig(da1, da2, da3),
                                        b=BorrowConfig(db1, db2, db3),
                                        shuffle=shuffle,
                                    )
                                    if (
                                        config.notation not in seen
                                        and self.feasible(config)
                                    ):
                                        seen.add(config.notation)
                                        yield config

    def configs(self) -> list[ArchConfig]:
        """The feasible configs as a list (the exhaustive grid)."""
        return list(self)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __contains__(self, config: object) -> bool:
        if not isinstance(config, ArchConfig):
            return False
        return (
            config.a.d1 in self.da1
            and config.a.d2 in self.da2
            and config.a.d3 in self.da3
            and config.b.d1 in self.db1
            and config.b.d2 in self.db2
            and config.b.d3 in self.db3
            and config.shuffle in self.shuffle
            and self.feasible(config)
        )

    # -- category inference --------------------------------------------

    def default_category(self) -> ModelCategory:
        """The sparse model category this space targets.

        Inferred from which operand sides can borrow at all: a space whose
        ``db*`` domains allow borrowing targets weight sparsity, ``da*``
        activation sparsity, both the dual category.  An all-dense space
        (no borrowing anywhere) targets ``DNN.dense``.
        """
        a_side = any(max(getattr(self, k)) > 0 for k in ("da1", "da2", "da3"))
        b_side = any(max(getattr(self, k)) > 0 for k in ("db1", "db2", "db3"))
        return ModelCategory.from_sparsity(a_side, b_side)

    # -- mutation / sampling (seeded-deterministic) --------------------

    def sample(self, rng, k: int) -> list[ArchConfig]:
        """``k`` distinct feasible configs, deterministic in ``rng``."""
        pool = self.configs()
        if k >= len(pool):
            return pool
        return rng.sample(pool, k)

    def mutate(self, config: ArchConfig, rng) -> ArchConfig:
        """A feasible single-field mutation of ``config``.

        Picks one mutable field and moves it to an *adjacent* value in its
        declared domain (borrowing distances form a natural scale, so local
        steps preserve most of a parent's character; the boolean shuffle
        flag just flips).  Infeasible or identity steps are rejected and
        redrawn; if the neighbourhood is fully infeasible, falls back to a
        random feasible config so the search never stalls.
        """
        values = {
            "da1": config.a.d1, "da2": config.a.d2, "da3": config.a.d3,
            "db1": config.b.d1, "db2": config.b.d2, "db3": config.b.d3,
        }
        mutable = [k for k in _DOMAIN_KEYS if len(getattr(self, k)) > 1]
        if len(self.shuffle) > 1:
            mutable.append("shuffle")
        if not mutable:
            return config
        for _ in range(8 * len(mutable)):
            key = rng.choice(mutable)
            mutated = dict(values)
            flip = config.shuffle
            if key == "shuffle":
                flip = not config.shuffle
            else:
                domain = getattr(self, key)
                if values[key] not in domain:
                    continue  # parent from outside the space: try another field
                index = domain.index(values[key])
                step = rng.choice([-1, 1])
                mutated[key] = domain[max(0, min(len(domain) - 1, index + step))]
                if mutated[key] == values[key]:
                    continue
            candidate = ArchConfig(
                a=BorrowConfig(mutated["da1"], mutated["da2"], mutated["da3"]),
                b=BorrowConfig(mutated["db1"], mutated["db2"], mutated["db3"]),
                shuffle=flip,
            )
            if candidate != config and self.feasible(candidate):
                return candidate
        pool = [c for c in self if c != config]
        if not pool:
            return config
        return rng.choice(pool)

    # -- (de)serialization ---------------------------------------------

    def describe(self) -> str:
        """One-line summary for CLI headers and reports."""
        domains = ", ".join(
            f"{k}={list(getattr(self, k))}"
            for k in _DOMAIN_KEYS
            if getattr(self, k) != (0,)
        ) or "dense only"
        parts = [f"space {self.name!r}: {domains}, shuffle={list(self.shuffle)}"]
        for constraint in self.constraints:
            text = (
                constraint.describe()
                if hasattr(constraint, "describe")
                else repr(constraint)
            )
            parts.append(f"s.t. {text}")
        return "; ".join(parts)

    def to_dict(self) -> dict:
        """JSON form (named constraints only; predicates cannot serialize)."""
        payload: dict = {"name": self.name}
        for key in _DOMAIN_KEYS:
            if getattr(self, key) != (0,):
                payload[key] = list(getattr(self, key))
        payload["shuffle"] = list(self.shuffle)
        for constraint in self.constraints:
            if isinstance(constraint, MaxAmuxFanin):
                payload["max_amux_fanin"] = constraint.limit
            elif isinstance(constraint, MaxBmuxFanin):
                payload["max_bmux_fanin"] = constraint.limit
            elif isinstance(constraint, MaxMuxFanin):
                payload["max_fanin"] = constraint.limit
            elif isinstance(constraint, AreaBudget):
                payload["max_area_kum2"] = constraint.max_kum2
            elif isinstance(constraint, PowerBudget):
                payload["max_power_mw"] = constraint.max_mw
            else:
                raise ValueError(
                    f"constraint {constraint!r} cannot be serialized to JSON; "
                    f"use the named constraint keys {sorted(_CONSTRAINT_KEYS)}"
                )
        return payload

    @staticmethod
    def from_dict(data: Mapping) -> "SearchSpace":
        """Build a space from its JSON form (the ``SearchSpec`` shape).

        Accepted keys: ``name``, the six distance domains (``da1`` ...
        ``db3``, each a list of ints or a single int), ``shuffle`` (list of
        bools, a single bool, or omitted for both), and the named
        constraints ``max_amux_fanin`` / ``max_bmux_fanin`` / ``max_fanin``
        / ``max_area_kum2`` / ``max_power_mw``.
        """
        known = {"name", "shuffle", *_DOMAIN_KEYS, *_CONSTRAINT_KEYS}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown search-space keys {sorted(unknown)}; "
                f"accepted: {sorted(known)}"
            )

        def domain(value) -> tuple[int, ...]:
            if isinstance(value, int):
                return (value,)
            return tuple(int(v) for v in value)

        shuffle = data.get("shuffle")
        if shuffle is None:
            shuffle_domain: tuple[bool, ...] = (False, True)
        elif isinstance(shuffle, bool):
            shuffle_domain = (shuffle,)
        else:
            shuffle_domain = tuple(bool(v) for v in shuffle)
        constraints = tuple(
            build(data[key])
            for key, build in _CONSTRAINT_KEYS.items()
            if key in data
        )
        return SearchSpace(
            name=str(data.get("name", "custom")),
            **{key: domain(data[key]) for key in _DOMAIN_KEYS if key in data},
            shuffle=shuffle_domain,
            constraints=constraints,
        )


# ----------------------------------------------------------------------
# The paper's three spaces as instances.
# ----------------------------------------------------------------------


def paper_space(name: str) -> SearchSpace:
    """The Fig. 5/6/7 sweep space (``"b"`` / ``"a"`` / ``"ab"``) as a
    :class:`SearchSpace`; enumeration reproduces the legacy explorer lists
    exactly."""
    key = name.lower()
    if key == "b":
        # Fig. 5: weight-only, AMUX fan-in <= 8, db1 > 1 (the paper removes
        # db1 = 1 as far from the optimal points).
        return SearchSpace(
            name="b",
            db1=(2, 3, 4, 6),
            db2=(0, 1, 2),
            db3=(0, 1, 2),
            constraints=(MaxAmuxFanin(8),),
        )
    if key == "a":
        # Fig. 6: activation-only, both mux fan-ins <= 8.
        return SearchSpace(
            name="a",
            da1=(1, 2, 3, 4),
            da2=(0, 1, 2),
            da3=(0, 1, 2),
            constraints=(MaxMuxFanin(8),),
        )
    if key == "ab":
        # Fig. 7: dual-sparse, AMUX fan-in <= 16; da3 > 0 never reaches the
        # front (inflates the AMUX) and da1 > 2 blows up the BBUF, so both
        # are excluded by domain; shuffling replaces da2 at ~2% of its cost.
        return SearchSpace(
            name="ab",
            da1=(1, 2),
            db1=(1, 2, 3, 4),
            db2=(0, 1),
            db3=(0, 1, 2),
            constraints=(MaxAmuxFanin(16),),
        )
    raise ValueError(
        f"unknown paper space {name!r}; valid spaces:\n"
        f"  - 'b'  (Fig. 5 Sparse.B sweep)\n"
        f"  - 'a'  (Fig. 6 Sparse.A sweep)\n"
        f"  - 'ab' (Fig. 7 Sparse.AB sweep)"
    )


#: Names accepted by :func:`paper_space` (and the ``repro search`` CLI).
PAPER_SPACE_NAMES: tuple[str, ...] = ("a", "b", "ab")


def resolve_space(space: "SearchSpace | Mapping | str") -> SearchSpace:
    """Coerce a space argument: an instance, a JSON dict, or a preset name."""
    if isinstance(space, SearchSpace):
        return space
    if isinstance(space, str):
        return paper_space(space)
    if isinstance(space, Mapping):
        if set(space) == {"preset"}:
            return paper_space(str(space["preset"]))
        return SearchSpace.from_dict(space)
    raise TypeError(
        f"cannot build a search space from {space!r}: expected a SearchSpace, "
        f"a preset name ({', '.join(PAPER_SPACE_NAMES)}), or a domain mapping"
    )
