"""Declarative search specifications (the ``repro search`` JSON input).

A :class:`SearchSpec` is to guided search what
:class:`repro.api.ExperimentSpec` is to fixed design lists, and it shares
the experiment vocabulary for everything evaluation-related (``quick`` /
``networks`` / ``options`` mean exactly what they mean in an experiment
spec).  On top it names the space (a Fig. 5-7 preset or explicit domains +
constraints), the strategy and its seed/budget, and the objectives::

    {
      "name": "find-b-star",
      "space": {"db1": [1, 2, 3, 4, 5, 6, 7], "db2": [0, 1, 2, 3],
                "db3": [0, 1, 2], "max_amux_fanin": 8},
      "strategy": {"kind": "evolutionary", "seed": 2022, "budget": 10},
      "objectives": [{"category": "DNN.B"}, {"category": "DNN.dense"}],
      "quick": true,
      "options": {"passes_per_gemm": 1, "max_t_steps": 16}
    }

``space`` may also be a preset name (``"b"``) or ``{"preset": "b"}``.
Objectives default to the paper's pair for the space's inferred sparse
category: sparse-category TOPS/W x dense TOPS/W.

``"fidelity": "multi"`` switches the run to multi-fidelity search: the
calibrated surrogate (:mod:`repro.surrogate`) screens the whole space and
only the predicted-frontier shortlist (sized by the strategy ``budget``)
is confirmed by the exact engine.  It is the same choice as strategy kind
``"surrogate"`` -- give either, or both consistently.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.dse.evaluate import EvalSettings
from repro.search.objectives import ObjectiveSet
from repro.search.space import SearchSpace, resolve_space
from repro.search.strategy import SearchStrategy, build_strategy
from repro.sim.engine import SimulationOptions
from repro.workloads.registry import anchor_workload_tokens, parse_workload

#: Default sampling of declarative specs (matches ``ExperimentSpec``).
SPEC_DEFAULT_OPTIONS = {"passes_per_gemm": 3, "max_t_steps": 64}

_SPEC_KEYS = {"name", "title", "space", "strategy", "objectives", "quick",
              "networks", "options", "checkpoint", "fidelity"}

#: Evaluation fidelities a spec can name.  ``exact`` runs every proposed
#: config through the engine; ``multi`` screens the space with the
#: calibrated surrogate first (strategy kind ``surrogate``) and spends the
#: exact engine only on the predicted shortlist.
FIDELITY_KINDS = ("exact", "multi")
_STRATEGY_KEYS = {"kind", "seed", "budget", "population", "parents",
                  "children", "batch_size"}


@dataclass(frozen=True)
class StrategySpec:
    """The strategy half of a search spec (kind + tuning knobs).

    The default kind is ``exhaustive`` (a bare spec means "sweep the whole
    space"); the sampling strategies need an explicit ``budget``.
    """

    kind: str = "exhaustive"
    seed: int = 2022
    budget: int | None = None
    population: int = 8
    parents: int = 3
    children: int | None = None
    batch_size: int = 8

    @staticmethod
    def from_dict(data: Mapping) -> "StrategySpec":
        unknown = set(data) - _STRATEGY_KEYS
        if unknown:
            raise ValueError(
                f"unknown strategy keys {sorted(unknown)}; "
                f"accepted: {sorted(_STRATEGY_KEYS)}"
            )
        budget = data.get("budget")
        children = data.get("children")
        return StrategySpec(
            kind=str(data.get("kind", "exhaustive")),
            seed=int(data.get("seed", 2022)),
            budget=int(budget) if budget is not None else None,
            population=int(data.get("population", 8)),
            parents=int(data.get("parents", 3)),
            children=int(children) if children is not None else None,
            batch_size=int(data.get("batch_size", 8)),
        )

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "seed": self.seed}
        if self.budget is not None:
            payload["budget"] = self.budget
        if self.kind == "evolutionary":
            payload["population"] = self.population
            payload["parents"] = self.parents
            if self.children is not None:
                payload["children"] = self.children
        if self.kind == "random":
            payload["batch_size"] = self.batch_size
        return payload

    def build(self, space: SearchSpace) -> SearchStrategy:
        return build_strategy(
            self.kind,
            space,
            budget=self.budget,
            seed=self.seed,
            population=self.population,
            parents=self.parents,
            children=self.children,
            batch_size=self.batch_size,
        )


@dataclass(frozen=True)
class SearchSpec:
    """Declarative description of one guided-search run."""

    space: SearchSpace
    strategy: StrategySpec = field(default_factory=StrategySpec)
    objectives: ObjectiveSet | None = None
    name: str = "search"
    title: str = ""
    quick: bool = True
    networks: tuple[str, ...] | None = None
    options: SimulationOptions = field(
        default_factory=lambda: SimulationOptions(**SPEC_DEFAULT_OPTIONS)
    )
    checkpoint: str | None = None
    fidelity: str = "exact"

    def __post_init__(self) -> None:
        if self.fidelity not in FIDELITY_KINDS:
            raise ValueError(
                f"unknown fidelity {self.fidelity!r}; "
                f"choose from {list(FIDELITY_KINDS)}"
            )
        # Fidelity and strategy kind are two spellings of one choice:
        # multi-fidelity IS the surrogate-screened strategy.  Keeping them
        # bijective means a spec can never claim one and run the other.
        if (self.strategy.kind == "surrogate") != (self.fidelity == "multi"):
            raise ValueError(
                f"fidelity {self.fidelity!r} conflicts with strategy kind "
                f"{self.strategy.kind!r}: 'multi' pairs with the "
                f"'surrogate' strategy (and only with it)"
            )

    @staticmethod
    def from_dict(data: Mapping) -> "SearchSpec":
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown search keys {sorted(unknown)}; "
                f"accepted: {sorted(_SPEC_KEYS)}"
            )
        if "space" not in data:
            raise ValueError("search spec needs a 'space'")
        space = resolve_space(data["space"])
        objectives = None
        if data.get("objectives"):
            objectives = ObjectiveSet.from_dicts(data["objectives"])
        networks = data.get("networks")
        strategy = StrategySpec.from_dict(data.get("strategy") or {})
        fidelity = data.get("fidelity")
        if fidelity is None:
            # One given, the other implied: kind 'surrogate' IS multi.
            fidelity = "multi" if strategy.kind == "surrogate" else "exact"
        elif fidelity == "multi" and "kind" not in (data.get("strategy") or {}):
            # 'fidelity: multi' alone selects the surrogate strategy.
            strategy = StrategySpec.from_dict(
                {**(data.get("strategy") or {}), "kind": "surrogate"}
            )
        spec = SearchSpec(
            space=space,
            strategy=strategy,
            objectives=objectives,
            name=str(data.get("name", "search")),
            title=str(data.get("title", "")),
            quick=bool(data.get("quick", True)),
            networks=tuple(str(n) for n in networks) if networks else None,
            options=SimulationOptions.from_dict(
                dict(data.get("options") or {}), defaults=SPEC_DEFAULT_OPTIONS
            ),
            checkpoint=str(data["checkpoint"]) if data.get("checkpoint") else None,
            fidelity=str(fidelity),
        )
        # Fail fast: an empty feasible grid, an unbuildable strategy, or an
        # unresolvable workload token is a spec error, not something to
        # discover mid-run.
        if not any(True for _ in spec.space):
            raise ValueError(
                f"search space {spec.space.name!r} has no feasible config "
                f"({spec.space.describe()})"
            )
        spec.build_strategy()
        spec.resolve_objectives()
        for token in spec.networks or ():
            parse_workload(token)
        return spec

    @staticmethod
    def from_json(text: str) -> "SearchSpec":
        return SearchSpec.from_dict(json.loads(text))

    @staticmethod
    def load(path: str | os.PathLike) -> "SearchSpec":
        """Read a spec from a JSON file (the ``repro search`` input).

        Relative WorkloadSpec paths in ``networks`` are resolved against
        the spec file's directory (same contract as
        :meth:`repro.api.ExperimentSpec.load`).
        """
        data = json.loads(Path(path).read_text())
        if isinstance(data, Mapping) and data.get("networks"):
            data = dict(data)
            data["networks"] = anchor_workload_tokens(
                data["networks"], Path(path).parent
            )
        return SearchSpec.from_dict(data)

    @staticmethod
    def coerce(spec: "SearchSpec | Mapping | str | os.PathLike") -> "SearchSpec":
        """Accept a spec object, a dict, or a path to a JSON file."""
        if isinstance(spec, SearchSpec):
            return spec
        if isinstance(spec, Mapping):
            return SearchSpec.from_dict(spec)
        return SearchSpec.load(spec)

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "title": self.title,
            "space": self.space.to_dict(),
            "strategy": self.strategy.to_dict(),
            "quick": self.quick,
            "networks": list(self.networks) if self.networks else None,
            "options": self.options.to_dict(),
        }
        if self.objectives is not None:
            payload["objectives"] = self.objectives.to_dicts()
        if self.checkpoint is not None:
            payload["checkpoint"] = self.checkpoint
        if self.fidelity != "exact":
            payload["fidelity"] = self.fidelity
        return payload

    def resolve_objectives(self) -> ObjectiveSet:
        """Explicit objectives, or the paper's default pair for the space."""
        if self.objectives is not None:
            return self.objectives
        return ObjectiveSet.for_category(self.space.default_category())

    def build_strategy(self) -> SearchStrategy:
        """A fresh strategy instance (single-use; one per run)."""
        return self.strategy.build(self.space)

    def eval_settings(self, quick: bool | None = None) -> EvalSettings:
        """The spec's :class:`EvalSettings`; ``quick`` overrides like
        :meth:`repro.api.ExperimentSpec.eval_settings` (``True`` forces
        smoke sampling, ``False`` the full suite)."""
        if quick is None:
            return EvalSettings(
                quick=self.quick, options=self.options, networks=self.networks
            )
        if quick:
            options = SimulationOptions.from_dict(
                {"passes_per_gemm": 1, "max_t_steps": 16},
                defaults=self.options.to_dict(),
            )
            return EvalSettings(quick=True, options=options, networks=self.networks)
        return EvalSettings(quick=False, options=self.options, networks=self.networks)
