"""Pluggable search strategies behind one ask/tell protocol.

A :class:`SearchStrategy` proposes batches of candidate configs
(:meth:`ask`) and learns their score vectors (:meth:`tell`); the batched
evaluation loop in :mod:`repro.runtime.search` drives the exchange, so a
strategy never touches the simulator, the cache, or the process pool --
every strategy is automatically parallel and cache-hot, and, because every
decision is a deterministic function of a seed and of told scores (which
are themselves bitwise-deterministic), a strategy run is reproducible
across runs *and* across worker counts.

Four strategies ship:

* :class:`ExhaustiveSearch` -- the full feasible grid, in space order
  (subsumes the legacy ``design_space()`` sweeps);
* :class:`RandomSearch` -- a seeded uniform sample without replacement;
* :class:`EvolutionarySearch` -- seeded (mu + lambda)-style local search:
  parents picked by Pareto rank (non-dominated sorting, product-rule
  tie-break), children by single-field mutation -- finds the Table VI
  starred points while evaluating a fraction of the grid;
* :class:`SurrogateScreenedSearch` -- the multi-fidelity mode
  (``fidelity: "multi"`` in a search spec): the calibrated analytical
  surrogate (:mod:`repro.surrogate`) scores *every* feasible config in
  microseconds, and only the predicted Pareto shortlist is proposed to
  the exact engine for confirmation.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence, runtime_checkable

from repro.config import ArchConfig
from repro.dse.pareto import pareto_ranks
from repro.obs import trace as obs
from repro.search.space import SearchSpace

#: One told result: the candidate and its maximize-score vector.
TellResult = tuple[ArchConfig, tuple[float, ...]]


@runtime_checkable
class SearchStrategy(Protocol):
    """The ask/tell contract every strategy implements.

    A strategy is single-use: one instance drives one search run.  ``ask``
    returns the next batch of candidates (possibly already evaluated ones,
    which the loop answers from the archive) and the empty list when the
    strategy has nothing further to propose; ``tell`` feeds back the score
    vectors of a completed batch, in ask order.
    """

    @property
    def name(self) -> str: ...

    def ask(self) -> list[ArchConfig]: ...

    def tell(self, results: Sequence[TellResult]) -> None: ...


class ExhaustiveSearch:
    """Every feasible config of the space, in deterministic space order.

    One ask of the whole grid: the evaluation loop hands it to the runner
    in a single batch, so the exhaustive strategy parallelizes exactly
    like the legacy ``repro sweep`` (and returns identical results).
    """

    name = "exhaustive"

    def __init__(self, space: SearchSpace) -> None:
        self.space = space
        self._asked = False

    def ask(self) -> list[ArchConfig]:
        if self._asked:
            return []
        self._asked = True
        return self.space.configs()

    def tell(self, results: Sequence[TellResult]) -> None:
        pass

    def describe(self) -> str:
        return f"exhaustive over {len(self.space)} feasible configs"


class RandomSearch:
    """A seeded uniform sample of the space, without replacement."""

    name = "random"

    def __init__(
        self,
        space: SearchSpace,
        budget: int,
        seed: int = 2022,
        batch_size: int = 8,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.space = space
        self.seed = seed
        self.batch_size = batch_size
        rng = random.Random(seed)
        self._pending = space.sample(rng, budget)

    def ask(self) -> list[ArchConfig]:
        batch, self._pending = (
            self._pending[: self.batch_size],
            self._pending[self.batch_size :],
        )
        return batch

    def tell(self, results: Sequence[TellResult]) -> None:
        pass

    def describe(self) -> str:
        return f"random sample (seed {self.seed})"


class EvolutionarySearch:
    """Seeded evolutionary/local search with Pareto-rank selection.

    Generation zero is a uniform seeded sample of ``population`` configs.
    Every later generation ranks *all* results told so far by
    non-dominated sorting (:func:`repro.dse.pareto.pareto_ranks`), breaks
    rank ties by the product-of-scores compromise rule (then by evaluation
    order, so the ordering is total and deterministic), keeps the top
    ``parents``, and proposes one single-field mutation of each (cycling)
    until ``children`` fresh candidates are found.  Already-proposed
    configs are never proposed again; when the reachable neighbourhood is
    exhausted the strategy falls back to unseen random configs, and goes
    silent once the whole space has been proposed.

    The loop enforces the evaluation ``budget``; the strategy only needs
    it to size generation zero sensibly.
    """

    name = "evolutionary"

    def __init__(
        self,
        space: SearchSpace,
        budget: int,
        seed: int = 2022,
        population: int = 8,
        parents: int = 3,
        children: int | None = None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        if parents < 1:
            raise ValueError(f"parents must be >= 1, got {parents}")
        self.space = space
        self.seed = seed
        self.budget = budget
        self.population = min(population, budget)
        self.parents = parents
        self.children = children if children is not None else max(2, parents)
        self._rng = random.Random(seed)
        self._results: list[TellResult] = []
        self._proposed: set[str] = set()
        self._started = False

    def _propose(self, config: ArchConfig) -> bool:
        key = config.notation
        if key in self._proposed:
            return False
        self._proposed.add(key)
        return True

    def _select_parents(self) -> list[ArchConfig]:
        scores = [scores for _, scores in self._results]
        ranks = pareto_ranks(scores)
        product = [_product(vector) for vector in scores]
        order = sorted(
            range(len(self._results)),
            key=lambda i: (ranks[i], -product[i], i),
        )
        return [self._results[i][0] for i in order[: self.parents]]

    def ask(self) -> list[ArchConfig]:
        if not self._started:
            self._started = True
            batch = self.space.sample(self._rng, self.population)
            for config in batch:
                self._propose(config)
            return batch
        if not self._results:
            return []  # told nothing back: nothing to evolve from
        batch: list[ArchConfig] = []
        parents = self._select_parents()
        attempts = 0
        max_attempts = 20 * self.children
        while len(batch) < self.children and attempts < max_attempts:
            parent = parents[attempts % len(parents)]
            child = self.space.mutate(parent, self._rng)
            attempts += 1
            if self._propose(child):
                batch.append(child)
        if len(batch) < self.children:
            # Mutation neighbourhood exhausted: fall back to unseen configs.
            unseen = [
                config
                for config in self.space
                if config.notation not in self._proposed
            ]
            for config in unseen[: self.children - len(batch)]:
                self._propose(config)
                batch.append(config)
        return batch

    def tell(self, results: Sequence[TellResult]) -> None:
        self._results.extend(results)

    def describe(self) -> str:
        return (
            f"evolutionary (seed {self.seed}, population {self.population}, "
            f"{self.parents} parents x {self.children} children per generation)"
        )


def _product(values: Sequence[float]) -> float:
    out = 1.0
    for value in values:
        out *= value
    return out


class SurrogateScreenedSearch:
    """Multi-fidelity screening: surrogate ranks, exact engine confirms.

    The strategy must be **bound** to a predictor -- a callable mapping a
    config to its predicted maximize-score vector -- before its first
    ``ask``; :meth:`repro.api.Session.search` binds the calibrated
    :class:`repro.surrogate.SurrogateModel` automatically.  The one ask
    scores the entire feasible grid with the predictor (recorded in
    ``screened``), ranks it exactly like the evolutionary selection rule
    -- non-dominated sorting, product-of-scores tie-break, then space
    order -- and proposes the top ``budget`` configs for exact
    evaluation.  The loop's exact results then build the archive, so the
    frontier the search reports is engine truth; the surrogate only
    decided where to spend the exact evaluations.

    The surrogate is deterministic arithmetic over fitted constants, so
    the shortlist -- and therefore the whole search -- is bitwise
    reproducible across runs and worker counts; ``seed`` is accepted for
    interface uniformity but never consulted.
    """

    name = "surrogate"

    def __init__(
        self, space: SearchSpace, budget: int, seed: int = 2022
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.space = space
        self.budget = budget
        self.seed = seed
        self.screened = 0
        self._predict = None
        self._asked = False

    @property
    def bound(self) -> bool:
        return self._predict is not None

    def bind(self, predict) -> "SurrogateScreenedSearch":
        """Attach the score predictor (config -> maximize-score vector)."""
        self._predict = predict
        return self

    def ask(self) -> list[ArchConfig]:
        if self._asked:
            return []
        self._asked = True
        if self._predict is None:
            raise ValueError(
                "surrogate strategy is not bound to a predictor; run it "
                "through Session.search (which binds the calibrated "
                "surrogate model) or call .bind(predict) first"
            )
        configs = self.space.configs()
        with obs.ACTIVE.span(
            "surrogate.screen", configs=len(configs), budget=self.budget
        ):
            scored = [self._predict(config) for config in configs]
        self.screened = len(configs)
        ranks = pareto_ranks(scored)
        product = [_product(vector) for vector in scored]
        order = sorted(
            range(len(configs)), key=lambda i: (ranks[i], -product[i], i)
        )
        return [configs[i] for i in order[: self.budget]]

    def tell(self, results: Sequence[TellResult]) -> None:
        pass

    def describe(self) -> str:
        return (
            f"surrogate-screened shortlist (top {self.budget} of "
            f"{len(self.space)} predicted configs, exact-confirmed)"
        )


#: Strategy kinds the CLI / SearchSpec can name.
STRATEGY_KINDS: tuple[str, ...] = (
    "exhaustive", "random", "evolutionary", "surrogate"
)


def build_strategy(
    kind: str,
    space: SearchSpace,
    budget: int | None = None,
    seed: int = 2022,
    population: int = 8,
    parents: int = 3,
    children: int | None = None,
    batch_size: int = 8,
) -> SearchStrategy:
    """Construct a named strategy (the CLI / SearchSpec entry point).

    ``budget`` defaults to the full feasible grid for ``exhaustive`` and is
    required for the sampling strategies.
    """
    key = kind.lower()
    if key == "exhaustive":
        return ExhaustiveSearch(space)
    if budget is None:
        raise ValueError(f"strategy {kind!r} needs an evaluation budget")
    if key == "random":
        return RandomSearch(space, budget=budget, seed=seed, batch_size=batch_size)
    if key == "evolutionary":
        return EvolutionarySearch(
            space,
            budget=budget,
            seed=seed,
            population=population,
            parents=parents,
            children=children,
        )
    if key == "surrogate":
        return SurrogateScreenedSearch(space, budget=budget, seed=seed)
    raise ValueError(
        f"unknown search strategy {kind!r}; choose from {list(STRATEGY_KINDS)}"
    )
