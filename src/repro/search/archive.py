"""Incremental Pareto archive with dominance bookkeeping and checkpoints.

The archive records every evaluated design of a search run and maintains
its Pareto front *incrementally*: each :meth:`ParetoArchive.add` either
rejects the newcomer (dominated), or admits it and evicts the front
members it dominates -- O(front) per insertion instead of re-running the
O(n^2) batch extraction.  Ties are kept (two designs with identical score
vectors are both on the front); re-submitting an already-recorded design
is a no-op, so the archive never grows with duplicates.

``save``/``load`` round-trip the archive through JSON, which is what
``repro search --checkpoint`` writes after every batch.  A resumed search
replays its strategy against the recorded results (evaluations are only
re-run for designs the archive has not seen), so a killed run continues
bitwise-identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.config import CoreGeometry
from repro.core.metrics import EfficiencyPoint
from repro.dse.evaluate import DesignEvaluation
from repro.dse.pareto import dominates

#: Bump when the checkpoint JSON layout changes incompatibly.
ARCHIVE_FORMAT_VERSION = 1


def _point_to_dict(point: EfficiencyPoint) -> dict:
    geom = point.geometry
    return {
        "label": point.label,
        "category": point.category,
        "speedup": point.speedup,
        "power_mw": point.power_mw,
        "area_um2": point.area_um2,
        "geometry": {
            "k0": geom.k0,
            "n0": geom.n0,
            "m0": geom.m0,
            "frequency_mhz": geom.frequency_mhz,
            "precision_bits": geom.precision_bits,
        },
    }


def _point_from_dict(data: Mapping) -> EfficiencyPoint:
    return EfficiencyPoint(
        label=str(data["label"]),
        category=str(data["category"]),
        speedup=float(data["speedup"]),
        power_mw=float(data["power_mw"]),
        area_um2=float(data["area_um2"]),
        geometry=CoreGeometry(**data["geometry"]),
    )


@dataclass(frozen=True)
class SearchRecord:
    """One evaluated design: identity, score vector, full evaluation.

    ``key`` is the config's canonical notation (its search-space identity);
    ``index`` the 0-based order in which the search evaluated it.
    """

    key: str
    index: int
    scores: tuple[float, ...]
    evaluation: DesignEvaluation

    @property
    def label(self) -> str:
        return self.evaluation.label

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "index": self.index,
            "scores": list(self.scores),
            "label": self.evaluation.label,
            "points": [_point_to_dict(p) for p in self.evaluation.points],
        }

    @staticmethod
    def from_dict(data: Mapping) -> "SearchRecord":
        return SearchRecord(
            key=str(data["key"]),
            index=int(data["index"]),
            scores=tuple(float(s) for s in data["scores"]),
            evaluation=DesignEvaluation(
                label=str(data["label"]),
                points=tuple(_point_from_dict(p) for p in data["points"]),
            ),
        )


class ParetoArchive:
    """All evaluated designs of a search run plus their live Pareto front.

    Args:
        objectives: the score-vector component names (for checkpoint
            validation -- resuming under different objectives is an error).
        space: the search-space name the records came from (same purpose).
    """

    def __init__(self, objectives: tuple[str, ...], space: str = "custom") -> None:
        if not objectives:
            raise ValueError("archive needs at least one objective name")
        self.objectives = tuple(objectives)
        self.space = space
        self._records: dict[str, SearchRecord] = {}
        self._front: list[str] = []

    # -- bookkeeping ---------------------------------------------------

    def __len__(self) -> int:
        """Number of evaluated designs (the search's evaluation count)."""
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __iter__(self) -> Iterator[SearchRecord]:
        """All records in evaluation order."""
        return iter(self._records.values())

    def get(self, key: str) -> SearchRecord | None:
        return self._records.get(key)

    def record(self, key: str, evaluation: DesignEvaluation,
               scores: tuple[float, ...]) -> SearchRecord:
        """Build and :meth:`add` a record with the next evaluation index."""
        return self.add(
            SearchRecord(key=key, index=len(self._records),
                         scores=tuple(scores), evaluation=evaluation)
        )

    def add(self, record: SearchRecord) -> SearchRecord:
        """Insert a record, updating the front; duplicate keys are no-ops.

        Returns the archived record for ``record.key`` (the pre-existing
        one when the key was already recorded).
        """
        if len(record.scores) != len(self.objectives):
            raise ValueError(
                f"record {record.key!r} has {len(record.scores)} scores, "
                f"archive tracks {len(self.objectives)} objectives"
            )
        existing = self._records.get(record.key)
        if existing is not None:
            return existing
        self._records[record.key] = record
        if not any(
            dominates(self._records[key].scores, record.scores)
            for key in self._front
        ):
            self._front = [
                key
                for key in self._front
                if not dominates(record.scores, self._records[key].scores)
            ]
            self._front.append(record.key)
        return record

    def on_front(self, key: str) -> bool:
        return key in self._front

    def front(self) -> list[SearchRecord]:
        """The non-dominated records, in evaluation order."""
        return sorted(
            (self._records[key] for key in self._front),
            key=lambda record: record.index,
        )

    def best(self, scalar) -> SearchRecord:
        """The front record maximizing ``scalar(scores)`` (first on ties)."""
        front = self.front()
        if not front:
            raise ValueError("archive is empty; nothing to select from")
        return max(front, key=lambda record: (scalar(record.scores), -record.index))

    # -- checkpoint / resume -------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": ARCHIVE_FORMAT_VERSION,
            "space": self.space,
            "objectives": list(self.objectives),
            "records": [record.to_dict() for record in self],
        }

    @staticmethod
    def from_dict(data: Mapping) -> "ParetoArchive":
        version = data.get("version")
        if version != ARCHIVE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive format version {version!r} "
                f"(this build reads {ARCHIVE_FORMAT_VERSION})"
            )
        archive = ParetoArchive(
            objectives=tuple(str(o) for o in data["objectives"]),
            space=str(data.get("space", "custom")),
        )
        records = sorted(
            (SearchRecord.from_dict(r) for r in data["records"]),
            key=lambda record: record.index,
        )
        for record in records:
            archive.add(record)
        return archive

    def save(self, path: str | os.PathLike) -> None:
        """Write the checkpoint atomically (write-then-rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2))
        tmp.replace(path)

    @staticmethod
    def load(path: str | os.PathLike) -> "ParetoArchive":
        return ParetoArchive.from_dict(json.loads(Path(path).read_text()))
