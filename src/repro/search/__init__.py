"""Guided design-space search: spaces, strategies, Pareto archive, specs.

The subsystem behind ``repro search`` and
:meth:`repro.api.Session.search`.  A :class:`SearchSpace` declares
parameter domains and composable constraints (the three paper sweeps are
the :func:`paper_space` presets); a :class:`~repro.search.strategy.SearchStrategy`
proposes candidate batches through the ask/tell loop in
:mod:`repro.runtime.search`; every evaluated design lands in a
:class:`ParetoArchive` with incremental dominance bookkeeping and JSON
checkpoint/resume.  See ``docs/search.md`` for the guided tour.
"""

from repro.search.archive import ParetoArchive, SearchRecord
from repro.search.objectives import METRICS, Objective, ObjectiveSet
from repro.search.space import (
    PAPER_SPACE_NAMES,
    AreaBudget,
    Constraint,
    MaxAmuxFanin,
    MaxBmuxFanin,
    MaxMuxFanin,
    PowerBudget,
    Predicate,
    SearchSpace,
    paper_space,
    resolve_space,
)
from repro.search.spec import FIDELITY_KINDS, SearchSpec, StrategySpec
from repro.search.strategy import (
    STRATEGY_KINDS,
    EvolutionarySearch,
    ExhaustiveSearch,
    RandomSearch,
    SearchStrategy,
    SurrogateScreenedSearch,
    build_strategy,
)

__all__ = [
    "SearchSpace",
    "paper_space",
    "resolve_space",
    "PAPER_SPACE_NAMES",
    "Constraint",
    "MaxAmuxFanin",
    "MaxBmuxFanin",
    "MaxMuxFanin",
    "AreaBudget",
    "PowerBudget",
    "Predicate",
    "Objective",
    "ObjectiveSet",
    "METRICS",
    "ParetoArchive",
    "SearchRecord",
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "EvolutionarySearch",
    "build_strategy",
    "STRATEGY_KINDS",
    "FIDELITY_KINDS",
    "SurrogateScreenedSearch",
    "SearchSpec",
    "StrategySpec",
]
