"""Always-on evaluation service with fingerprint-keyed request coalescing.

``repro serve`` keeps one warm :class:`~repro.api.Session` -- persistent
two-tier cache installed, worker pool alive -- behind a small stdlib
HTTP+JSON server, so the marginal cost of an evaluation request drops
from a cold CLI process to a cache lookup.  Identical in-flight requests
are coalesced by content fingerprint (design x workload x options) into a
single computation; results are bitwise-identical to ``repro run`` /
``repro search``.  See ``docs/serve.md``.

Layout:

* :mod:`repro.serve.protocol`  -- wire format and coalesce keys;
* :mod:`repro.serve.coalescer` -- shared in-flight computations;
* :mod:`repro.serve.telemetry` -- the ``/stats`` counters;
* :mod:`repro.serve.app`       -- the asyncio HTTP application;
* :mod:`repro.serve.client`    -- thin synchronous client.
"""

from repro.serve.app import DEFAULT_PORT, ServeApp
from repro.serve.client import ServeClient, ServeError
from repro.serve.coalescer import Computation, RequestCoalescer
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    RequestError,
    run_coalesce_key,
    search_coalesce_key,
)
from repro.serve.telemetry import ServeTelemetry

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "Computation",
    "RequestCoalescer",
    "RequestError",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServeTelemetry",
    "run_coalesce_key",
    "search_coalesce_key",
]
