"""Thin stdlib client for the ``repro serve`` HTTP service.

Wraps :class:`http.client.HTTPConnection` (which handles chunked
transfer decoding for the streaming endpoints) in the service's wire
protocol: specs go out as JSON bodies, results come back as the
``repro run --json`` payloads, and non-2xx responses raise
:class:`ServeError` carrying the shared JSON error envelope.  Used by
the test suite and the CI serve-smoke job; it is equally the programmatic
entry point::

    from repro.serve.client import ServeClient

    client = ServeClient("127.0.0.1", 8757)
    result = client.run({"name": "fig8", "designs": ["Dense", "Griffin"],
                         "categories": ["DNN.B"]}, quick=True)
    print(result["rows"][0], result["serve"]["coalesced"])
    for event in client.run_stream("examples/experiments/fig8.json"):
        print(event)  # progress ticks, then the result document

Specs are accepted as dicts, JSON strings, or paths to spec files --
the same inputs ``repro run`` / ``repro search`` take.
"""

from __future__ import annotations

import http.client
import json
import os
from typing import Iterator, Mapping

from repro.api import ExperimentSpec
from repro.errors import error_message
from repro.search.spec import SearchSpec


class ServeError(RuntimeError):
    """A non-2xx service response, carrying the JSON error envelope."""

    def __init__(self, status: int, envelope: Mapping) -> None:
        super().__init__(f"HTTP {status}: {error_message(envelope)}")
        self.status = status
        self.envelope = dict(envelope)

    @property
    def kind(self) -> str:
        error = self.envelope.get("error")
        if isinstance(error, Mapping):
            return str(error.get("kind", "unknown"))
        return "unknown"


def _spec_body(spec, spec_type) -> bytes:
    """Coerce a spec (object/dict/JSON text/path) to a request body."""
    if isinstance(spec, (ExperimentSpec, SearchSpec)):
        return json.dumps(spec.to_dict()).encode("utf-8")
    if isinstance(spec, Mapping):
        return json.dumps(dict(spec)).encode("utf-8")
    text = str(spec)
    if text.lstrip().startswith("{"):
        return text.encode("utf-8")
    # A path: validate client-side (resolving relative workload paths)
    # so errors carry the local filename, then ship the resolved spec.
    loaded = spec_type.load(text)
    return json.dumps(loaded.to_dict()).encode("utf-8")


class ServeClient:
    """Synchronous client; one HTTP connection per call."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8757, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(
        self, method: str, target: str, body: bytes | None = None
    ) -> http.client.HTTPResponse:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, target, body=body, headers=headers)
        response = connection.getresponse()
        if response.status >= 300:
            raw = response.read()
            connection.close()
            try:
                envelope = json.loads(raw)
            except json.JSONDecodeError:
                envelope = {"error": {"v": 1, "kind": "unknown",
                                      "message": raw.decode("utf-8", "replace")}}
            raise ServeError(response.status, envelope)
        return response

    def _json(self, method: str, target: str, body: bytes | None = None) -> dict:
        response = self._request(method, target, body)
        try:
            return json.loads(response.read())
        finally:
            response.close()

    @staticmethod
    def _target(path: str, quick: bool | None, stream: bool = False) -> str:
        params = []
        if quick is not None:
            params.append(f"quick={'1' if quick else '0'}")
        if stream:
            params.append("stream=1")
        return path + ("?" + "&".join(params) if params else "")

    def _stream(self, target: str, body: bytes) -> Iterator[dict]:
        response = self._request("POST", target, body)
        try:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            response.close()

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def shutdown(self) -> dict:
        """Ask the server to drain and exit."""
        return self._json("POST", "/shutdown")

    def run(
        self,
        spec: "ExperimentSpec | Mapping | str | os.PathLike",
        quick: bool | None = None,
    ) -> dict:
        """POST an experiment; blocks until the result document."""
        body = _spec_body(spec, ExperimentSpec)
        return self._json("POST", self._target("/run", quick), body)

    def run_stream(
        self,
        spec: "ExperimentSpec | Mapping | str | os.PathLike",
        quick: bool | None = None,
    ) -> Iterator[dict]:
        """POST an experiment; yield NDJSON events as they arrive.

        The last event is either ``{"event": "result", ...}`` (the full
        result document) or ``{"event": "error", "error": {...}}``.
        """
        body = _spec_body(spec, ExperimentSpec)
        return self._stream(self._target("/run", quick, stream=True), body)

    def search(
        self,
        spec: "SearchSpec | Mapping | str | os.PathLike",
        quick: bool | None = None,
    ) -> dict:
        """POST a search spec; blocks until the archive/front document."""
        body = _spec_body(spec, SearchSpec)
        return self._json("POST", self._target("/search", quick), body)

    def search_stream(
        self,
        spec: "SearchSpec | Mapping | str | os.PathLike",
        quick: bool | None = None,
    ) -> Iterator[dict]:
        body = _spec_body(spec, SearchSpec)
        return self._stream(self._target("/search", quick, stream=True), body)
