"""The ``repro serve`` HTTP application: one warm session, many clients.

A deliberately small HTTP/1.1 server on :mod:`asyncio` (stdlib only, one
connection per request, ``Connection: close``) fronting a single shared
:class:`~repro.api.Session`.  The session is created with
``keep_pool=True`` so the worker process pool and the two-tier persistent
cache stay warm across requests -- the service answers a repeated
experiment from the network cache tier in milliseconds, and the
:class:`~repro.serve.coalescer.RequestCoalescer` collapses identical
*in-flight* requests into one computation.

Endpoints (see ``docs/serve.md`` for the wire format):

* ``GET  /healthz``  -- liveness + version;
* ``GET  /stats``    -- telemetry: requests, coalescing, latency, cache;
* ``POST /run``      -- body is an ExperimentSpec JSON (the ``repro run``
  file); ``?quick=`` overrides sampling, ``?stream=1`` switches to a
  chunked NDJSON progress stream ending in the result document;
* ``POST /search``   -- body is a SearchSpec JSON, same query options;
* ``POST /shutdown`` -- begin graceful shutdown (drain, then exit).

Evaluations run on a small thread pool (each one dispatching into the
session's process pool when ``workers > 1``), so the event loop stays
responsive while heavy requests are in flight.  Responses reuse the exact
``repro run --json`` / ``repro search --json`` payloads -- the served
rows are bitwise-identical to the CLI's -- plus a ``"serve"`` metadata
block and the shared JSON error envelope on failures.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping

from repro import __version__
from repro.api import Session
from repro.errors import envelope_from_exception, error_envelope
from repro.obs import trace as obs
from repro.runtime.cache import CacheStats
from repro.serve.coalescer import Computation, RequestCoalescer
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    RequestError,
    parse_path,
    parse_query,
    parse_run_request,
    parse_search_request,
    run_coalesce_key,
    run_payload,
    search_coalesce_key,
    search_payload,
)
from repro.serve.telemetry import ServeTelemetry

#: Default TCP port (spells "VSVR" on a phone pad about as well as any).
DEFAULT_PORT = 8757

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Terminal stream events published by the coalescer when a task settles.
_TERMINAL_EVENTS = {"done", "error", "cancelled"}

#: Cap on accepted request bodies (specs are small; 8 MiB is generous).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Cap on request header lines (real clients send a handful).
MAX_HEADER_LINES = 64


class ServeApp:
    """The evaluation service: routing, coalescing, telemetry, lifecycle.

    Args:
        session: the shared warm session; ``None`` builds one from
            ``workers`` / ``cache_dir`` with ``keep_pool=True``.
        workers: session worker processes (``0``/``1`` = serial).
        cache_dir: persistent cache root for the built session.
        compute_threads: request evaluations running concurrently; each
            occupies one thread (and fans into the process pool when the
            session is parallel).
        drain_timeout: seconds graceful shutdown waits for in-flight
            computations before cancelling stragglers.
    """

    def __init__(
        self,
        session: Session | None = None,
        *,
        workers: int = 0,
        cache_dir: str | None = None,
        compute_threads: int = 4,
        drain_timeout: float = 30.0,
    ) -> None:
        self.session = session if session is not None else Session(
            workers=workers, cache_dir=cache_dir, keep_pool=True
        )
        self.telemetry = ServeTelemetry()
        self.coalescer = RequestCoalescer()
        self._request_ids = itertools.count(1)
        self.drain_timeout = drain_timeout
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, compute_threads), thread_name_prefix="serve-compute"
        )
        self._server: asyncio.AbstractServer | None = None
        self._shutdown_requested: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> None:
        """Bind and start accepting connections (``port=0`` picks a free one)."""
        self._shutdown_requested = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_connection, host, port)

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Flag graceful shutdown; safe from signal handlers and handlers."""
        self._draining = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def shutdown(self) -> None:
        """Drain in-flight work, close the listener, release the session.

        The listener stays open while draining so already-connected and
        still-arriving clients get a clean answer: in-flight requests
        complete normally, new evaluation requests get an enveloped 503,
        and ``/stats`` keeps answering (how an orchestrator watches the
        drain).  Only after the drain does the socket close.
        """
        if self._closed:
            return
        self._closed = True
        self._draining = True
        drained = await self.coalescer.drain(self.drain_timeout)
        current = asyncio.current_task()
        pending = {
            task for task in self._connections
            if task is not current and not task.done()
        }
        if pending:
            # Let open connections finish writing their responses.
            await asyncio.wait(pending, timeout=self.drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)
        # A timed-out drain means an evaluation is still running on a
        # compute thread; closing the session with wait=True would block
        # on it (the worker pool joins in-flight chunks), stretching
        # shutdown far past drain_timeout.  Release without waiting.
        self.session.close(wait=drained)

    def install_signal_handlers(self) -> None:
        """Route SIGINT/SIGTERM to :meth:`request_shutdown` (best effort)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def wait_for_shutdown_request(self) -> None:
        """Block until :meth:`request_shutdown` fires (signal, /shutdown)."""
        assert self._shutdown_requested is not None, "start() first"
        await self._shutdown_requested.wait()

    async def run_until_shutdown(
        self, host: str = "127.0.0.1", port: int = DEFAULT_PORT
    ) -> None:
        """Start, install SIGINT/SIGTERM handlers, serve until shutdown."""
        await self.start(host, port)
        self.install_signal_handlers()
        try:
            await self.wait_for_shutdown_request()
        finally:
            await self.shutdown()

    # ------------------------------------------------------------------
    # HTTP plumbing.
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                parsed = await self._read_request(reader, writer)
            except ValueError as exc:
                # StreamReader raises ValueError past its line-length
                # limit: an oversized request line / header, not a bug.
                self._send_json(writer, 400, error_envelope(
                    "invalid-request", f"unreadable request: {exc}"
                ))
                parsed = None
            if parsed is not None:
                method, target, headers, body = parsed
                await self._dispatch(writer, method, target, headers, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # pragma: no cover - last-resort guard
            try:
                self._send_json(writer, 500, envelope_from_exception(exc))
            except ConnectionError:
                pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                if writer.can_write_eof():
                    writer.write_eof()
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not request_line:
            return None
        parts = request_line.split(" ")
        if len(parts) != 3:
            self._send_json(
                writer, 400,
                error_envelope("invalid-request", f"bad request line {request_line!r}"),
            )
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        for lines_read in range(MAX_HEADER_LINES + 1):
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            if lines_read == MAX_HEADER_LINES:
                self._send_json(
                    writer, 400,
                    error_envelope(
                        "invalid-request",
                        f"more than {MAX_HEADER_LINES} request header lines",
                    ),
                )
                return None
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "").strip()
        if raw_length and not (raw_length.isascii() and raw_length.isdigit()):
            self._send_json(
                writer, 400,
                error_envelope(
                    "invalid-request",
                    f"content-length {raw_length!r} is not a "
                    f"non-negative integer",
                ),
            )
            return None
        length = int(raw_length) if raw_length else 0
        if length > MAX_BODY_BYTES:
            self._send_json(
                writer, 400,
                error_envelope(
                    "invalid-request",
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                ),
            )
            return None
        if headers.get("expect", "").lower() == "100-continue":
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Mapping
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        body = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    def _start_stream(self, writer: asyncio.StreamWriter) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )

    async def _send_chunk(self, writer: asyncio.StreamWriter, payload: Mapping) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()

    def _end_stream(self, writer: asyncio.StreamWriter) -> None:
        writer.write(b"0\r\n\r\n")

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Mapping[str, str],
        body: bytes,
    ) -> None:
        path = parse_path(target)
        query = parse_query(target)
        self.telemetry.request_received(f"{method} {path}")
        try:
            if method == "GET" and path == "/healthz":
                self._send_json(writer, 200, {
                    "ok": True,
                    "version": __version__,
                    "protocol": PROTOCOL_VERSION,
                    "draining": self._draining,
                })
            elif method == "GET" and path == "/stats":
                self._send_json(
                    writer, 200,
                    self.telemetry.as_dict(self.session.stats.snapshot()),
                )
            elif method == "GET" and path == "/metrics":
                self._send_text(
                    writer, 200,
                    self.telemetry.render_prometheus(self.session.stats.snapshot()),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif method == "POST" and path == "/shutdown":
                self._send_json(writer, 200, {"ok": True, "draining": True})
                self.request_shutdown()
            elif method == "POST" and path in ("/run", "/search"):
                if self._draining:
                    self._send_json(writer, 503, error_envelope(
                        "draining", "server is shutting down; not accepting work"
                    ))
                    self.telemetry.request_failed()
                    return
                await self._handle_evaluation(writer, path, query, body)
                return
            elif path in ("/run", "/search", "/shutdown", "/healthz", "/stats",
                          "/metrics"):
                self._send_json(writer, 405, error_envelope(
                    "method-not-allowed", f"{method} is not supported on {path}"
                ))
                self.telemetry.request_failed()
            else:
                self._send_json(writer, 404, error_envelope(
                    "not-found",
                    f"unknown endpoint {path!r}; try /healthz, /stats, "
                    f"/metrics, /run, /search, /shutdown",
                ))
                self.telemetry.request_failed()
        except RequestError as exc:
            self._send_json(writer, 400, error_envelope(exc.kind, str(exc)))
            self.telemetry.request_failed()

    # ------------------------------------------------------------------
    # Evaluation requests: coalesce, compute, answer (or stream).
    # ------------------------------------------------------------------

    async def _handle_evaluation(
        self,
        writer: asyncio.StreamWriter,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> None:
        accepted = time.monotonic()
        # Request spans are explicit roots (parent_id=None): concurrent
        # requests interleave on the one event-loop thread, so the
        # thread-local parent stack cannot be trusted across awaits.
        request_id = next(self._request_ids)
        with obs.ACTIVE.span(
            "serve.request", parent_id=None, endpoint=path, request_id=request_id
        ) as req_span:
            try:
                if path == "/run":
                    spec, quick, stream = parse_run_request(body, query)
                    key = run_coalesce_key(spec, quick)

                    def call(progress):
                        return self.session.run(spec, quick=quick, progress=progress)

                    # Shaping is per *request*, not per computation: the
                    # coalesce key ignores name/title, so a coalesced waiter
                    # re-anchors the shared result on its own spec.
                    def shape(result, serve_meta):
                        return run_payload(result, spec, serve_meta)
                else:
                    spec, quick, stream = parse_search_request(body, query)
                    key = search_coalesce_key(spec, quick)

                    def call(progress):
                        return self.session.search(
                            spec, quick=quick, progress=progress
                        )

                    def shape(result, serve_meta):
                        return search_payload(result, spec, serve_meta)
            except RequestError:
                raise
            except ValueError as exc:
                raise RequestError(str(exc)) from None

            computation, coalesced = self.coalescer.join(
                key,
                lambda comp: self._compute(comp, call, key, req_span.span_id),
            )
            if coalesced:
                self.telemetry.coalesce_hit()
            req_span.set(key=key, coalesced=coalesced)
            meta = {"key": key, "coalesced": coalesced, "endpoint": path}

            if stream:
                await self._answer_streaming(
                    writer, computation, shape, meta, accepted
                )
            else:
                await self._answer_unary(writer, computation, shape, meta, accepted)

    async def _compute(
        self,
        computation: Computation,
        call,
        key: str | None = None,
        parent_span_id: int | None = None,
    ) -> dict:
        """The shared computation body: runs ``call`` on a compute thread."""
        self.telemetry.computation_started()
        enqueued = time.monotonic()
        timing: dict[str, float] = {}

        def work():
            started = time.monotonic()
            timing["queue_s"] = started - enqueued
            # The compute span is stitched to the owning request span by
            # explicit id -- this runs on an executor thread, whose span
            # stack is empty -- and session/engine spans nest under it.
            with obs.ACTIVE.span(
                "serve.compute", parent_id=parent_span_id, key=key
            ):
                result = call(computation.progress_callback())
            timing["compute_s"] = time.monotonic() - started
            return result

        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(self._executor, work)
        except BaseException:
            self.telemetry.computation_finished(
                timing.get("queue_s", time.monotonic() - enqueued),
                timing.get("compute_s", 0.0),
            )
            raise
        cache_delta = result.cache_stats
        if not isinstance(cache_delta, CacheStats):  # pragma: no cover
            cache_delta = None
        self.telemetry.computation_finished(
            timing["queue_s"], timing["compute_s"], cache_delta
        )
        return {
            "result": result,
            "queue_ms": round(timing["queue_s"] * 1000.0, 3),
            "compute_ms": round(timing["compute_s"] * 1000.0, 3),
        }

    def _result_document(
        self, outcome: dict, shape, meta: dict, accepted: float
    ) -> dict:
        return shape(outcome["result"], dict(
            meta,
            queue_ms=outcome["queue_ms"],
            compute_ms=outcome["compute_ms"],
            answer_ms=round((time.monotonic() - accepted) * 1000.0, 3),
        ))

    async def _answer_unary(
        self,
        writer: asyncio.StreamWriter,
        computation: Computation,
        shape,
        meta: dict,
        accepted: float,
    ) -> None:
        try:
            outcome = await self.coalescer.wait(computation)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            status = 400 if isinstance(exc, ValueError) else 500
            self._send_json(writer, status, envelope_from_exception(exc))
            self.telemetry.request_failed()
            return
        self._send_json(
            writer, 200, self._result_document(outcome, shape, meta, accepted)
        )
        self.telemetry.request_completed(
            endpoint=f"POST {meta['endpoint']}",
            latency_s=time.monotonic() - accepted,
        )

    async def _answer_streaming(
        self,
        writer: asyncio.StreamWriter,
        computation: Computation,
        shape,
        meta: dict,
        accepted: float,
    ) -> None:
        """Chunked NDJSON: accepted, progress ticks, then result/error.

        The subscription is registered *before* the first await so no
        progress tick can slip past; a write failure (client disconnect)
        abandons only this stream -- the shared computation, protected by
        the coalescer's shield, keeps running for everyone else.
        """
        self.telemetry.request_streamed()
        queue = computation.subscribe()
        try:
            self._start_stream(writer)
            await self._send_chunk(writer, dict(meta, event="accepted"))
            task = computation.task
            assert task is not None
            while not task.done():
                event = await queue.get()
                if event.get("event") in _TERMINAL_EVENTS:
                    break
                await self._send_chunk(writer, event)
            try:
                outcome = await self.coalescer.wait(computation)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                envelope = envelope_from_exception(exc)
                envelope["event"] = "error"
                await self._send_chunk(writer, envelope)
                self._end_stream(writer)
                self.telemetry.request_failed()
                return
            document = self._result_document(outcome, shape, meta, accepted)
            document["event"] = "result"
            await self._send_chunk(writer, document)
            self._end_stream(writer)
            self.telemetry.request_completed(
                endpoint=f"POST {meta['endpoint']}",
                latency_s=time.monotonic() - accepted,
            )
        finally:
            computation.unsubscribe(queue)
