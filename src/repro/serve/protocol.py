"""Wire protocol of the ``repro serve`` evaluation service.

The service deliberately invents no new request language: the POST body
of ``/run`` *is* an :class:`~repro.api.ExperimentSpec` JSON document (the
same file ``repro run`` takes) and the body of ``/search`` is a
:class:`~repro.search.spec.SearchSpec`.  This module is the thin seam
between HTTP and the session API:

* :func:`parse_run_request` / :func:`parse_search_request` decode and
  validate a request body + query string into a spec and per-request
  options;
* :func:`run_coalesce_key` computes the request's *coalesce key* -- a
  sha256 over the resolved design fingerprints, the per-category workload
  content fingerprints, and the resolved sampling options.  Two requests
  with the same key are guaranteed to produce bitwise-identical results
  (evaluations are pure functions of design x workload x options), so the
  server lets them share one in-flight computation.  The key is
  *content*-addressed through the PR 5 fingerprints: a spec naming
  ``"BERT"`` and a spec inlining an identical WorkloadSpec coalesce, and
  ``quick=None`` on a quick spec coalesces with an explicit ``quick``
  override that resolves to the same sampling;
* :func:`run_payload` / :func:`search_payload` shape the response
  documents.  The ``"rows"`` / ``"cache"`` fields are exactly the
  ``repro run --json`` / ``repro search --json`` payloads -- the
  bitwise-identity contract the goldens lock -- with a ``"serve"`` block
  of per-request metadata (coalesced?, key, latencies) layered alongside.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import Mapping
from urllib.parse import parse_qsl, urlsplit

from repro.api import ExperimentResult, ExperimentSpec, SearchResult
from repro.dse.evaluate import design_fingerprint
from repro.search.spec import SearchSpec

#: Bump on incompatible changes to the request/response shapes.
PROTOCOL_VERSION = 1

#: Versions the coalesce-key preimage (a bump splits old/new in-flight keys).
COALESCE_KEY_VERSION = 1


class RequestError(ValueError):
    """A malformed or unanswerable request (maps to HTTP 400)."""

    def __init__(self, message: str, kind: str = "invalid-request") -> None:
        super().__init__(message)
        self.kind = kind


def parse_query(target: str) -> dict[str, str]:
    """The query-string of a request target as a plain dict (last wins)."""
    return dict(parse_qsl(urlsplit(target).query, keep_blank_values=True))


def parse_path(target: str) -> str:
    return urlsplit(target).path or "/"


_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def query_flag(query: Mapping[str, str], name: str) -> bool | None:
    """A tri-state boolean query parameter (absent -> ``None``)."""
    raw = query.get(name)
    if raw is None:
        return None
    lowered = raw.strip().lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise RequestError(
        f"query parameter {name}={raw!r} is not a boolean "
        f"(accepted: {sorted(_TRUE | _FALSE)})"
    )


def _decode_json_body(body: bytes, what: str) -> Mapping:
    if not body:
        raise RequestError(f"{what} request needs a JSON body")
    try:
        data = json.loads(body)
    except json.JSONDecodeError as exc:
        raise RequestError(f"{what} body is not valid JSON: {exc}") from None
    if not isinstance(data, Mapping):
        raise RequestError(f"{what} body must be a JSON object")
    return data


def parse_run_request(
    body: bytes, query: Mapping[str, str]
) -> tuple[ExperimentSpec, bool | None, bool]:
    """Decode a ``POST /run`` request -> (spec, quick override, stream?)."""
    data = _decode_json_body(body, "run")
    try:
        spec = ExperimentSpec.from_dict(data)
    except ValueError as exc:
        raise RequestError(str(exc)) from None
    return spec, query_flag(query, "quick"), bool(query_flag(query, "stream"))


def parse_search_request(
    body: bytes, query: Mapping[str, str]
) -> tuple[SearchSpec, bool | None, bool]:
    """Decode a ``POST /search`` request -> (spec, quick override, stream?).

    A spec naming a ``checkpoint`` is rejected: honoring it would let a
    remote client make the server write an arbitrary file path, and a
    per-client archive file makes no sense for a shared computation.
    Checkpointing stays a ``repro search`` CLI feature.
    """
    data = _decode_json_body(body, "search")
    try:
        spec = SearchSpec.from_dict(data)
    except ValueError as exc:
        raise RequestError(str(exc)) from None
    if spec.checkpoint is not None:
        raise RequestError(
            "search specs served over /search must not name a 'checkpoint' "
            "(the server will not write client-chosen paths); drop the field "
            "and checkpoint with 'repro search --checkpoint' locally instead"
        )
    return spec, query_flag(query, "quick"), bool(query_flag(query, "stream"))


def _digest(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_coalesce_key(spec: ExperimentSpec, quick: bool | None = None) -> str:
    """The content-addressed identity of a ``/run`` request.

    Built from what the evaluation is actually a function of -- resolved
    design fingerprints, per-category workload content fingerprints, and
    the resolved :class:`SimulationOptions` -- rather than the spec text,
    so cosmetic differences (name, title, design aliases, an inline
    WorkloadSpec vs the preset it equals) still coalesce, and anything
    result-changing cannot.
    """
    settings = spec.eval_settings(quick=quick)
    categories = spec.resolve_categories()
    return _digest({
        "v": COALESCE_KEY_VERSION,
        "endpoint": "run",
        "designs": [design_fingerprint(d) for d in spec.resolve_designs()],
        "categories": [c.value for c in categories],
        "suites": {
            c.value: [w.fingerprint for w in settings.suite(c)]
            for c in categories
        },
        "quick": settings.quick,
        "options": settings.options.to_dict(),
    })


def search_coalesce_key(spec: SearchSpec, quick: bool | None = None) -> str:
    """The identity of a ``/search`` request.

    A search is a function of the space, strategy (kind/seed/budget/
    population), objectives, and evaluation settings; candidate designs
    are chosen *by* the strategy, so the spec's own canonical form plus
    the resolved suite fingerprints identify it.
    """
    settings = spec.eval_settings(quick=quick)
    objectives = spec.resolve_objectives()
    payload = spec.to_dict()
    payload.pop("name", None)
    payload.pop("title", None)
    payload.pop("checkpoint", None)
    return _digest({
        "v": COALESCE_KEY_VERSION,
        "endpoint": "search",
        "spec": payload,
        "suites": {
            c.value: [w.fingerprint for w in settings.suite(c)]
            for c in objectives.categories
        },
        "quick": settings.quick,
        "options": settings.options.to_dict(),
    })


def run_payload(
    result: ExperimentResult, spec: ExperimentSpec, serve_meta: dict
) -> dict:
    """The ``/run`` response document: the CLI payload + serve metadata.

    ``spec`` is *this request's* spec.  A coalesced waiter shares the
    owner's computed ``result`` (safe: equal coalesce keys imply
    identical rows), but the document's name/title fields must come from
    the waiter's own spec -- the coalesce key deliberately ignores them,
    so the owner's may differ.  Re-anchoring the result on the request
    spec keeps every response bitwise-equal to ``repro run --json`` of
    the spec that was actually posted.
    """
    if result.spec is not spec:
        result = replace(result, spec=spec)
    payload = result.to_dict()
    payload["serve"] = dict(serve_meta, v=PROTOCOL_VERSION)
    return payload


def search_payload(result: SearchResult, spec: SearchSpec, serve_meta: dict) -> dict:
    """The ``/search`` response document: CLI payload + serve metadata.

    As with :func:`run_payload`, the shared result is re-anchored on the
    requesting spec's name/title so coalesced waiters whose specs differ
    only cosmetically each see their own.
    """
    if result.name != spec.name or result.title != spec.title:
        result = replace(result, name=spec.name, title=spec.title)
    payload = result.to_dict()
    payload["serve"] = dict(serve_meta, v=PROTOCOL_VERSION)
    return payload
