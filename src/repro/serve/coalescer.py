"""In-flight request coalescing keyed by content fingerprints.

The serve deployment sees bursts of duplicate work: a dashboard refresh
fans the same Fig. 8 spec out to every panel, CI re-posts the experiment
it just posted.  The two-tier persistent cache already makes the *second*
evaluation cheap -- but only once the first has finished.  The coalescer
closes the in-flight window: requests whose
:func:`~repro.serve.protocol.run_coalesce_key` match while a computation
is still running *join* that computation instead of starting another, so
N identical simultaneous requests cost exactly one evaluation.

Correctness hinges on two properties:

* **joining is safe** because the key is content-addressed over design /
  workload fingerprints and resolved sampling options -- equal keys imply
  bitwise-identical results (see ``protocol.py``);
* **joiners cannot hurt each other**: every waiter awaits the shared
  task through :func:`asyncio.shield`, so a disconnecting client cancels
  only its own wait -- the computation keeps running for the remaining
  waiters (and for the cache).  Only when the *owner* explicitly aborts
  (server shutdown past the drain deadline) is the task itself cancelled.

Progress events fan out the same way: the computation publishes
``(done, total)`` ticks from the evaluation thread via
``loop.call_soon_threadsafe`` and every streaming waiter subscribes its
own queue, so one underlying run drives any number of progress streams.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Iterator

#: A progress/status event published to streaming subscribers.
Event = dict


class Computation:
    """One shared in-flight evaluation: a task plus its subscribers."""

    def __init__(self, key: str, loop: asyncio.AbstractEventLoop) -> None:
        self.key = key
        self.created = time.monotonic()
        self.waiters = 0
        self._loop = loop
        self._subscribers: set[asyncio.Queue] = set()
        self.task: asyncio.Task | None = None  # set by the coalescer

    # -- progress fan-out ---------------------------------------------

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        self._subscribers.discard(queue)

    def publish(self, event: Event) -> None:
        """Deliver an event to every subscriber (event-loop thread only)."""
        for queue in list(self._subscribers):
            queue.put_nowait(event)

    def publish_threadsafe(self, event: Event) -> None:
        """Deliver an event from an evaluation thread."""
        self._loop.call_soon_threadsafe(self.publish, event)

    def progress_callback(self) -> Callable[[int, int], None]:
        """A ``(done, total)`` callback wired to :meth:`publish_threadsafe`."""

        def progress(done: int, total: int) -> None:
            self.publish_threadsafe(
                {"event": "progress", "done": done, "total": total}
            )

        return progress


class RequestCoalescer:
    """Share one computation among all identically-keyed in-flight requests."""

    def __init__(self) -> None:
        self._in_flight: dict[str, Computation] = {}

    def __len__(self) -> int:
        return len(self._in_flight)

    def __iter__(self) -> Iterator[Computation]:
        return iter(self._in_flight.values())

    def join(
        self,
        key: str,
        start: Callable[[Computation], Awaitable[object]],
    ) -> tuple[Computation, bool]:
        """Join the in-flight computation for ``key``, starting it if new.

        ``start`` is called exactly once per key while in flight -- with
        the fresh :class:`Computation`, whose progress callback it should
        thread into the evaluation -- and must return an awaitable of the
        result.  Returns ``(computation, coalesced)`` where ``coalesced``
        is ``True`` when an existing computation was joined.

        Must be called from the event-loop thread (the server's request
        handlers are coroutines, so this holds by construction; no lock
        is needed because the loop serializes us).
        """
        existing = self._in_flight.get(key)
        if existing is not None:
            existing.waiters += 1
            return existing, True

        loop = asyncio.get_running_loop()
        computation = Computation(key, loop)
        computation.waiters = 1
        computation.task = loop.create_task(start(computation))
        self._in_flight[key] = computation
        computation.task.add_done_callback(
            lambda _task: self._finish(key, computation)
        )
        return computation, False

    def _finish(self, key: str, computation: Computation) -> None:
        if self._in_flight.get(key) is computation:
            del self._in_flight[key]
        task = computation.task
        assert task is not None
        if task.cancelled():
            computation.publish({"event": "cancelled"})
        elif task.exception() is not None:
            computation.publish(
                {"event": "error", "message": str(task.exception())}
            )
        else:
            computation.publish({"event": "done"})

    async def wait(self, computation: Computation) -> object:
        """Await the shared result without endangering other waiters.

        ``asyncio.shield`` decouples this waiter's cancellation (client
        disconnect, timeout) from the shared task: our own await raises
        ``CancelledError`` but the computation -- and everyone else
        waiting on it -- continues unharmed.
        """
        task = computation.task
        assert task is not None
        try:
            return await asyncio.shield(task)
        finally:
            computation.waiters -= 1

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for all in-flight computations (graceful shutdown).

        Returns ``True`` when everything finished inside ``timeout``;
        on ``False`` the stragglers were cancelled.
        """
        tasks = [c.task for c in self._in_flight.values() if c.task is not None]
        if not tasks:
            return True
        done, pending = await asyncio.wait(tasks, timeout=timeout)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        return not pending
