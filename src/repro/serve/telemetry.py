"""Per-request and aggregate telemetry of the ``repro serve`` service.

One :class:`ServeTelemetry` instance lives for the lifetime of the
server, built on the unified :class:`repro.obs.metrics.MetricsRegistry`.
Request handlers record events through it (received, coalesced,
computed, failed) and every computation folds in its latency split --
*queue* time (accepted -> evaluation thread picks it up) and *compute*
time (evaluation wall clock) -- plus the per-run persistent-cache delta,
so ``/stats`` can answer the deployment questions directly:

* is coalescing working?  ``coalesce.hits`` vs ``coalesce.computations``
  (the acceptance bar: 8 identical concurrent requests -> 1 computation,
  7 hits);
* is the cache warm?  ``cache.network_hits`` climbing while
  ``cache.layer_lookups`` stays flat;
* where does latency go?  queue vs compute totals / max, plus the
  per-endpoint p50/p90/max summaries under ``latency.endpoints``.

The same registry renders as Prometheus text exposition format behind
``GET /metrics``, so one set of counters backs both views.  Metrics are
individually locked and only ever increase, so readers need no further
coordination.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import MetricsRegistry, cache_metrics
from repro.runtime.cache import CacheStats

#: Bump on incompatible changes to the ``/stats`` payload shape.
STATS_VERSION = 1

#: Additive ``/stats`` schema revision: 2 added ``schema_version``,
#: ``latency.endpoints`` (p50/p90/max per endpoint), and ``GET /metrics``.
STATS_SCHEMA_VERSION = 2


def _series_dict(summary: dict) -> dict:
    """The legacy total/max/mean latency block from a histogram summary."""
    count = int(summary["count"])
    total_ms = summary["sum"]
    return {
        "count": count,
        "total_ms": round(total_ms, 3),
        "max_ms": round(summary["max"], 3),
        "mean_ms": round(total_ms / count, 3) if count else 0.0,
    }


class ServeTelemetry:
    """Thread-safe counters behind ``/stats`` and ``GET /metrics``."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._started = time.monotonic()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._received = self.registry.counter(
            "repro_serve_requests_received_total",
            "Requests accepted, by endpoint.",
            labelnames=("endpoint",),
        )
        self._completed = self.registry.counter(
            "repro_serve_requests_completed_total",
            "Requests answered successfully.",
        )
        self._errors = self.registry.counter(
            "repro_serve_requests_errors_total",
            "Requests answered with an error envelope.",
        )
        self._streamed = self.registry.counter(
            "repro_serve_requests_streamed_total",
            "Requests served as progress streams.",
        )
        self._coalesce_hits = self.registry.counter(
            "repro_serve_coalesce_hits_total",
            "Requests that joined an in-flight identical computation.",
        )
        self._computations = self.registry.counter(
            "repro_serve_computations_total",
            "Distinct evaluations actually computed.",
        )
        self._in_flight = self.registry.gauge(
            "repro_serve_computations_in_flight",
            "Evaluations currently running.",
        )
        self._uptime = self.registry.gauge(
            "repro_serve_uptime_seconds",
            "Seconds since the server started.",
        )
        self._queue = self.registry.histogram(
            "repro_serve_queue_ms",
            "Queue latency: accepted to evaluation start, in ms.",
        )
        self._compute = self.registry.histogram(
            "repro_serve_compute_ms",
            "Compute latency: evaluation wall clock, in ms.",
        )
        self._endpoint_latency = self.registry.histogram(
            "repro_serve_request_ms",
            "End-to-end request latency by endpoint, in ms.",
            labelnames=("endpoint",),
        )
        self._cache = CacheStats()
        self._cache_lock = threading.Lock()

    # -- recording -----------------------------------------------------

    def request_received(self, endpoint: str) -> None:
        self._received.inc(endpoint=endpoint)

    def request_completed(
        self, endpoint: str | None = None, latency_s: float | None = None
    ) -> None:
        self._completed.inc()
        if endpoint is not None and latency_s is not None:
            self._endpoint_latency.observe(latency_s * 1000.0, endpoint=endpoint)

    def request_failed(self) -> None:
        self._errors.inc()

    def request_streamed(self) -> None:
        self._streamed.inc()

    def coalesce_hit(self) -> None:
        """A request joined an already-in-flight identical computation."""
        self._coalesce_hits.inc()

    def computation_started(self) -> None:
        self._computations.inc()
        self._in_flight.inc()

    def computation_finished(
        self,
        queue_s: float,
        compute_s: float,
        cache_delta: CacheStats | None = None,
    ) -> None:
        self._in_flight.dec()
        self._queue.observe(queue_s * 1000.0)
        self._compute.observe(compute_s * 1000.0)
        if cache_delta is not None:
            with self._cache_lock:
                self._cache.merge(cache_delta)

    # -- reading -------------------------------------------------------

    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def as_dict(self, session_cache: CacheStats | None = None) -> dict:
        """The ``/stats`` payload.

        ``session_cache`` (the shared session's lifetime totals) is
        preferred for the ``cache`` block when given; the telemetry's own
        per-computation merge is the fallback for embedders without a
        session handle.  The two agree on a quiet server.
        """
        with self._cache_lock:
            cache = (
                session_cache if session_cache is not None else self._cache
            ).snapshot()
        endpoints = {}
        for key in self._endpoint_latency.label_keys():
            summary = self._endpoint_latency.summary(endpoint=key[0])
            endpoints[key[0]] = {
                "count": int(summary["count"]),
                "p50_ms": round(summary["p50"], 3),
                "p90_ms": round(summary["p90"], 3),
                "max_ms": round(summary["max"], 3),
            }
        received = self._received.values()
        return {
            "v": STATS_VERSION,
            "schema_version": STATS_SCHEMA_VERSION,
            "uptime_s": round(self.uptime_s(), 3),
            "requests": {
                "received": int(sum(received.values())),
                "by_endpoint": {
                    key[0]: int(value) for key, value in sorted(received.items())
                },
                "completed": int(self._completed.value()),
                "errors": int(self._errors.value()),
                "streamed": int(self._streamed.value()),
            },
            "coalesce": {
                "computations": int(self._computations.value()),
                "hits": int(self._coalesce_hits.value()),
                "in_flight": int(self._in_flight.value()),
            },
            "latency": {
                "queue": _series_dict(self._queue.summary()),
                "compute": _series_dict(self._compute.summary()),
                "endpoints": endpoints,
            },
            "cache": cache.as_dict(),
        }

    def render_prometheus(self, session_cache: CacheStats | None = None) -> str:
        """The ``GET /metrics`` body: registry + cache counters."""
        self._uptime.set(round(self.uptime_s(), 3))
        text = self.registry.render()
        with self._cache_lock:
            cache = (
                session_cache if session_cache is not None else self._cache
            ).snapshot()
        cache_registry = MetricsRegistry()
        cache_metrics(cache_registry, cache)
        return text + cache_registry.render()
