"""Per-request and aggregate telemetry of the ``repro serve`` service.

One :class:`ServeTelemetry` instance lives for the lifetime of the
server.  Request handlers record events through it (received, coalesced,
computed, failed) and every computation folds in its latency split --
*queue* time (accepted -> evaluation thread picks it up) and *compute*
time (evaluation wall clock) -- plus the per-run persistent-cache delta,
so ``/stats`` can answer the deployment questions directly:

* is coalescing working?  ``coalesce.hits`` vs ``coalesce.computations``
  (the acceptance bar: 8 identical concurrent requests -> 1 computation,
  7 hits);
* is the cache warm?  ``cache.network_hits`` climbing while
  ``cache.layer_lookups`` stays flat;
* where does latency go?  queue vs compute totals / max.

Everything is guarded by one lock and exported as a plain JSON dict by
:meth:`ServeTelemetry.as_dict`; counters only ever increase, so readers
need no coordination beyond the GIL-atomic snapshot under the lock.
"""

from __future__ import annotations

import threading
import time

from repro.runtime.cache import CacheStats

#: Bump on incompatible changes to the ``/stats`` payload shape.
STATS_VERSION = 1


class _LatencyAccumulator:
    """Running total/max/count of a latency series, in milliseconds."""

    __slots__ = ("total_ms", "max_ms", "count")

    def __init__(self) -> None:
        self.total_ms = 0.0
        self.max_ms = 0.0
        self.count = 0

    def record(self, seconds: float) -> None:
        ms = seconds * 1000.0
        self.total_ms += ms
        self.max_ms = max(self.max_ms, ms)
        self.count += 1

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "mean_ms": round(self.total_ms / self.count, 3) if self.count else 0.0,
        }


class ServeTelemetry:
    """Thread-safe counters behind the ``/stats`` endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._received: dict[str, int] = {}
        self._completed = 0
        self._errors = 0
        self._coalesce_hits = 0
        self._computations = 0
        self._in_flight = 0
        self._streamed = 0
        self._queue = _LatencyAccumulator()
        self._compute = _LatencyAccumulator()
        self._cache = CacheStats()

    # -- recording -----------------------------------------------------

    def request_received(self, endpoint: str) -> None:
        with self._lock:
            self._received[endpoint] = self._received.get(endpoint, 0) + 1

    def request_completed(self) -> None:
        with self._lock:
            self._completed += 1

    def request_failed(self) -> None:
        with self._lock:
            self._errors += 1

    def request_streamed(self) -> None:
        with self._lock:
            self._streamed += 1

    def coalesce_hit(self) -> None:
        """A request joined an already-in-flight identical computation."""
        with self._lock:
            self._coalesce_hits += 1

    def computation_started(self) -> None:
        with self._lock:
            self._computations += 1
            self._in_flight += 1

    def computation_finished(
        self,
        queue_s: float,
        compute_s: float,
        cache_delta: CacheStats | None = None,
    ) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            self._queue.record(queue_s)
            self._compute.record(compute_s)
            if cache_delta is not None:
                self._cache.merge(cache_delta)

    # -- reading -------------------------------------------------------

    def as_dict(self, session_cache: CacheStats | None = None) -> dict:
        """The ``/stats`` payload.

        ``session_cache`` (the shared session's lifetime totals) is
        preferred for the ``cache`` block when given; the telemetry's own
        per-computation merge is the fallback for embedders without a
        session handle.  The two agree on a quiet server.
        """
        with self._lock:
            cache = (session_cache if session_cache is not None else self._cache)
            return {
                "v": STATS_VERSION,
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests": {
                    "received": sum(self._received.values()),
                    "by_endpoint": dict(sorted(self._received.items())),
                    "completed": self._completed,
                    "errors": self._errors,
                    "streamed": self._streamed,
                },
                "coalesce": {
                    "computations": self._computations,
                    "hits": self._coalesce_hits,
                    "in_flight": self._in_flight,
                },
                "latency": {
                    "queue": self._queue.as_dict(),
                    "compute": self._compute.as_dict(),
                },
                "cache": cache.as_dict(),
            }
