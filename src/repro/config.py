"""Architecture configurations for the Griffin design space.

The paper (Sec. II-III) describes every architecture as an optimized dense
GEMM core plus a *borrowing configuration*: how far a multiplier may reach to
replace a zero operand with a nonzero one.  Distances are expressed along
three dimensions of the blocked operand tensors (Figure 1):

* ``d1`` -- time: future ``K0``-slices of the reduction (K) dimension,
* ``d2`` -- lane: adjacent positions inside the ``K0``-wide dot-product unit,
* ``d3`` -- neighbouring PE: another output column (for matrix B) or another
  output row (for matrix A).

This module defines the configuration dataclasses for the dense baseline and
the ``Sparse.A`` / ``Sparse.B`` / ``Sparse.AB`` / Griffin families, the
canonical short notation used throughout the paper's figures (for example
``"B(4,0,1,on)"``), and validation of the fan-in constraints the paper uses
to bound its design-space sweeps.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum


class ModelCategory(Enum):
    """The four DNN model categories of Table I, named by (A, B) sparsity."""

    DENSE = "DNN.dense"
    A = "DNN.A"  # sparse activations, dense weights
    B = "DNN.B"  # dense activations, sparse weights
    AB = "DNN.AB"  # sparse activations and weights

    @property
    def activations_sparse(self) -> bool:
        return self in (ModelCategory.A, ModelCategory.AB)

    @property
    def weights_sparse(self) -> bool:
        return self in (ModelCategory.B, ModelCategory.AB)

    @staticmethod
    def from_sparsity(activations_sparse: bool, weights_sparse: bool) -> "ModelCategory":
        """Classify a model by which of its tensors are sparse."""
        if activations_sparse and weights_sparse:
            return ModelCategory.AB
        if activations_sparse:
            return ModelCategory.A
        if weights_sparse:
            return ModelCategory.B
        return ModelCategory.DENSE

    @staticmethod
    def from_text(text: str) -> "ModelCategory":
        """Parse a category name (``"DNN.B"``, ``"B"``, ...), case-insensitive."""
        key = text.strip().lower()
        for category in ModelCategory:
            if key in (category.value.lower(), category.name.lower()):
                return category
        raise ValueError(
            f"unknown model category {text!r}; "
            f"choose from {[c.value for c in ModelCategory]}"
        )


@dataclass(frozen=True)
class CoreGeometry:
    """Spatial unrolling of the dense GEMM core (Figure 1, Table IV).

    The core performs ``m0 * n0 * k0`` MACs per cycle: ``m0 x n0`` PEs, each
    a ``k0``-wide dot-product unit feeding an accumulator (output-stationary
    dataflow).  The paper's configuration is ``(K0, N0, M0) = (16, 16, 4)``.
    """

    k0: int = 16
    n0: int = 16
    m0: int = 4
    frequency_mhz: float = 800.0
    precision_bits: int = 8

    def __post_init__(self) -> None:
        for name in ("k0", "n0", "m0"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency_mhz must be positive, got {self.frequency_mhz}")
        if self.precision_bits not in (4, 8, 16):
            raise ValueError(f"precision_bits must be 4, 8 or 16, got {self.precision_bits}")

    @property
    def macs_per_cycle(self) -> int:
        """Total multipliers in the core (1024 for the paper's config)."""
        return self.k0 * self.n0 * self.m0

    @property
    def num_pes(self) -> int:
        """Number of PEs (dot-product units with private accumulators)."""
        return self.n0 * self.m0

    @property
    def dense_tops(self) -> float:
        """Peak dense throughput in TOPS (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle * self.frequency_mhz * 1e6 / 1e12


#: The paper's core configuration (Table IV): (K0, N0, M0) = (16, 16, 4).
PAPER_CORE = CoreGeometry()


@dataclass(frozen=True)
class BorrowConfig:
    """Borrowing distances along (time, lane, neighbouring-PE) for one matrix.

    A zero operand at blocked position ``(x1, x2, x3)`` may be replaced by a
    nonzero at ``(x1 + i1, x2 + i2, x3 + i3)`` with ``ii <= di``
    (Definitions III.1 / III.2).  ``(0, 0, 0)`` means no borrowing (dense
    behaviour for that matrix).
    """

    d1: int = 0
    d2: int = 0
    d3: int = 0

    def __post_init__(self) -> None:
        for name in ("d1", "d2", "d3"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{name} must be a non-negative integer, got {value!r}")

    @property
    def is_dense(self) -> bool:
        """True when no borrowing is allowed at all."""
        return self.d1 == 0 and self.d2 == 0 and self.d3 == 0

    @property
    def window(self) -> int:
        """Time-lookahead window size (entries visible per stream)."""
        return 1 + self.d1

    @property
    def candidates(self) -> int:
        """Number of candidate donor positions for one zero slot."""
        return (1 + self.d1) * (1 + self.d2) * (1 + self.d3)

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.d1, self.d2, self.d3)

    def __str__(self) -> str:
        return f"({self.d1},{self.d2},{self.d3})"


_NO_BORROW = BorrowConfig(0, 0, 0)


@dataclass(frozen=True)
class ArchConfig:
    """A point in the Griffin design space.

    ``a`` and ``b`` give the borrowing distances for matrices A (activations)
    and B (weights); ``shuffle`` enables the rotation-based fine-grain load
    balancer (Sec. III, Load Balancing).  The dense baseline is
    ``ArchConfig()`` with no borrowing and no shuffle.
    """

    a: BorrowConfig = _NO_BORROW
    b: BorrowConfig = _NO_BORROW
    shuffle: bool = False
    geometry: CoreGeometry = PAPER_CORE
    name: str | None = None

    @property
    def supports_a_sparsity(self) -> bool:
        return not self.a.is_dense

    @property
    def supports_b_sparsity(self) -> bool:
        return not self.b.is_dense

    @property
    def family(self) -> str:
        """One of ``"Dense"``, ``"Sparse.A"``, ``"Sparse.B"``, ``"Sparse.AB"``."""
        if self.supports_a_sparsity and self.supports_b_sparsity:
            return "Sparse.AB"
        if self.supports_a_sparsity:
            return "Sparse.A"
        if self.supports_b_sparsity:
            return "Sparse.B"
        return "Dense"

    @property
    def notation(self) -> str:
        """The paper's short notation, e.g. ``B(4,0,1,on)``."""
        flag = "on" if self.shuffle else "off"
        if self.family == "Dense":
            return "Dense"
        if self.family == "Sparse.A":
            return f"A({self.a.d1},{self.a.d2},{self.a.d3},{flag})"
        if self.family == "Sparse.B":
            return f"B({self.b.d1},{self.b.d2},{self.b.d3},{flag})"
        return (
            f"AB({self.a.d1},{self.a.d2},{self.a.d3},"
            f"{self.b.d1},{self.b.d2},{self.b.d3},{flag})"
        )

    @property
    def label(self) -> str:
        """Display name: the explicit ``name`` if set, else the notation."""
        return self.name if self.name is not None else self.notation

    def __str__(self) -> str:
        return self.label


def dense(geometry: CoreGeometry = PAPER_CORE) -> ArchConfig:
    """The optimized dense baseline core (Sec. II-A)."""
    return ArchConfig(geometry=geometry, name="Baseline")


def sparse_a(
    da1: int,
    da2: int = 0,
    da3: int = 0,
    shuffle: bool = False,
    geometry: CoreGeometry = PAPER_CORE,
    name: str | None = None,
) -> ArchConfig:
    """``Sparse.A(da1, da2, da3)`` -- activation-only sparsity (Def. III.1)."""
    return ArchConfig(
        a=BorrowConfig(da1, da2, da3), shuffle=shuffle, geometry=geometry, name=name
    )


def sparse_b(
    db1: int,
    db2: int = 0,
    db3: int = 0,
    shuffle: bool = False,
    geometry: CoreGeometry = PAPER_CORE,
    name: str | None = None,
) -> ArchConfig:
    """``Sparse.B(db1, db2, db3)`` -- weight-only sparsity (Def. III.2)."""
    return ArchConfig(
        b=BorrowConfig(db1, db2, db3), shuffle=shuffle, geometry=geometry, name=name
    )


def sparse_ab(
    da1: int,
    da2: int,
    da3: int,
    db1: int,
    db2: int,
    db3: int,
    shuffle: bool = False,
    geometry: CoreGeometry = PAPER_CORE,
    name: str | None = None,
) -> ArchConfig:
    """``Sparse.AB(da1..db3)`` -- dual sparsity (Def. IV.1)."""
    return ArchConfig(
        a=BorrowConfig(da1, da2, da3),
        b=BorrowConfig(db1, db2, db3),
        shuffle=shuffle,
        geometry=geometry,
        name=name,
    )


_NOTATION_RE = re.compile(
    r"^\s*(AB|A|B)\s*\(\s*([0-9]+(?:\s*,\s*[0-9]+)*)\s*(?:,\s*(on|off))?\s*\)\s*$",
    re.IGNORECASE,
)


def parse_notation(text: str) -> ArchConfig:
    """Parse the paper's short notation into an :class:`ArchConfig`.

    Accepted forms: ``"Dense"``, ``"A(2,1,0,on)"``, ``"B(4,0,1)"`` and
    ``"AB(2,0,0,2,0,1,on)"``.  The shuffle flag defaults to off.
    """
    if text.strip().lower() in ("dense", "baseline"):
        return dense()
    match = _NOTATION_RE.match(text)
    if match is None:
        raise ValueError(f"unrecognized architecture notation: {text!r}")
    family = match.group(1).upper()
    numbers = [int(tok) for tok in re.split(r"\s*,\s*", match.group(2))]
    shuffle = (match.group(3) or "off").lower() == "on"
    if family == "A":
        if len(numbers) != 3:
            raise ValueError(f"A(...) takes 3 distances, got {len(numbers)}: {text!r}")
        return sparse_a(*numbers, shuffle=shuffle)
    if family == "B":
        if len(numbers) != 3:
            raise ValueError(f"B(...) takes 3 distances, got {len(numbers)}: {text!r}")
        return sparse_b(*numbers, shuffle=shuffle)
    if len(numbers) != 6:
        raise ValueError(f"AB(...) takes 6 distances, got {len(numbers)}: {text!r}")
    return sparse_ab(*numbers, shuffle=shuffle)


@dataclass(frozen=True)
class GriffinArch:
    """The hybrid architecture (Sec. IV-B).

    Griffin is provisioned as a dual-sparse design (``conf_ab``) and *morphs*
    into more aggressive single-sparse configurations when the running model
    is only sparse on one side, reusing the already-paid ABUF/BBUF/MUX/adder
    overheads (Table III).  The published optimal instance uses::

        conf.AB = Sparse.AB(2,0,0,2,0,1,on)
        conf.B  = Sparse.B(8,0,1,on)
        conf.A  = Sparse.A(2,1,1,on)
    """

    conf_ab: ArchConfig = field(
        default_factory=lambda: sparse_ab(2, 0, 0, 2, 0, 1, shuffle=True)
    )
    conf_b: ArchConfig = field(default_factory=lambda: sparse_b(8, 0, 1, shuffle=True))
    conf_a: ArchConfig = field(default_factory=lambda: sparse_a(2, 1, 1, shuffle=True))
    name: str = "Griffin"

    def __post_init__(self) -> None:
        if self.conf_ab.family != "Sparse.AB":
            raise ValueError("conf_ab must be a Sparse.AB configuration")
        if self.conf_b.family != "Sparse.B":
            raise ValueError("conf_b must be a Sparse.B configuration")
        if self.conf_a.family != "Sparse.A":
            raise ValueError("conf_a must be a Sparse.A configuration")

    @property
    def geometry(self) -> CoreGeometry:
        return self.conf_ab.geometry

    def config_for(self, category: ModelCategory) -> ArchConfig:
        """The configuration Griffin morphs into for a model category.

        Dense models run on the dual-sparse datapath with borrowing idle
        (the sparsity logic is clock-gated but its area is still paid).
        """
        if category is ModelCategory.A:
            return self.conf_a
        if category is ModelCategory.B:
            return self.conf_b
        if category is ModelCategory.AB:
            return self.conf_ab
        return ArchConfig(geometry=self.geometry, name=f"{self.name}[dense]")

    @property
    def label(self) -> str:
        return self.name


#: Published optimal design points (Table VI).
SPARSE_B_STAR = sparse_b(4, 0, 1, shuffle=True, name="Sparse.B*")
SPARSE_A_STAR = sparse_a(2, 1, 0, shuffle=True, name="Sparse.A*")
SPARSE_AB_STAR = sparse_ab(2, 0, 0, 2, 0, 1, shuffle=True, name="Sparse.AB*")
GRIFFIN = GriffinArch()
