"""On-chip SRAM and DRAM bandwidth models (Table IV memory configuration)."""

from repro.memory.sram import SramConfig, SramModel, bank_conflict_stall_fraction
from repro.memory.dram import DramModel, dram_stall_factor
from repro.memory.buffers import (
    BufferOccupancy,
    expected_drift,
    fullness_stall_fraction,
    occupancy_from_progress,
)

__all__ = [
    "SramConfig",
    "SramModel",
    "bank_conflict_stall_fraction",
    "DramModel",
    "dram_stall_factor",
    "BufferOccupancy",
    "occupancy_from_progress",
    "fullness_stall_fraction",
    "expected_drift",
]
