"""ABUF/BBUF occupancy and fullness-stall estimation.

The compaction kernel gives every dot-product unit its own front pointer;
physically the units of one row share an ABUF, so the *spread* between the
fastest and slowest front in a row must fit in the provisioned window.
This module quantifies that: given a tile's per-unit schedule lengths it
estimates the occupancy distribution and the residual stall fraction when
drift exceeds the buffer -- the "ABUF/BBUF fullness" stall source the paper
lists (Sec. V), which the engine charges alongside bank conflicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BufferOccupancy:
    """Occupancy statistics of a shared operand buffer over one tile."""

    depth: int
    mean_occupancy: float
    peak_spread: float  # max front drift between units sharing the buffer

    @property
    def utilization(self) -> float:
        return min(1.0, self.mean_occupancy / self.depth) if self.depth else 0.0

    @property
    def overflow(self) -> float:
        """How far the drift exceeds the provisioned depth (0 when it fits)."""
        return max(0.0, self.peak_spread - self.depth)


def occupancy_from_progress(progress: np.ndarray, depth: int) -> BufferOccupancy:
    """Occupancy of a buffer shared by units with the given progress counts.

    ``progress`` holds each sharing unit's consumed original positions at
    some instant; the buffer must retain everything between the slowest and
    fastest unit plus the lookahead window.
    """
    progress = np.asarray(progress, dtype=float)
    if progress.size == 0:
        return BufferOccupancy(depth=depth, mean_occupancy=0.0, peak_spread=0.0)
    spread = float(progress.max() - progress.min())
    mean_occ = min(float(depth), spread + 1.0)
    return BufferOccupancy(depth=depth, mean_occupancy=mean_occ, peak_spread=spread + 1.0)


def fullness_stall_fraction(
    unit_cycles: np.ndarray,
    t_steps: int,
    depth: int,
) -> float:
    """Residual stall fraction from front drift exceeding the buffer.

    Units that finish early keep their final window pinned until the
    slowest unit catches up; the fraction of stream positions that must be
    re-fetched (or waited for) is the average drift beyond the provisioned
    depth, normalized by the tile length.  A random-walk model of the drift
    (variance grows linearly in T) gives the expected overflow in closed
    form, so the engine can charge it without tracking every cycle.
    """
    unit_cycles = np.asarray(unit_cycles, dtype=float)
    if unit_cycles.size <= 1 or t_steps <= 0 or depth <= 0:
        return 0.0
    spread = float(unit_cycles.max() - unit_cycles.min())
    if spread <= depth:
        return 0.0
    overflow = spread - depth
    return min(0.25, overflow / t_steps)


def expected_drift(t_steps: int, density: float, units: int) -> float:
    """Expected peak front drift between units on an i.i.d. tile.

    Per-unit progress is a sum of i.i.d. increments, so the spread of
    ``units`` random walks after ``t_steps`` steps is approximately
    ``2 sigma sqrt(2 ln units)`` with ``sigma = sqrt(t p (1-p))``.
    """
    if units <= 1 or t_steps <= 0:
        return 0.0
    variance = t_steps * max(density * (1.0 - density), 0.0)
    return 2.0 * math.sqrt(variance) * math.sqrt(2.0 * math.log(max(units, 2)))
