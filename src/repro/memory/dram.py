"""DRAM bandwidth check (Table IV: 50 GB/s, "enough to avoid any drop").

The paper provisions 50 GB/s of DRAM bandwidth so off-chip traffic never
throttles the core.  We keep the check anyway: a layer whose operand traffic
per achieved cycle would exceed the budget gets its cycles stretched, which
matters for aggressive speculative configurations (very deep borrowing on a
memory-bound layer) and for users re-running the harness with smaller
budgets.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramModel:
    """Off-chip memory bandwidth budget."""

    bandwidth_gbps: float = 50.0

    def bytes_per_cycle(self, frequency_mhz: float) -> float:
        return self.bandwidth_gbps * 1e9 / (frequency_mhz * 1e6)


def dram_stall_factor(
    traffic_bytes: float,
    cycles: float,
    frequency_mhz: float,
    dram: DramModel | None = None,
) -> float:
    """Multiplier (>= 1) stretching cycles to fit the DRAM budget."""
    dram = dram or DramModel()
    if cycles <= 0:
        return 1.0
    required = traffic_bytes / cycles
    available = dram.bytes_per_cycle(frequency_mhz)
    return max(1.0, required / available)


def layer_traffic_bytes(
    m: int, k: int, n: int, weight_density: float, word_bytes: int = 1,
    metadata_bits: int = 0, output_bytes: int = 1,
) -> float:
    """Off-chip traffic for one GEMM: A once, compressed B once, C once.

    Weight compression ships only the nonzero values plus per-element
    metadata; activations and outputs move uncompressed (the paper's
    architectures keep A uncompressed in ASRAM for on-the-fly skipping).
    """
    a_bytes = m * k * word_bytes
    b_words = k * n * weight_density
    b_bytes = b_words * (word_bytes + metadata_bits / 8.0)
    c_bytes = m * n * output_bytes
    return a_bytes + b_bytes + c_bytes
