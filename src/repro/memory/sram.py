"""On-chip SRAM model: capacity, bandwidth provisioning, bank conflicts.

The paper's baseline memory (Table IV) is a 512 kB ASRAM at 51.2 GB/s and a
32 kB BSRAM at 204.8 GB/s.  Sparse designs provision SRAM bandwidth
proportionally to their speedup ("to exploit the full sparsity speedup, SRAM
BW should be equal or more than the multiplication of the normalized speedup
and the baseline bandwidth"), which the cost model charges for.  Residual
*bank conflicts* remain: sparse fetch-ahead issues an irregular number of
requests per cycle across banks, and two requests landing in one bank
serialize.  We model that with a balls-in-bins expectation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SramConfig:
    """One SRAM macro's provisioning."""

    capacity_kib: int
    bandwidth_gbps: float
    banks: int = 16

    def __post_init__(self) -> None:
        if self.capacity_kib <= 0 or self.bandwidth_gbps <= 0 or self.banks <= 0:
            raise ValueError("SRAM capacity, bandwidth and banks must be positive")

    def words_per_cycle(self, frequency_mhz: float, word_bytes: int = 1) -> float:
        """Peak words deliverable per cycle at the given clock."""
        return self.bandwidth_gbps * 1e9 / (frequency_mhz * 1e6) / word_bytes


#: Table IV baseline memory configuration.
BASELINE_ASRAM = SramConfig(capacity_kib=512, bandwidth_gbps=51.2)
BASELINE_BSRAM = SramConfig(capacity_kib=32, bandwidth_gbps=204.8)


def bank_conflict_stall_fraction(requests_per_cycle: float, banks: int = 16) -> float:
    """Expected extra-cycle fraction from bank conflicts.

    ``r`` random requests over ``b`` banks serialize at the hottest bank:
    the cycle takes ``E[max load]`` bank accesses instead of ``ceil(r/b)``.
    For the small ``r/b`` ratios of this design we use the standard
    balls-in-bins expectation ``E[max] ~= r/b + sqrt(2 (r/b) ln b)`` (for
    ``r >= b``) / the collision-probability form below ``b``, yielding
    stall fractions of a few percent -- matching the paper's note that its
    pipeline "considers stalls due to ... SRAM bank conflicts" without them
    dominating.
    """
    if requests_per_cycle <= 1.0 or banks <= 1:
        return 0.0
    load = requests_per_cycle / banks
    if load < 1.0:
        # Probability some bank receives >= 2 of the r requests (birthday
        # collision), costing one extra cycle when it happens.
        r = requests_per_cycle
        p_no_collision = math.exp(-r * (r - 1) / (2.0 * banks))
        return (1.0 - p_no_collision) * (1.0 / banks)
    expected_max = load + math.sqrt(2.0 * load * math.log(banks))
    return max(0.0, expected_max / max(load, 1e-9) - 1.0) * load / (load + 1.0) * 0.1


@dataclass(frozen=True)
class SramModel:
    """Bandwidth/stall model for one architecture's SRAM subsystem.

    ``bw_scale`` is the provisioned bandwidth multiple over the dense
    baseline (the ideal-speedup cap of the borrowing windows).
    """

    asram: SramConfig = BASELINE_ASRAM
    bsram: SramConfig = BASELINE_BSRAM
    bw_scale_a: float = 1.0
    bw_scale_b: float = 1.0

    def stall_fraction(self, a_fetch_rate: float, b_fetch_rate: float) -> float:
        """Combined stall fraction for the given per-cycle fetch multiples.

        Fetch rates are in units of the dense baseline's words/cycle; the
        provisioned scaling absorbs the average, conflicts absorb the rest.
        """
        a_excess = max(0.0, a_fetch_rate / max(self.bw_scale_a, 1e-9) - 1.0)
        b_excess = max(0.0, b_fetch_rate / max(self.bw_scale_b, 1e-9) - 1.0)
        conflict = bank_conflict_stall_fraction(
            a_fetch_rate * self.asram.banks / max(self.bw_scale_a, 1e-9), self.asram.banks
        )
        return a_excess + b_excess + conflict
