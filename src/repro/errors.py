"""Shared JSON error envelope for CLI verbs and server responses.

Every user-facing failure path -- a CLI verb rejecting a bad design name,
``repro serve`` answering a malformed request, the serve client surfacing
a remote failure -- speaks one structured shape::

    {"error": {"kind": "invalid-request", "message": "...", "detail": ...}}

``kind`` is a stable machine-readable slug (scripts and tests branch on
it; the message text is free to improve), ``message`` is the one-line
human summary, and ``detail`` is an optional JSON payload with anything
structured the failure can offer (offending token, accepted forms).

The CLI keeps its historical ``error: <message>`` stderr line (derived
from the envelope, so both surfaces can never drift apart) and switches
to the raw JSON envelope under ``repro --json-errors`` -- what scripted
callers parse.  The HTTP server returns the envelope as the response
body of every non-2xx status (see ``docs/serve.md``).
"""

from __future__ import annotations

import json
import sys
from typing import IO, Mapping

from repro.obs import trace as _obs_trace

#: Envelope schema version (bump on incompatible shape changes).
ERROR_ENVELOPE_VERSION = 1

#: Exception type -> default ``kind`` slug for :func:`envelope_from_exception`.
_DEFAULT_KINDS: tuple[tuple[type[BaseException], str], ...] = (
    (ValueError, "invalid-request"),
    (KeyError, "invalid-request"),
    (TypeError, "invalid-request"),
    (TimeoutError, "timeout"),
    (ConnectionError, "connection-error"),
    (OSError, "io-error"),
)


def error_envelope(
    kind: str, message: str, detail: object | None = None
) -> dict:
    """Build the shared error envelope.

    ``kind`` should be a short kebab-case slug (``"invalid-request"``,
    ``"evaluation-error"``, ``"io-error"``); ``detail`` any JSON-able
    payload worth machine-reading, omitted from the envelope when
    ``None``.
    """
    error: dict = {
        "v": ERROR_ENVELOPE_VERSION,
        "kind": str(kind),
        "message": str(message),
    }
    if detail is not None:
        error["detail"] = detail
    # When a tracer is active (--trace on the CLI, a traced server), stamp
    # its id so the failure correlates with the exported trace.  Untraced
    # envelopes are byte-for-byte what they always were.
    trace_id = _obs_trace.current_trace_id()
    if trace_id is not None:
        error["trace_id"] = trace_id
    return {"error": error}


def envelope_from_exception(
    exc: BaseException, kind: str | None = None, detail: object | None = None
) -> dict:
    """Wrap an exception, mapping its type to a default ``kind``.

    ``KeyError`` string-quotes its argument in ``str()``, so the message
    is unwrapped to the bare key for readability.
    """
    if kind is None:
        kind = "internal-error"
        for exc_type, slug in _DEFAULT_KINDS:
            if isinstance(exc, exc_type):
                kind = slug
                break
    message = str(exc) or type(exc).__name__
    if isinstance(exc, KeyError) and exc.args:
        message = f"missing key: {exc.args[0]}"
    return error_envelope(kind, message, detail=detail)


def error_message(envelope: Mapping) -> str:
    """The envelope's human-readable message (defensive on shape)."""
    error = envelope.get("error")
    if not isinstance(error, Mapping):
        return "unknown error"
    return str(error.get("message", "unknown error"))


def format_error(envelope: Mapping) -> str:
    """The CLI's one-line stderr rendering: ``error: <message>``."""
    return f"error: {error_message(envelope)}"


def print_error(
    envelope: Mapping, as_json: bool = False, stream: IO[str] | None = None
) -> None:
    """Print the envelope for a CLI consumer.

    Human mode emits the stable ``error: ...`` line; ``as_json`` emits
    the whole envelope as one JSON document (what ``repro --json-errors``
    and the serve client's script mode produce).
    """
    stream = stream if stream is not None else sys.stderr
    if as_json:
        print(json.dumps(envelope, indent=2, sort_keys=True), file=stream)
    else:
        print(format_error(envelope), file=stream)
