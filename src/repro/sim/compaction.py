"""Greedy windowed borrow-scheduling of blocked nonzero masks.

This kernel is the performance heart of the reproduction.  A GEMM tile is
blocked per Figure 1 into ``T`` time steps (K/K0 slices), ``L`` lanes (the
positions of the K0-wide dot-product unit), and a PE axis.  An effectual
operation at ``(t, l, c)`` may be *borrowed*: executed early by up to ``d1``
time steps, by a slot up to ``d2`` lanes away, or by a PE up to ``d3``
positions away (Definitions III.1 / III.2).

Execution semantics (Sec. 5 of DESIGN.md):

* Each dot-product unit (one ``C1 x C2`` group of ``L`` lanes) follows its
  own compressed stream with a *front pointer*; the window of reachable
  positions is ``[f, f + d1]`` and ``f`` advances by at most ``1 + d1`` per
  cycle (the buffer refill rate), which caps the ideal speedup at ``1 + d1``
  exactly as the paper states for ``db1``.  Lanes inside a unit share the
  front (they drain one stream); different units drift within the
  provisioned ABUF/BBUF -- residual overflow is charged separately by the
  engine's buffer-fullness stall model.
* Each output cycle every slot executes at most one remaining effectual op:
  first from its own stream (earliest first), otherwise from a donor stream
  at lane offset ``1..d2`` (wrapping inside the dot-product unit) and/or PE
  offset ``1..d3``, in increasing-distance priority -- the same priority
  mechanism as Bit-Tactical, which the paper adopts.  Donor reach is
  evaluated against the *donor's* front.
* Conflicting claims in a cycle are arbitrated in offset-priority rounds
  (one claim per donor stream per round), in slot order within a round --
  modeling a fixed-priority arbiter.
* A unit is done when all its effectual ops have executed *and* its front
  has drained past ``T`` (trailing zero slices still stream at window
  rate); the tile ends when the slowest unit finishes.

Masks are 4-D ``[T, L, C1, C2]``: lane borrowing (``d2``) acts along ``L``,
PE borrowing (``d3``) along ``C1``, and ``C2`` indexes independent slot
groups with no borrowing between them (used by the dual-sparse second phase,
where ``C1`` is the output-row axis and ``C2`` the output-column axis).

Two scheduler implementations share these semantics exactly:
:func:`compact_schedule_reference` iterates element by element (the test
oracle), and :func:`compact_schedule` vectorizes over slots -- with a
closed-form per-stream recurrence replacing the cycle loop entirely when no
donor offsets exist (``d2 == d3 == 0``), and, when they do, exact
idle-cycle skip-ahead plus donor-side claim resolution through the cached
inverse offset maps (each offset is an injective coordinate shift, so a
donor can have at most one claimant per round and no arbitration is ever
needed).  :func:`compact_schedule_batch` runs that same cycle loop once
over a whole batch of same-geometry tiles, sharing every per-cycle numpy
dispatch across the batch.  All paths are identical cycle for cycle,
locked by ``tests/test_compaction_properties.py`` and the golden fixtures
in ``tests/test_engine_golden.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

_INF = np.iinfo(np.int64).max // 2


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of scheduling one tile.

    ``cycles`` counts every output cycle including the trailing drain of the
    slowest unit.  ``busy_cycles`` counts cycles in which at least one op
    executed.  ``schedule`` (optional) maps ``[cycle, slot] -> flat original
    index`` into the ``(T, L, C1, C2)`` mask (or -1 for an idle slot); it
    stops at the last cycle that executed work.  ``borrowed_ops`` counts ops
    executed by a slot other than their own.
    """

    cycles: int
    busy_cycles: int
    executed_ops: int
    borrowed_ops: int
    schedule: np.ndarray | None = None

    @property
    def occupancy(self) -> float:
        """Executed ops per slot-cycle over the whole tile (utilization)."""
        if self.cycles == 0:
            return 0.0
        return self.executed_ops / self.cycles


@lru_cache(maxsize=None)
def _offset_priority(d2: int, d3: int) -> tuple[tuple[int, int], ...]:
    """Donor offsets (excluding the own stream) in borrowing priority order."""
    offsets = [
        (dd2, dd3)
        for dd2 in range(d2 + 1)
        for dd3 in range(d3 + 1)
        if (dd2, dd3) != (0, 0)
    ]
    offsets.sort(key=lambda o: (o[0] + o[1], o[0], o[1]))
    return tuple(offsets)


@lru_cache(maxsize=512)
def _donor_maps(
    lanes: int, c1: int, c2: int, d2: int, d3: int, lane_wrap: bool
) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray], ...]:
    """Per-offset donor wiring: ``(donor, valid, inv, inv_valid)`` per slot.

    ``donor[r]`` is the stream slot ``r`` borrows from this round (0 where
    out of range -- gate with ``valid``); ``inv[d]`` is the *receiver* that
    would borrow from donor ``d`` (0 where none -- gate with ``inv_valid``).
    Each offset is a coordinate shift, so the donor map is injective: a
    donor can be claimed by at most one receiver per round, which is why
    the scheduler needs no claim arbitration and the inverse map is a plain
    array.  Pure function of the tile geometry and distances, memoized
    across calls -- the engine schedules thousands of same-shaped tiles per
    sweep.  The cached arrays are read-only by contract.
    """
    n_groups = c1 * c2
    n_slots = lanes * n_groups
    slot_ids = np.arange(n_slots)
    lane_of = slot_ids // n_groups
    c1_of = (slot_ids // c2) % c1
    c2_of = slot_ids % c2
    maps = []
    for dd2, dd3 in _offset_priority(d2, d3):
        donor_lane = (lane_of + dd2) % lanes if lane_wrap else lane_of + dd2
        donor_c1 = c1_of + dd3
        valid = (donor_lane < lanes) & (donor_c1 < c1)
        donor = np.where(valid, donor_lane * n_groups + donor_c1 * c2 + c2_of, 0)
        inv = np.zeros(n_slots, dtype=np.int64)
        inv_valid = np.zeros(n_slots, dtype=bool)
        inv[donor[valid]] = slot_ids[valid]
        inv_valid[donor[valid]] = True
        maps.append((donor, valid, inv, inv_valid))
    return tuple(maps)


def _check_mask(mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask)
    if mask.ndim == 3:
        mask = mask[:, :, :, np.newaxis]
    if mask.ndim != 4:
        raise ValueError(f"mask must be 3-D or 4-D [T, L, C1(, C2)], got shape {mask.shape}")
    return mask.astype(bool)


def compact_schedule_reference(
    mask: np.ndarray,
    d1: int = 0,
    d2: int = 0,
    d3: int = 0,
    lane_wrap: bool = True,
    return_schedule: bool = False,
    front_mode: str = "stream",
) -> CompactionResult:
    """Obviously-correct pure-Python scheduler used as a test oracle.

    Mirrors :func:`compact_schedule` exactly but iterates slots and donors
    element by element -- including, with ``return_schedule``, the recorded
    per-cycle schedule, so the property suite can assert the vectorized
    kernel's schedule array bit for bit.  Use only on small tiles.
    """
    mask = _check_mask(mask)
    t_steps, lanes, c1, c2 = mask.shape
    window = 1 + d1
    offsets = _offset_priority(d2, d3)
    if front_mode == "stream":
        def group_key(l: int, i: int, j: int) -> tuple:
            return (l, i, j)
    elif front_mode == "unit":
        def group_key(l: int, i: int, j: int) -> tuple:
            return (i, j)
    elif front_mode == "tile":
        def group_key(l: int, i: int, j: int) -> tuple:
            return ()
    else:
        raise ValueError(f"unknown front_mode {front_mode!r}")
    groups = sorted({group_key(l, i, j) for l in range(lanes) for i in range(c1) for j in range(c2)})

    remaining = {
        (t, l, i, j)
        for t in range(t_steps)
        for l in range(lanes)
        for i in range(c1)
        for j in range(c2)
        if mask[t, l, i, j]
    }

    def group_earliest(g: tuple) -> int:
        return min((t for (t, l, i, j) in remaining if group_key(l, i, j) == g), default=_INF)

    def earliest_in_window(l: int, i: int, j: int, front: int) -> tuple | None:
        for t in range(front, min(front + window, t_steps)):
            if (t, l, i, j) in remaining:
                return (t, l, i, j)
        return None

    def flat(l: int, i: int, j: int) -> int:
        return l * c1 * c2 + i * c2 + j

    n_slots = lanes * c1 * c2
    fronts = {g: 0 for g in groups}
    rows: list[list[int]] = []
    cycles = 0
    busy_cycles = 0
    borrowed = 0
    executed = 0
    while True:
        if not remaining:
            tail = max(
                int(np.ceil((t_steps - fronts[g]) / window)) if fronts[g] < t_steps else 0
                for g in groups
            )
            cycles += tail
            break
        cycles += 1
        cycle_busy = False
        row = [-1] * n_slots
        all_slots = [(l, i, j) for l in range(lanes) for i in range(c1) for j in range(c2)]

        # Phase 1: every slot claims the earliest element of its own stream.
        idle = []
        for l, i, j in all_slots:
            pick = earliest_in_window(l, i, j, fronts[group_key(l, i, j)])
            if pick is not None:
                remaining.discard(pick)
                row[flat(l, i, j)] = pick[0] * n_slots + flat(l, i, j)
                executed += 1
                cycle_busy = True
            else:
                idle.append((l, i, j))

        # Phase 2: offset rounds in priority order; one claim per donor per
        # round, arbitrated in slot order.  Donor reach uses the donor's
        # own front.
        for dd2, dd3 in offsets:
            claimed_donors: set[tuple[int, int, int]] = set()
            still_idle = []
            for l, i, j in idle:
                donor_l = (l + dd2) % lanes if lane_wrap else l + dd2
                donor_i = i + dd3
                donor = (donor_l, donor_i, j)
                pick = None
                if donor_l < lanes and donor_i < c1 and donor not in claimed_donors:
                    pick = earliest_in_window(donor_l, donor_i, j, fronts[group_key(donor_l, donor_i, j)])
                if pick is not None:
                    claimed_donors.add(donor)
                    remaining.discard(pick)
                    row[flat(l, i, j)] = pick[0] * n_slots + flat(*donor)
                    executed += 1
                    borrowed += 1
                    cycle_busy = True
                else:
                    still_idle.append((l, i, j))
            idle = still_idle
        rows.append(row)
        if cycle_busy:
            busy_cycles += 1
        for g in groups:
            fronts[g] = min(group_earliest(g), fronts[g] + window)

    schedule = None
    if return_schedule:
        schedule = np.array(rows, dtype=np.int64) if rows else np.array([], dtype=np.int64)
    return CompactionResult(
        cycles=cycles,
        busy_cycles=busy_cycles,
        executed_ops=executed,
        borrowed_ops=borrowed,
        schedule=schedule,
    )


def _stream_positions(
    flat: np.ndarray, n_slots: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-stream sorted effectual positions, padded with ``_INF``.

    Returns ``(positions, counts, total_ops)`` where ``positions[s, r]`` is
    the r-th smallest time step carrying an effectual op in stream ``s``.
    ``np.nonzero`` on the transpose yields entries already in (stream-major,
    time-ascending) order, and each entry's rank within its stream is pure
    arithmetic -- no per-stream Python loop, no lexsort.
    """
    counts = flat.sum(axis=0)
    total_ops = int(counts.sum())
    max_nnz = int(counts.max()) if n_slots else 0
    positions = np.full((n_slots, max_nnz + 1), _INF, dtype=np.int64)
    if total_ops:
        s_sorted, t_sorted = np.nonzero(flat.T)
        starts = np.cumsum(counts) - counts
        rank = np.arange(total_ops) - np.repeat(starts, counts)
        positions[s_sorted, rank] = t_sorted
    return positions, counts, total_ops


def _schedule_no_borrowing(
    positions: np.ndarray,
    counts: np.ndarray,
    total_ops: int,
    t_steps: int,
    n_slots: int,
    d1: int,
    record: bool,
) -> CompactionResult:
    """Closed-form scheduling for ``d2 == d3 == 0`` with per-stream fronts.

    With no donor offsets the streams are fully independent, so the cycle
    loop collapses to a recurrence over each stream's op ranks, evaluated
    vectorized across streams.  With window ``w = 1 + d1``, the op of rank
    ``r`` at position ``p_r`` executes at

        ``c_r = c_{r-1} + 1 + k_r``,  ``k_r = max(0, ceil((p_r - d1 - g_{r-1}) / w))``

    where ``g_r`` is the front right after the cycle that executed rank
    ``r``.  The front advances one window per cycle but caps at the next
    unexecuted position (the cycle loop's ``min(earliest, front + w)``):

        ``g_r = min(p_{r+1}, min(p_r, g_{r-1} + k_r * w) + w)``

    Dropping the inner cap undercounts whenever a long gap follows a dense
    prefix -- the front is *held* at the gap's start, it does not free-run.
    After a stream's last op its front does free-run at ``w`` per cycle, so
    the drain tail folds into ``c_s + ceil((T - g_s) / w)`` per stream,
    bounded below by the globally last execution cycle.
    """
    window = 1 + d1
    cycles_of = np.zeros(n_slots, dtype=np.int64)
    fronts = np.zeros(n_slots, dtype=np.int64)
    max_nnz = positions.shape[1] - 1
    # Execution cycles never exceed T (borrowing is never slower than
    # dense -- an invariant the property suite asserts for every draw), so
    # T-sized scatter targets cover every cycle index.
    busy = np.zeros(t_steps + 1, dtype=bool)
    schedule = np.full((t_steps, n_slots), -1, dtype=np.int64) if record else None
    slot_ids = np.arange(n_slots)
    for r in range(max_nnz):
        active = counts > r
        pos = positions[:, r]
        wait = np.where(active, np.maximum(-((d1 + fronts - pos) // window), 0), 0)
        cycles_of = np.where(active, cycles_of + 1 + wait, cycles_of)
        held = np.minimum(pos, fronts + wait * window)
        fronts = np.where(active, np.minimum(positions[:, r + 1], held + window), fronts)
        act_slots = slot_ids[active]
        act_cycles = cycles_of[act_slots]
        busy[act_cycles] = True
        if record:
            schedule[act_cycles - 1, act_slots] = pos[act_slots] * n_slots + act_slots
    last_cycle = int(cycles_of.max()) if total_ops else 0
    drained = cycles_of + np.maximum(-((fronts - t_steps) // window), 0)
    cycles = max(last_cycle, int(drained.max()))
    if record:
        schedule = (
            schedule[:last_cycle] if last_cycle else np.array([], dtype=np.int64)
        )
    return CompactionResult(
        cycles=cycles,
        busy_cycles=int(busy.sum()),
        executed_ops=total_ops,
        borrowed_ops=0,
        schedule=schedule,
    )


def compact_schedule(
    mask: np.ndarray,
    d1: int = 0,
    d2: int = 0,
    d3: int = 0,
    lane_wrap: bool = True,
    return_schedule: bool = False,
    front_mode: str = "stream",
) -> CompactionResult:
    """Schedule a tile mask under borrowing distances ``(d1, d2, d3)``.

    See the module docstring for the execution semantics.  Matches
    :func:`compact_schedule_reference` cycle for cycle; vectorized over
    slots (with a closed-form no-donor path and exact idle-cycle skip-ahead
    on top) so tiles of practical size run in milliseconds.

    Args:
        mask: boolean effectual-op mask, shape ``[T, L, C1]`` or
            ``[T, L, C1, C2]``.
        d1: time lookahead (window depth ``1 + d1``).
        d2: lane lookaside distance (along ``L``).
        d3: neighbouring-PE distance (along ``C1``).
        lane_wrap: whether lane borrowing wraps around inside the
            dot-product unit (the rotation shuffler implies a ring).
        return_schedule: also record which original op each slot executed
            each cycle (needed by the dual-sparse preprocessing phase).

    Returns:
        A :class:`CompactionResult`.
    """
    mask = _check_mask(mask)
    t_steps, lanes, c1, c2 = mask.shape
    window = 1 + d1
    n_groups = c1 * c2
    n_slots = lanes * n_groups

    if t_steps == 0 or n_slots == 0:
        return CompactionResult(0, 0, 0, 0, schedule=np.empty((0, n_slots), np.int64))
    if front_mode not in ("stream", "unit", "tile"):
        raise ValueError(f"unknown front_mode {front_mode!r}")

    flat = mask.reshape(t_steps, n_slots)
    positions, counts, total_ops = _stream_positions(flat, n_slots)

    # No donor offsets + per-stream fronts: the streams are independent and
    # the whole cycle loop has a closed form.  This is the hot path for
    # every schedule with d2 == d3 == 0 -- including the Sparse.AB
    # dense-weight downgrade -- and for the dual-sparse B preprocessing
    # whenever db2 == db3 == 0 (record mode is supported).
    if d2 == 0 and d3 == 0 and front_mode == "stream":
        return _schedule_no_borrowing(
            positions, counts, total_ops, t_steps, n_slots, d1, return_schedule
        )

    donor_maps = _donor_maps(lanes, c1, c2, d2, d3, lane_wrap)
    if front_mode == "stream":
        return _schedule_borrowing_stream(
            positions, total_ops, t_steps, n_slots, d1, donor_maps, return_schedule
        )
    return _schedule_borrowing_grouped(
        positions, total_ops, t_steps, n_slots, n_groups, d1,
        donor_maps, front_mode, return_schedule,
    )


def _schedule_borrowing_stream(
    positions: np.ndarray,
    total_ops: int,
    t_steps: int,
    n_slots: int,
    d1: int,
    donor_maps: tuple,
    record: bool,
) -> CompactionResult:
    """Cycle loop for the default per-stream fronts with donors present.

    Every per-cycle quantity is computed over all ``n_slots`` streams at
    once (no boolean extraction), and donor claims are resolved on the
    *donor* side through the cached inverse offset maps: a donor donates
    exactly when it has a receiver, that receiver is idle, and the donor's
    next op sits inside its own window -- the same test as its phase-1
    condition, which is also why a cycle with no phase-1 work is fully idle
    and whole runs of such cycles can be jumped in closed form (the
    ``min(earliest, f + w)`` front advance is absorbing under composition).
    """
    window = 1 + d1
    stride = positions.shape[1]
    pos_flat = positions.ravel()
    slot_ids = np.arange(n_slots, dtype=np.int64)
    # ``idx`` fuses stream base offset and per-stream pointer: every
    # pointer advance is one in-place add, every stream lookup one flat
    # gather.  Cycle-frequency intermediates live in preallocated buffers.
    idx = slot_ids * stride
    next_pos = pos_flat[idx]
    fronts = np.zeros(n_slots, dtype=np.int64)
    limit = np.empty(n_slots, dtype=np.int64)
    own = np.empty(n_slots, dtype=bool)
    recv_idle = np.empty(n_slots, dtype=bool)
    scratch = np.empty(n_slots, dtype=bool)
    scratch2 = np.empty(n_slots, dtype=bool)
    multi_round = len(donor_maps) > 1

    schedule_chunks: list[np.ndarray] = []
    cycles = 0
    busy_cycles = 0
    borrowed = 0
    executed = 0
    while executed < total_ops:
        np.add(fronts, d1, out=limit)
        np.less_equal(next_pos, limit, out=own)
        n_own = int(own.sum())
        if n_own == 0:
            waiting = next_pos < _INF
            gap = (next_pos - d1 - fronts)[waiting]
            jump = int((-((-gap) // window)).min())
            cycles += jump
            fronts += jump * window
            np.minimum(next_pos, fronts, out=fronts)
            if record:
                schedule_chunks.append(np.full((jump, n_slots), -1, dtype=np.int64))
            continue

        # Phase 1: every slot claims the earliest remaining op of its own
        # stream that lies inside its window.  The skip-ahead above
        # guarantees at least one does, so the cycle is busy by definition.
        cycles += 1
        busy_cycles += 1
        if record:
            row = np.where(own, next_pos * n_slots + slot_ids, np.int64(-1))
        executed += n_own
        idx += own
        np.take(pos_flat, idx, out=next_pos)
        np.logical_not(own, out=recv_idle)

        # Phase 2: one donor claim per offset round, judged against the
        # donor's own front and its post-phase-1 stream position.
        for donor, donor_valid, inv, inv_valid in donor_maps:
            np.take(recv_idle, inv, out=scratch)
            scratch &= inv_valid
            np.less_equal(next_pos, limit, out=scratch2)
            scratch &= scratch2  # scratch = donates
            n_d = int(scratch.sum())
            if n_d == 0:
                continue
            if record or multi_round:
                received = donor_valid & np.take(scratch, donor)
            if record:
                vals = next_pos * n_slots + slot_ids
                row = np.where(received, np.take(vals, donor), row)
            executed += n_d
            borrowed += n_d
            idx += scratch
            np.take(pos_flat, idx, out=next_pos)
            if multi_round:
                recv_idle &= ~received
                if not recv_idle.any():
                    break

        if record:
            schedule_chunks.append(row[np.newaxis, :])
        # Per-stream front advance: up to the earliest unexecuted op,
        # capped at one window of refill per cycle (fronts + window is
        # exactly limit + 1).
        limit += 1
        np.minimum(next_pos, limit, out=fronts)

    # Trailing drain: units behind T keep streaming zero slices at window
    # rate; the tile ends when the slowest one crosses T.
    behind = fronts < t_steps
    if behind.any():
        cycles += int((-((fronts[behind] - t_steps) // window)).max())

    if record:
        schedule = (
            np.concatenate(schedule_chunks, axis=0)
            if schedule_chunks
            else np.array([], dtype=np.int64)
        )
    else:
        schedule = None
    return CompactionResult(
        cycles=cycles,
        busy_cycles=busy_cycles,
        executed_ops=executed,
        borrowed_ops=borrowed,
        schedule=schedule,
    )


def _schedule_borrowing_grouped(
    positions: np.ndarray,
    total_ops: int,
    t_steps: int,
    n_slots: int,
    n_groups: int,
    d1: int,
    donor_maps: tuple,
    front_mode: str,
    record: bool,
) -> CompactionResult:
    """Cycle loop for the ``unit``/``tile`` front ablation modes.

    Front pointers are shared per dot-product unit or tile-wide, so window
    limits gather through ``group_of`` and the front advance needs a
    scatter-reduction.  Only ablation studies exercise these modes; the
    default per-stream mode takes :func:`_schedule_borrowing_stream`.
    """
    window = 1 + d1
    ptr = np.zeros(n_slots, dtype=np.int64)
    slot_ids = np.arange(n_slots)
    next_pos = positions[slot_ids, ptr]

    if front_mode == "unit":
        group_of = slot_ids % n_groups
        n_fronts = n_groups
    else:
        group_of = np.zeros(n_slots, dtype=np.int64)
        n_fronts = 1
    fronts = np.zeros(n_fronts, dtype=np.int64)

    schedule_chunks: list[np.ndarray] = []
    cycles = 0
    busy_cycles = 0
    borrowed = 0
    executed = 0
    while executed < total_ops:
        limit = fronts[group_of] + d1

        own = next_pos <= limit
        if not own.any():
            # Fully idle cycle: donor availability is the donor's *own*
            # phase-1 condition, so nothing can execute anywhere -- jump
            # all such cycles at once.
            earliest = np.full(n_fronts, _INF, dtype=np.int64)
            np.minimum.at(earliest, group_of, next_pos)
            waiting = earliest < _INF
            gap = (earliest - d1 - fronts)[waiting]
            jump = int((-((-gap) // window)).min())
            cycles += jump
            fronts = np.minimum(earliest, fronts + jump * window)
            if record:
                schedule_chunks.append(np.full((jump, n_slots), -1, dtype=np.int64))
            continue

        cycles += 1
        busy_cycles += 1
        row = np.full(n_slots, -1, dtype=np.int64) if record else None

        # Phase 1: every slot claims the earliest remaining op of its own
        # stream that lies inside its unit's window.
        own_slots = slot_ids[own]
        if record:
            row[own_slots] = next_pos[own_slots] * n_slots + own_slots
        executed += len(own_slots)
        ptr[own_slots] += 1
        next_pos[own_slots] = positions[own_slots, ptr[own_slots]]
        idle = ~own

        # Phase 2: idle slots borrow, one claim per donor per offset round.
        # The offset shift is injective, so claims are contention-free and
        # no arbitration is needed.  Donor availability is judged against
        # the donor's own front (``limit`` gathers exactly
        # ``fronts[group_of[...]] + d1``).
        for donor, donor_valid, _inv, _inv_valid in donor_maps:
            if not idle.any():
                break
            cand = idle & donor_valid
            if not cand.any():
                continue
            cand_slots = slot_ids[cand]
            cand_donors = donor[cand]
            cand_ok = next_pos[cand_donors] <= limit[cand_donors]
            win_slots = cand_slots[cand_ok]
            win_donors = cand_donors[cand_ok]
            if len(win_slots) == 0:
                continue
            if record:
                row[win_slots] = next_pos[win_donors] * n_slots + win_donors
            executed += len(win_slots)
            borrowed += len(win_slots)
            ptr[win_donors] += 1
            next_pos[win_donors] = positions[win_donors, ptr[win_donors]]
            idle[win_slots] = False

        if record:
            schedule_chunks.append(row[np.newaxis, :])

        # Per-group front advance: up to the group's earliest unexecuted op,
        # capped at one window of refill per cycle.
        earliest = np.full(n_fronts, _INF, dtype=np.int64)
        np.minimum.at(earliest, group_of, next_pos)
        fronts = np.minimum(earliest, fronts + window)

    # Trailing drain: units behind T keep streaming zero slices at window
    # rate; the tile ends when the slowest one crosses T.
    behind = fronts < t_steps
    if behind.any():
        cycles += int((-((fronts[behind] - t_steps) // window)).max())

    if record:
        schedule = (
            np.concatenate(schedule_chunks, axis=0)
            if schedule_chunks
            else np.array([], dtype=np.int64)
        )
    else:
        schedule = None
    return CompactionResult(
        cycles=cycles,
        busy_cycles=busy_cycles,
        executed_ops=executed,
        borrowed_ops=borrowed,
        schedule=schedule,
    )


def compact_schedule_batch(
    masks: "list[np.ndarray] | tuple[np.ndarray, ...]",
    d1: int = 0,
    d2: int = 0,
    d3: int = 0,
    lane_wrap: bool = True,
) -> list[CompactionResult]:
    """Schedule a batch of same-geometry tile masks in one cycle loop.

    Semantically identical to calling :func:`compact_schedule` on each mask
    (asserted bitwise by the property suite) but shares every per-cycle
    numpy dispatch across the batch: the tiles are laid out as one
    ``len(masks) * n_slots``-stream problem with block-diagonal donor
    wiring, so a GEMM's sampled passes cost one loop instead of one per
    tile.  Masks must agree on ``(L, C1, C2)``; time depths may differ
    (each tile keeps its own drain horizon and cycle count).  Schedules are
    not recorded -- use ``compact_schedule(..., return_schedule=True)``
    for that.
    """
    if not masks:
        return []
    checked = [_check_mask(m) for m in masks]
    lanes, c1, c2 = checked[0].shape[1:]
    for m in checked[1:]:
        if m.shape[1:] != (lanes, c1, c2):
            raise ValueError(
                f"batched masks must agree on (L, C1, C2): "
                f"{m.shape[1:]} vs {(lanes, c1, c2)}"
            )
    n_slots = lanes * c1 * c2
    if (d2 == 0 and d3 == 0) or n_slots == 0 or len(checked) == 1:
        # Without donors the closed form is already one shot per tile;
        # degenerate batches gain nothing from merging.
        return [
            compact_schedule(m, d1, d2, d3, lane_wrap=lane_wrap) for m in checked
        ]

    n_tiles = len(checked)
    window = 1 + d1
    t_arr = np.array([m.shape[0] for m in checked], dtype=np.int64)
    t_max = int(t_arr.max())
    total_slots = n_tiles * n_slots
    flat = np.zeros((t_max, total_slots), dtype=bool)
    for b, m in enumerate(checked):
        flat[: m.shape[0], b * n_slots : (b + 1) * n_slots] = m.reshape(
            m.shape[0], n_slots
        )
    positions, counts, _total = _stream_positions(flat, total_slots)
    per_tile = counts.reshape(n_tiles, n_slots).sum(axis=1)

    # Donor wiring, tiled block-diagonally: tiles never borrow across the
    # batch.
    offs = np.repeat(np.arange(n_tiles, dtype=np.int64) * n_slots, n_slots)
    donor_maps = [
        (
            np.tile(donor, n_tiles) + offs,
            np.tile(valid, n_tiles),
            np.tile(inv, n_tiles) + offs,
            np.tile(inv_valid, n_tiles),
        )
        for donor, valid, inv, inv_valid in _donor_maps(
            lanes, c1, c2, d2, d3, lane_wrap
        )
    ]
    multi_round = len(donor_maps) > 1

    stride = positions.shape[1]
    pos_flat = positions.ravel()
    # ``idx`` fuses stream base offset and per-stream pointer, so every
    # pointer advance is one in-place add and every stream lookup is one
    # flat gather.  All cycle-frequency intermediates live in preallocated
    # buffers: at batch width the loop is allocation-bound before it is
    # compute-bound.
    idx = np.arange(total_slots, dtype=np.int64) * stride
    next_pos = pos_flat[idx]
    fronts = np.zeros(total_slots, dtype=np.int64)
    limit = np.empty(total_slots, dtype=np.int64)
    own = np.empty(total_slots, dtype=bool)
    recv_idle = np.empty(total_slots, dtype=bool)
    scratch = np.empty(total_slots, dtype=bool)
    scratch2 = np.empty(total_slots, dtype=bool)

    cycles_t = np.zeros(n_tiles, dtype=np.int64)
    busy_t = np.zeros(n_tiles, dtype=np.int64)
    executed_t = np.zeros(n_tiles, dtype=np.int64)
    borrowed_t = np.zeros(n_tiles, dtype=np.int64)
    final_cycles = np.zeros(n_tiles, dtype=np.int64)
    active = per_tile > 0

    def finish(b: int) -> None:
        # Same drain-tail snapshot the single-tile loop takes on exit,
        # against this tile's own time horizon.
        f = fronts[b * n_slots : (b + 1) * n_slots]
        behind = f < t_arr[b]
        tail = int((-((f[behind] - t_arr[b]) // window)).max()) if behind.any() else 0
        final_cycles[b] = cycles_t[b] + tail

    for b in np.nonzero(~active)[0]:
        # All-zero tiles never enter the loop: pure drain.
        final_cycles[b] = -((-int(t_arr[b])) // window)

    n_active = int(active.sum())
    while n_active:
        np.add(fronts, d1, out=limit)
        np.less_equal(next_pos, limit, out=own)
        own_counts = own.reshape(n_tiles, n_slots).sum(axis=1)
        if not own_counts.any():
            # Every unfinished tile is idle this cycle (finished tiles sit
            # at _INF): jump to the next cycle any stream has window work.
            waiting = next_pos < _INF
            gap = (next_pos - d1 - fronts)[waiting]
            jump = int((-((-gap) // window)).min())
            cycles_t += active * jump
            fronts += jump * window
            np.minimum(next_pos, fronts, out=fronts)
            continue

        cycles_t += active
        busy_t += own_counts > 0
        executed_t += own_counts
        idx += own
        np.take(pos_flat, idx, out=next_pos)
        np.logical_not(own, out=recv_idle)

        for donor, donor_valid, inv, inv_valid in donor_maps:
            np.take(recv_idle, inv, out=scratch)
            scratch &= inv_valid
            np.less_equal(next_pos, limit, out=scratch2)
            scratch &= scratch2  # scratch = donates
            if not scratch.any():
                continue
            d_counts = scratch.reshape(n_tiles, n_slots).sum(axis=1)
            executed_t += d_counts
            borrowed_t += d_counts
            idx += scratch
            np.take(pos_flat, idx, out=next_pos)
            if multi_round:
                np.take(scratch, donor, out=scratch2)
                scratch2 &= donor_valid
                np.logical_not(scratch2, out=scratch2)
                recv_idle &= scratch2
                if not recv_idle.any():
                    break

        limit += 1
        np.minimum(next_pos, limit, out=fronts)
        newly = active & (executed_t >= per_tile)
        if newly.any():
            for b in np.nonzero(newly)[0]:
                finish(int(b))
            active &= ~newly
            n_active = int(active.sum())

    return [
        CompactionResult(
            cycles=int(final_cycles[b]),
            busy_cycles=int(busy_t[b]),
            executed_ops=int(per_tile[b]),
            borrowed_ops=int(borrowed_t[b]),
        )
        for b in range(n_tiles)
    ]


def unpack_schedule(
    schedule: np.ndarray, shape: tuple[int, int, int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split flat schedule entries back into ``(t, l, c1, c2)`` coordinates.

    Entries of -1 (idle) map to coordinate -1 in every component.
    """
    t_steps, lanes, c1, c2 = shape
    n_slots = lanes * c1 * c2
    idle = schedule < 0
    t = schedule // n_slots
    stream = schedule % n_slots
    lane = stream // (c1 * c2)
    i1 = (stream // c2) % c1
    i2 = stream % c2
    for arr in (t, lane, i1, i2):
        arr[idle] = -1
    return t, lane, i1, i2
