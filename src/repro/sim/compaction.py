"""Greedy windowed borrow-scheduling of blocked nonzero masks.

This kernel is the performance heart of the reproduction.  A GEMM tile is
blocked per Figure 1 into ``T`` time steps (K/K0 slices), ``L`` lanes (the
positions of the K0-wide dot-product unit), and a PE axis.  An effectual
operation at ``(t, l, c)`` may be *borrowed*: executed early by up to ``d1``
time steps, by a slot up to ``d2`` lanes away, or by a PE up to ``d3``
positions away (Definitions III.1 / III.2).

Execution semantics (Sec. 5 of DESIGN.md):

* Each dot-product unit (one ``C1 x C2`` group of ``L`` lanes) follows its
  own compressed stream with a *front pointer*; the window of reachable
  positions is ``[f, f + d1]`` and ``f`` advances by at most ``1 + d1`` per
  cycle (the buffer refill rate), which caps the ideal speedup at ``1 + d1``
  exactly as the paper states for ``db1``.  Lanes inside a unit share the
  front (they drain one stream); different units drift within the
  provisioned ABUF/BBUF -- residual overflow is charged separately by the
  engine's buffer-fullness stall model.
* Each output cycle every slot executes at most one remaining effectual op:
  first from its own stream (earliest first), otherwise from a donor stream
  at lane offset ``1..d2`` (wrapping inside the dot-product unit) and/or PE
  offset ``1..d3``, in increasing-distance priority -- the same priority
  mechanism as Bit-Tactical, which the paper adopts.  Donor reach is
  evaluated against the *donor's* front.
* Conflicting claims in a cycle are arbitrated in offset-priority rounds
  (one claim per donor stream per round), in slot order within a round --
  modeling a fixed-priority arbiter.
* A unit is done when all its effectual ops have executed *and* its front
  has drained past ``T`` (trailing zero slices still stream at window
  rate); the tile ends when the slowest unit finishes.

Masks are 4-D ``[T, L, C1, C2]``: lane borrowing (``d2``) acts along ``L``,
PE borrowing (``d3``) along ``C1``, and ``C2`` indexes independent slot
groups with no borrowing between them (used by the dual-sparse second phase,
where ``C1`` is the output-row axis and ``C2`` the output-column axis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_INF = np.iinfo(np.int64).max // 2


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of scheduling one tile.

    ``cycles`` counts every output cycle including the trailing drain of the
    slowest unit.  ``busy_cycles`` counts cycles in which at least one op
    executed.  ``schedule`` (optional) maps ``[cycle, slot] -> flat original
    index`` into the ``(T, L, C1, C2)`` mask (or -1 for an idle slot); it
    stops at the last cycle that executed work.  ``borrowed_ops`` counts ops
    executed by a slot other than their own.
    """

    cycles: int
    busy_cycles: int
    executed_ops: int
    borrowed_ops: int
    schedule: np.ndarray | None = None

    @property
    def occupancy(self) -> float:
        """Executed ops per slot-cycle over the whole tile (utilization)."""
        if self.cycles == 0:
            return 0.0
        return self.executed_ops / self.cycles


def _offset_priority(d2: int, d3: int) -> list[tuple[int, int]]:
    """Donor offsets (excluding the own stream) in borrowing priority order."""
    offsets = [
        (dd2, dd3)
        for dd2 in range(d2 + 1)
        for dd3 in range(d3 + 1)
        if (dd2, dd3) != (0, 0)
    ]
    offsets.sort(key=lambda o: (o[0] + o[1], o[0], o[1]))
    return offsets


def _check_mask(mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask)
    if mask.ndim == 3:
        mask = mask[:, :, :, np.newaxis]
    if mask.ndim != 4:
        raise ValueError(f"mask must be 3-D or 4-D [T, L, C1(, C2)], got shape {mask.shape}")
    return mask.astype(bool)


def compact_schedule_reference(
    mask: np.ndarray,
    d1: int = 0,
    d2: int = 0,
    d3: int = 0,
    lane_wrap: bool = True,
    front_mode: str = "stream",
) -> CompactionResult:
    """Obviously-correct pure-Python scheduler used as a test oracle.

    Mirrors :func:`compact_schedule` exactly but iterates slots and donors
    element by element.  Use only on small tiles.
    """
    mask = _check_mask(mask)
    t_steps, lanes, c1, c2 = mask.shape
    window = 1 + d1
    offsets = _offset_priority(d2, d3)
    if front_mode == "stream":
        def group_key(l: int, i: int, j: int) -> tuple:
            return (l, i, j)
    elif front_mode == "unit":
        def group_key(l: int, i: int, j: int) -> tuple:
            return (i, j)
    elif front_mode == "tile":
        def group_key(l: int, i: int, j: int) -> tuple:
            return ()
    else:
        raise ValueError(f"unknown front_mode {front_mode!r}")
    groups = sorted({group_key(l, i, j) for l in range(lanes) for i in range(c1) for j in range(c2)})

    remaining = {
        (t, l, i, j)
        for t in range(t_steps)
        for l in range(lanes)
        for i in range(c1)
        for j in range(c2)
        if mask[t, l, i, j]
    }

    def group_earliest(g: tuple) -> int:
        return min((t for (t, l, i, j) in remaining if group_key(l, i, j) == g), default=_INF)

    def earliest_in_window(l: int, i: int, j: int, front: int) -> tuple | None:
        for t in range(front, min(front + window, t_steps)):
            if (t, l, i, j) in remaining:
                return (t, l, i, j)
        return None

    fronts = {g: 0 for g in groups}
    cycles = 0
    busy_cycles = 0
    borrowed = 0
    executed = 0
    while True:
        if not remaining:
            tail = max(
                int(np.ceil((t_steps - fronts[g]) / window)) if fronts[g] < t_steps else 0
                for g in groups
            )
            cycles += tail
            break
        cycles += 1
        cycle_busy = False
        all_slots = [(l, i, j) for l in range(lanes) for i in range(c1) for j in range(c2)]

        # Phase 1: every slot claims the earliest element of its own stream.
        idle = []
        for l, i, j in all_slots:
            pick = earliest_in_window(l, i, j, fronts[group_key(l, i, j)])
            if pick is not None:
                remaining.discard(pick)
                executed += 1
                cycle_busy = True
            else:
                idle.append((l, i, j))

        # Phase 2: offset rounds in priority order; one claim per donor per
        # round, arbitrated in slot order.  Donor reach uses the donor's
        # own front.
        for dd2, dd3 in offsets:
            claimed_donors: set[tuple[int, int, int]] = set()
            still_idle = []
            for l, i, j in idle:
                donor_l = (l + dd2) % lanes if lane_wrap else l + dd2
                donor_i = i + dd3
                donor = (donor_l, donor_i, j)
                pick = None
                if donor_l < lanes and donor_i < c1 and donor not in claimed_donors:
                    pick = earliest_in_window(donor_l, donor_i, j, fronts[group_key(donor_l, donor_i, j)])
                if pick is not None:
                    claimed_donors.add(donor)
                    remaining.discard(pick)
                    executed += 1
                    borrowed += 1
                    cycle_busy = True
                else:
                    still_idle.append((l, i, j))
            idle = still_idle
        if cycle_busy:
            busy_cycles += 1
        for g in groups:
            fronts[g] = min(group_earliest(g), fronts[g] + window)

    return CompactionResult(
        cycles=cycles,
        busy_cycles=busy_cycles,
        executed_ops=executed,
        borrowed_ops=borrowed,
    )


def compact_schedule(
    mask: np.ndarray,
    d1: int = 0,
    d2: int = 0,
    d3: int = 0,
    lane_wrap: bool = True,
    return_schedule: bool = False,
    front_mode: str = "stream",
) -> CompactionResult:
    """Schedule a tile mask under borrowing distances ``(d1, d2, d3)``.

    See the module docstring for the execution semantics.  Matches
    :func:`compact_schedule_reference` cycle for cycle; vectorized over
    slots so tiles of practical size run in milliseconds.

    Args:
        mask: boolean effectual-op mask, shape ``[T, L, C1]`` or
            ``[T, L, C1, C2]``.
        d1: time lookahead (window depth ``1 + d1``).
        d2: lane lookaside distance (along ``L``).
        d3: neighbouring-PE distance (along ``C1``).
        lane_wrap: whether lane borrowing wraps around inside the
            dot-product unit (the rotation shuffler implies a ring).
        return_schedule: also record which original op each slot executed
            each cycle (needed by the dual-sparse preprocessing phase).

    Returns:
        A :class:`CompactionResult`.
    """
    mask = _check_mask(mask)
    t_steps, lanes, c1, c2 = mask.shape
    window = 1 + d1
    n_groups = c1 * c2
    n_slots = lanes * n_groups

    if t_steps == 0 or n_slots == 0:
        return CompactionResult(0, 0, 0, 0, schedule=np.empty((0, n_slots), np.int64))

    # Per-stream sorted effectual positions, padded with _INF.
    flat = mask.reshape(t_steps, n_slots)
    counts = flat.sum(axis=0)
    max_nnz = int(counts.max()) if n_slots else 0
    positions = np.full((n_slots, max_nnz + 1), _INF, dtype=np.int64)
    t_idx, s_idx = np.nonzero(flat)
    order = np.lexsort((t_idx, s_idx))
    s_sorted = s_idx[order]
    t_sorted = t_idx[order]
    if len(t_sorted):
        rank = np.concatenate([np.arange(c) for c in counts])
        positions[s_sorted, rank] = t_sorted

    ptr = np.zeros(n_slots, dtype=np.int64)
    slot_ids = np.arange(n_slots)
    next_pos = positions[slot_ids, ptr]
    total_ops = int(counts.sum())

    # Front-pointer granularity: per stream (default -- each lane stream
    # slides its own banked fetch window), per dot-product unit, or one
    # tile-wide front (ablation modes).
    if front_mode == "stream":
        group_of = slot_ids.copy()
        n_fronts = n_slots
    elif front_mode == "unit":
        group_of = slot_ids % n_groups
        n_fronts = n_groups
    elif front_mode == "tile":
        group_of = np.zeros(n_slots, dtype=np.int64)
        n_fronts = 1
    else:
        raise ValueError(f"unknown front_mode {front_mode!r}")
    fronts = np.zeros(n_fronts, dtype=np.int64)

    # Donor stream index per slot for each offset (or -1 when out of range).
    offsets = _offset_priority(d2, d3)
    lane_of = slot_ids // n_groups
    c1_of = (slot_ids // c2) % c1
    c2_of = slot_ids % c2
    donor_maps = []
    for dd2, dd3 in offsets:
        donor_lane = (lane_of + dd2) % lanes if lane_wrap else lane_of + dd2
        donor_c1 = c1_of + dd3
        valid = (donor_lane < lanes) & (donor_c1 < c1)
        donor = np.where(valid, donor_lane * n_groups + donor_c1 * c2 + c2_of, -1)
        donor_maps.append(donor)

    record = return_schedule
    schedule_rows: list[np.ndarray] = []

    cycles = 0
    busy_cycles = 0
    borrowed = 0
    executed = 0
    while True:
        if executed == total_ops:
            behind = fronts < t_steps
            if behind.any():
                tails = np.ceil((t_steps - fronts[behind]) / window).astype(np.int64)
                cycles += int(tails.max())
            break
        cycles += 1
        executed_before = executed
        limit = fronts[group_of] + d1
        row = np.full(n_slots, -1, dtype=np.int64) if record else None

        # Phase 1: every slot claims the earliest remaining op of its own
        # stream that lies inside its unit's window.
        own = next_pos <= limit
        if own.any():
            own_slots = slot_ids[own]
            if record:
                row[own_slots] = next_pos[own_slots] * n_slots + own_slots
            executed += len(own_slots)
            ptr[own_slots] += 1
            next_pos[own_slots] = positions[own_slots, ptr[own_slots]]
        idle = ~own

        # Phase 2: idle slots borrow, one donor claim per offset round,
        # arbitrated in slot order (np.unique keeps the first claimant).
        # Donor availability is judged against the donor's own front.
        for donor in donor_maps:
            if not idle.any():
                break
            cand = idle & (donor >= 0)
            if not cand.any():
                continue
            cand_slots = slot_ids[cand]
            cand_donors = donor[cand]
            cand_ok = next_pos[cand_donors] <= fronts[group_of[cand_donors]] + d1
            cand_slots = cand_slots[cand_ok]
            cand_donors = cand_donors[cand_ok]
            if len(cand_slots) == 0:
                continue
            _, first = np.unique(cand_donors, return_index=True)
            win_slots = cand_slots[first]
            win_donors = cand_donors[first]
            if record:
                row[win_slots] = next_pos[win_donors] * n_slots + win_donors
            executed += len(win_slots)
            borrowed += len(win_slots)
            ptr[win_donors] += 1
            next_pos[win_donors] = positions[win_donors, ptr[win_donors]]
            idle[win_slots] = False

        if record:
            schedule_rows.append(row)
        if executed > executed_before:
            busy_cycles += 1

        # Per-group front advance: up to the group's earliest unexecuted op,
        # capped at one window of refill per cycle.
        earliest = np.full(n_fronts, _INF, dtype=np.int64)
        np.minimum.at(earliest, group_of, next_pos)
        fronts = np.minimum(earliest, fronts + window)

    schedule = np.array(schedule_rows, dtype=np.int64) if record else None
    return CompactionResult(
        cycles=cycles,
        busy_cycles=busy_cycles,
        executed_ops=executed,
        borrowed_ops=borrowed,
        schedule=schedule,
    )


def unpack_schedule(
    schedule: np.ndarray, shape: tuple[int, int, int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split flat schedule entries back into ``(t, l, c1, c2)`` coordinates.

    Entries of -1 (idle) map to coordinate -1 in every component.
    """
    t_steps, lanes, c1, c2 = shape
    n_slots = lanes * c1 * c2
    idle = schedule < 0
    t = schedule // n_slots
    stream = schedule % n_slots
    lane = stream // (c1 * c2)
    i1 = (stream // c2) % c1
    i2 = stream % c2
    for arr in (t, lane, i1, i2):
        arr[idle] = -1
    return t, lane, i1, i2
