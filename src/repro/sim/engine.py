"""End-to-end cycle simulation of networks on borrowing architectures.

The engine follows the paper's methodology (Sec. V): every layer is lowered
to GEMMs and blocked onto the core (Figure 1); weight blocks are
preprocessed and activation blocks skipped on the fly per the configured
borrowing distances; cycles per block include stalls from output
synchronization, SRAM bank conflicts and buffer fullness; end-to-end latency
sums the blocks.

Because repeated passes of one GEMM are statistically identical, the engine
samples a configurable number of passes per GEMM (including edge passes)
and extrapolates -- the same block-sampling the paper's own
PyTorch-fed simulator performs.  Everything is deterministic in the option
seed, and layer results are memoized on the full simulation key.

Persistent caching is two-tiered: layer results store under
:func:`simulation_key` (:data:`SIMULATION_KEY_VERSION`), and whole-network
results under :func:`network_key` (:data:`NETWORK_KEY_VERSION`), so a warm
:func:`simulate_network` is a single read.  The engine only knows the
:class:`LayerResultCache` / :class:`NetworkResultCache` protocols; the
disk-backed implementation lives in :mod:`repro.runtime.cache`.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.config import ArchConfig, ModelCategory, sparse_a, sparse_b
from repro.core.overhead import overhead_of
from repro.obs import trace as obs
from repro.gemm.layers import GemmShape
from repro.gemm.tiling import TileGrid, tile_grid
from repro.memory.dram import dram_stall_factor, layer_traffic_bytes
from repro.memory.sram import SramModel
from repro.sim.compaction import compact_schedule, compact_schedule_batch
from repro.sim.dual import dual_sparse_cycles, dual_sparse_cycles_batch
from repro.sim.shuffle import rotation_shuffle
from repro.workloads.models import (
    Network,
    NetworkLayer,
    RawGemmSpec,
    gemm_content,
    network_fingerprint,
)
from repro.workloads.sparsity import (
    SparsityProfile,
    act_profile,
    activation_tile_mask,
    sample_act_field,
    sample_weight_field,
    weight_profile,
    weight_tile_mask,
)


@dataclass(frozen=True)
class SimulationOptions:
    """Sampling and stall-modeling knobs.

    ``passes_per_gemm`` output tiles are simulated per GEMM (edge tiles are
    sampled with their natural probability); K dimensions longer than
    ``max_t_steps`` time steps are sampled as segments and scaled.
    ``pipeline_drain`` models the output-synchronization flush between
    passes of a sparse run (capped at a quarter of the tile's depth so
    shallow tiles are not swamped).  ``include_dram`` enables the off-chip
    bandwidth check; the paper provisions 50 GB/s precisely so DRAM never
    throttles (Sec. V), so it is off by default and available for ablation.
    """

    passes_per_gemm: int = 6
    max_t_steps: int = 128
    seed: int = 2022
    pipeline_drain: int = 2
    include_stalls: bool = True
    include_dram: bool = False

    def __post_init__(self) -> None:
        if self.passes_per_gemm < 1:
            raise ValueError("passes_per_gemm must be >= 1")
        if self.max_t_steps < 4:
            raise ValueError("max_t_steps must be >= 4")

    def to_dict(self) -> dict:
        """JSON-serializable form (the spec files' ``options`` shape)."""
        return {
            "passes_per_gemm": self.passes_per_gemm,
            "max_t_steps": self.max_t_steps,
            "seed": self.seed,
            "pipeline_drain": self.pipeline_drain,
            "include_stalls": self.include_stalls,
            "include_dram": self.include_dram,
        }

    @staticmethod
    def from_dict(data: dict, defaults: dict | None = None) -> "SimulationOptions":
        """Build options from a mapping, rejecting unknown keys.

        ``defaults`` (same key set) fills in anything the mapping omits --
        what the declarative spec loaders use for their lighter default
        sampling.
        """
        known = set(SimulationOptions().to_dict())
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown simulation options {sorted(unknown)}; "
                f"accepted: {sorted(known)}"
            )
        return SimulationOptions(**{**(defaults or {}), **data})


@dataclass(frozen=True)
class TileResult:
    """Cycles for one output tile (pass)."""

    cycles: int
    dense_cycles: int
    executed_ops: int
    borrowed_ops: int

    @property
    def speedup(self) -> float:
        return self.dense_cycles / self.cycles if self.cycles else 1.0


@dataclass(frozen=True)
class GemmSimResult:
    """Extrapolated result for one GEMM (all passes, all repeats)."""

    shape: GemmShape
    cycles: float
    dense_cycles: int
    sampled_passes: int

    @property
    def speedup(self) -> float:
        return self.dense_cycles / self.cycles if self.cycles else 1.0


@dataclass(frozen=True)
class LayerSimResult:
    """Simulated cycles for one network layer."""

    name: str
    cycles: float
    dense_cycles: int
    gemms: tuple[GemmSimResult, ...]

    @property
    def speedup(self) -> float:
        return self.dense_cycles / self.cycles if self.cycles else 1.0


@dataclass(frozen=True)
class NetworkSimResult:
    """End-to-end latency of a network on an architecture."""

    network: str
    config: str
    category: ModelCategory
    cycles: float
    dense_cycles: int
    layers: tuple[LayerSimResult, ...]

    @property
    def speedup(self) -> float:
        return self.dense_cycles / self.cycles if self.cycles else 1.0


def simulate_tile(
    config: ArchConfig,
    a_mask: np.ndarray | None = None,
    b_mask: np.ndarray | None = None,
    t_steps: int | None = None,
) -> TileResult:
    """Schedule one output tile.

    Pass the activation mask ``[T, L, M]`` and/or weight mask ``[T, L, N]``
    for the sides the architecture should skip; a missing side is treated
    as dense.  With both masks the dual-sparse seven-step pipeline runs;
    with one, the corresponding single-sparse compaction; with none, the
    tile costs exactly ``T`` dense cycles.
    """
    if t_steps is None:
        source = a_mask if a_mask is not None else b_mask
        if source is None:
            raise ValueError("t_steps is required when no mask is given")
        t_steps = source.shape[0]

    if config.shuffle:
        if a_mask is not None:
            a_mask = rotation_shuffle(a_mask)
        if b_mask is not None:
            b_mask = rotation_shuffle(b_mask)

    if a_mask is not None and b_mask is not None:
        dual = dual_sparse_cycles(a_mask, b_mask, config)
        return TileResult(dual.cycles, t_steps, dual.executed_pairs, dual.borrowed_ops)
    if b_mask is not None:
        res = compact_schedule(b_mask, *config.b.as_tuple())
        return TileResult(res.cycles, t_steps, res.executed_ops, res.borrowed_ops)
    if a_mask is not None:
        res = compact_schedule(a_mask, *config.a.as_tuple())
        return TileResult(res.cycles, t_steps, res.executed_ops, res.borrowed_ops)
    return TileResult(t_steps, t_steps, 0, 0)


def _tile_cycles_batch(
    config: ArchConfig,
    pairs: "list[tuple[np.ndarray | None, np.ndarray | None]]",
) -> list[int]:
    """Cycles for a batch of sampled output tiles of one GEMM.

    Matches ``simulate_tile(...).cycles`` per pair exactly, but schedules
    the whole batch through one cycle loop (``compact_schedule_batch`` /
    ``dual_sparse_cycles_batch``) so the sampled passes share each
    per-cycle numpy dispatch.  Within one GEMM every pass has the same
    sparse sides, so the first pair picks the pipeline.
    """
    if config.shuffle:
        pairs = [
            (
                rotation_shuffle(a) if a is not None else None,
                rotation_shuffle(b) if b is not None else None,
            )
            for a, b in pairs
        ]
    first_a, first_b = pairs[0]
    if first_a is not None and first_b is not None:
        return [r.cycles for r in dual_sparse_cycles_batch(pairs, config)]
    if first_b is not None:
        results = compact_schedule_batch(
            [b for _, b in pairs], *config.b.as_tuple()
        )
    else:
        results = compact_schedule_batch(
            [a for a, _ in pairs], *config.a.as_tuple()
        )
    return [r.cycles for r in results]


def _layer_seed(*parts: object) -> int:
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class _GemmSparsity:
    """Which sides of one GEMM the simulation should treat as sparse."""

    weights: SparsityProfile | None
    activations: SparsityProfile | None

    @property
    def any(self) -> bool:
        return self.weights is not None or self.activations is not None


def _effective_sparsity(
    gemm: GemmShape,
    layer: NetworkLayer,
    config: ArchConfig,
    category: ModelCategory,
) -> _GemmSparsity:
    """Combine model category, tensor properties and datapath support."""
    w_density = layer.weight_density if (
        category.weights_sparse and not gemm.weight_is_dynamic
    ) else 1.0
    a_density = layer.act_density if category.activations_sparse else 1.0
    use_b = config.supports_b_sparsity and w_density < 1.0
    use_a = config.supports_a_sparsity and a_density < 1.0
    weights = weight_profile(w_density) if use_b else None
    activations = act_profile(a_density) if use_a else None
    return _GemmSparsity(weights, activations)


def _scheduling_config(config: ArchConfig, sparsity: _GemmSparsity) -> ArchConfig:
    """The borrowing distances actually exercised on this GEMM.

    A ``Sparse.AB`` datapath running single-sparse data *downgrades*
    (Table III): with dense A the per-PE pair arbitration degenerates to
    the preprocessing reach ``Sparse.B(db1, db2, db3)``; with dense B the
    lane/row coordination is lost, leaving ``Sparse.A(da1, 0, 0)``.
    """
    if config.family != "Sparse.AB":
        return config
    use_b = sparsity.weights is not None
    use_a = sparsity.activations is not None
    if use_b and not use_a:
        return sparse_b(
            config.b.d1, config.b.d2, config.b.d3,
            shuffle=config.shuffle, geometry=config.geometry,
        )
    if use_a and not use_b:
        return sparse_a(
            config.a.d1, 0, 0, shuffle=config.shuffle, geometry=config.geometry
        )
    return config


@lru_cache(maxsize=512)
def _sampled_passes(
    seed: int,
    weights: SparsityProfile | None,
    activations: SparsityProfile | None,
    gemm: GemmShape,
    geometry: "CoreGeometry",
    passes_per_gemm: int,
    max_t_steps: int,
) -> tuple:
    """Sampled ``(a_mask, b_mask)`` pass tiles for one GEMM, memoized.

    The whole draw sequence -- factor fields, pass selection, tile masks
    -- is a pure function of these arguments and crucially does *not*
    depend on the scheduling config, so a design-space sweep redraws
    byte-identical tiles for every design point.  Sampling the factor
    fields (millions of gamma variates per GEMM) dominated sweep profiles
    once scheduling was vectorized; memoizing turns every re-visit into a
    lookup.  The rng is local, so a cache hit leaves no stream behind.
    The cached masks are read-only by contract (every consumer copies
    before mutating).
    """
    rng = np.random.default_rng(seed)
    grid = tile_grid(gemm, geometry)

    w_field = None
    if weights:
        w_field = sample_weight_field(
            rng, weights, gemm.k, gemm.n, gemm.k_channels, k0=geometry.k0
        )
    a_field = None
    if activations:
        a_field = sample_act_field(
            rng, activations, gemm.k, gemm.m, gemm.k_channels, k0=geometry.k0
        )

    n_passes = grid.m_tiles * grid.n_tiles
    samples = min(passes_per_gemm, n_passes)
    pass_ids = rng.choice(n_passes, size=samples, replace=False)

    full_t = grid.t_steps
    seg_t = min(full_t, max_t_steps)

    pairs = []
    for pass_id in pass_ids:
        mi, ni = divmod(int(pass_id), grid.n_tiles)
        k_start = 0
        if seg_t < full_t:
            k_start = int(rng.integers(0, full_t - seg_t + 1)) * geometry.k0
        a_mask = None
        b_mask = None
        if weights is not None:
            b_mask = weight_tile_mask(
                rng, weights, w_field,
                t_steps=seg_t, k0=geometry.k0,
                k_offset=k_start, k_total=gemm.k,
                n_offset=ni * geometry.n0, n_tile=geometry.n0, n_total=gemm.n,
            )
        if activations is not None:
            a_mask = activation_tile_mask(
                rng, activations, a_field,
                t_steps=seg_t, k0=geometry.k0,
                k_offset=k_start, k_total=gemm.k,
                m_offset=mi * geometry.m0, m_tile=geometry.m0, m_total=gemm.m,
            )
        pairs.append((a_mask, b_mask))
    return tuple(pairs)


def _simulate_gemm(
    gemm: GemmShape,
    layer: NetworkLayer,
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions,
) -> GemmSimResult:
    geometry = config.geometry
    grid = tile_grid(gemm, geometry)
    sparsity = _effective_sparsity(gemm, layer, config, category)
    if not sparsity.any:
        return GemmSimResult(gemm, float(grid.dense_cycles), grid.dense_cycles, 0)
    sched_config = _scheduling_config(config, sparsity)

    seed = _layer_seed(options.seed, gemm, layer.weight_density, layer.act_density)
    if obs.ACTIVE.enabled:
        with obs.ACTIVE.span(
            "engine.sample_passes", gemm=f"{gemm.m}x{gemm.k}x{gemm.n}"
        ):
            pairs = _sampled_passes(
                seed, sparsity.weights, sparsity.activations, gemm, geometry,
                options.passes_per_gemm, options.max_t_steps,
            )
    else:
        pairs = _sampled_passes(
            seed, sparsity.weights, sparsity.activations, gemm, geometry,
            options.passes_per_gemm, options.max_t_steps,
        )
    samples = len(pairs)
    n_passes = grid.m_tiles * grid.n_tiles
    full_t = grid.t_steps
    seg_t = min(full_t, options.max_t_steps)
    scale_t = full_t / seg_t

    # Schedule the sampled passes as one batch: the tiles of a GEMM share
    # every per-cycle numpy dispatch of the scheduler's loop instead of
    # paying it per tile.
    drain = min(options.pipeline_drain, max(0, seg_t // 4))
    total_cycles = 0.0
    if obs.ACTIVE.enabled:
        with obs.ACTIVE.span("engine.tile_batch", passes=samples):
            for tile_cycles in _tile_cycles_batch(sched_config, list(pairs)):
                total_cycles += (tile_cycles + drain) * scale_t
    else:
        for tile_cycles in _tile_cycles_batch(sched_config, list(pairs)):
            total_cycles += (tile_cycles + drain) * scale_t

    mean_cycles = total_cycles / samples
    cycles = mean_cycles * n_passes * gemm.repeats
    cycles = min(max(cycles, _min_cycles(grid, sched_config)), float(grid.dense_cycles))
    return GemmSimResult(gemm, cycles, grid.dense_cycles, samples)


def _min_cycles(grid: TileGrid, config: ArchConfig) -> float:
    """Hard floor: the combined window caps speedup at the ABUF depth."""
    cap = (1 + config.a.d1) * (1 + config.b.d1)
    return grid.dense_cycles / cap


def _apply_stalls(
    cycles: float,
    gemm: GemmShape,
    layer: NetworkLayer,
    config: ArchConfig,
    category: ModelCategory,
    dense_cycles: int,
    options: SimulationOptions,
) -> float:
    """SRAM bank-conflict and DRAM-bandwidth stalls for one GEMM."""
    geometry = config.geometry
    speedup = dense_cycles / cycles if cycles else 1.0
    # Both operand streams advance at the compacted schedule rate, so both
    # SRAMs are provisioned to the design's ideal speedup (Sec. V).
    provisioned = float((1 + config.a.d1) * (1 + config.b.d1))
    sram = SramModel(bw_scale_a=provisioned, bw_scale_b=provisioned)
    frac = sram.stall_fraction(a_fetch_rate=speedup, b_fetch_rate=speedup)
    cycles *= 1.0 + frac
    if options.include_dram:
        w_density = layer.weight_density if category.weights_sparse else 1.0
        meta_bits = overhead_of(config).metadata_bits
        traffic = layer_traffic_bytes(
            gemm.m, gemm.k, gemm.n, w_density, metadata_bits=meta_bits
        ) * gemm.repeats
        cycles *= dram_stall_factor(traffic, cycles, geometry.frequency_mhz)
    return cycles


class LayerResultCache(Protocol):
    """A persistent store for simulated layers, keyed by :func:`simulation_key`.

    ``get`` returns ``None`` on a miss (including unreadable or corrupt
    entries -- the engine then recomputes and overwrites).  Implementations
    live outside the engine (see :mod:`repro.runtime.cache`); the engine only
    knows this protocol so the dependency points runtime -> sim.
    """

    def get(self, key: str) -> LayerSimResult | None: ...

    def put(self, key: str, result: LayerSimResult) -> None: ...


@runtime_checkable
class NetworkResultCache(Protocol):
    """The optional second cache tier: whole-network results.

    Keyed by :func:`network_key`, which hashes the per-layer simulation
    keys together with the display names the stored result carries, so a
    warm :func:`simulate_network` resolves in a single read instead of one
    lookup (plus re-aggregation) per layer.  A persistent cache that also
    implements this protocol (``get_network`` / ``put_network`` -- checked
    structurally at runtime) gets the network tier for free; one that only
    implements :class:`LayerResultCache` keeps working layer-by-layer.
    """

    def get_network(self, key: str) -> "NetworkSimResult | None": ...

    def put_network(self, key: str, result: "NetworkSimResult") -> None: ...


_persistent_cache: LayerResultCache | None = None

#: Version tag of the simulation-key schema.  Bump whenever the simulation
#: semantics change in a way that invalidates previously cached results.
#: (v2: workload-side content serializes through the shared
#: :func:`repro.workloads.models.gemm_content` canonical form that also
#: feeds workload fingerprints.)
SIMULATION_KEY_VERSION = "layer-sim-v2"

#: Version tag of the network-key schema.  Bump when the *aggregation* of
#: layer results into a network result changes (the layer tier is covered
#: separately: network keys embed the per-layer simulation keys, so a
#: ``SIMULATION_KEY_VERSION`` bump invalidates both tiers at once).
#: (v2: keys embed the workload content fingerprint, so user-defined
#: networks -- which share neither a registry name nor a factory -- cache
#: correctly and can never collide on display names.)
NETWORK_KEY_VERSION = "network-sim-v2"


def simulation_key(
    gemms: tuple[GemmShape, ...],
    weight_density: float,
    act_density: float,
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions,
) -> str:
    """Content-addressed key of one layer simulation.

    Covers exactly the inputs the simulation depends on: the GEMM shapes,
    the layer densities, the borrowing configuration (distances, shuffle,
    geometry -- but *not* the display name), the model category and the
    sampling options.  Stable across processes and sessions, so it doubles
    as the on-disk key of the persistent result cache.
    """
    geometry = config.geometry
    parts = [
        SIMULATION_KEY_VERSION,
        gemm_content(gemms),
        repr(float(weight_density)),
        repr(float(act_density)),
        f"a={config.a.as_tuple()}",
        f"b={config.b.as_tuple()}",
        f"shuffle={int(config.shuffle)}",
        f"geom={geometry.k0},{geometry.n0},{geometry.m0},"
        f"{geometry.frequency_mhz!r},{geometry.precision_bits}",
        category.value,
        f"opts={options.passes_per_gemm},{options.max_t_steps},{options.seed},"
        f"{options.pipeline_drain},{int(options.include_stalls)},{int(options.include_dram)}",
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def network_key(
    network: Network,
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions,
) -> str:
    """Content-addressed key of one whole-network simulation.

    Derived from the workload's content fingerprint
    (:func:`repro.workloads.models.network_fingerprint` -- layer specs plus
    the per-layer density assignments, so user-defined networks can never
    collide on a display name) and the per-layer :func:`simulation_key`
    sequence -- which inherits every input the layer simulations depend on,
    including :data:`SIMULATION_KEY_VERSION` -- plus exactly the display
    metadata the cached :class:`NetworkSimResult` carries: the network
    name, the layer names in order, and the configuration label (which the
    layer keys deliberately exclude).  Hashing keys, not results, keeps the
    derivation cheap: a warm lookup costs one hash and one disk read, no
    simulation.
    """
    parts = [
        NETWORK_KEY_VERSION,
        network.name,
        f"fp={network_fingerprint(network)}",
        config.label,
        category.value,
    ]
    for layer in network.layers:
        key = simulation_key(
            tuple(layer.spec.gemms()),
            layer.weight_density,
            layer.act_density,
            config,
            category,
            options,
        )
        parts.append(f"{layer.name}={key}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def set_persistent_cache(cache: LayerResultCache | None) -> LayerResultCache | None:
    """Install (or remove, with ``None``) the persistent layer-result cache.

    Returns the previously installed cache so callers can restore it.
    """
    global _persistent_cache
    previous = _persistent_cache
    _persistent_cache = cache
    return previous


def get_persistent_cache() -> LayerResultCache | None:
    return _persistent_cache


@contextmanager
def persistent_cache(
    cache: LayerResultCache | None,
) -> Iterator[LayerResultCache | None]:
    """Scoped installation of the persistent layer-result cache.

    Installs ``cache`` (or explicitly none) for the duration of the block
    and restores the previously installed cache afterwards, even on error.
    This is how :class:`repro.api.Session` keeps its cache session-scoped
    instead of mutating global state permanently.
    """
    previous = set_persistent_cache(cache)
    try:
        yield cache
    finally:
        set_persistent_cache(previous)


def clear_memo_cache() -> None:
    """Drop the in-process layer memoization (not the persistent cache)."""
    _simulate_layer_cached.cache_clear()
    _sampled_passes.cache_clear()


def _compute_layer(
    gemms: tuple[GemmShape, ...],
    weight_density: float,
    act_density: float,
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions,
) -> LayerSimResult:
    layer = NetworkLayer(
        spec=RawGemmSpec(name="layer", shapes=gemms),
        weight_density=weight_density,
        act_density=act_density,
    )
    if obs.ACTIVE.enabled:
        with obs.ACTIVE.span("engine.compute_layer", gemms=len(gemms)):
            return _compute_layer_body(layer, gemms, config, category, options)
    return _compute_layer_body(layer, gemms, config, category, options)


def _compute_layer_body(
    layer: NetworkLayer,
    gemms: tuple[GemmShape, ...],
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions,
) -> LayerSimResult:
    results = []
    cycles = 0.0
    dense = 0
    for gemm in gemms:
        res = _simulate_gemm(gemm, layer, config, category, options)
        gemm_cycles = res.cycles
        if options.include_stalls and gemm_cycles < res.dense_cycles:
            gemm_cycles = _apply_stalls(
                gemm_cycles, gemm, layer, config, category, res.dense_cycles, options
            )
            gemm_cycles = min(gemm_cycles, float(res.dense_cycles))
            res = GemmSimResult(gemm, gemm_cycles, res.dense_cycles, res.sampled_passes)
        results.append(res)
        cycles += res.cycles
        dense += res.dense_cycles
    return LayerSimResult(name="layer", cycles=cycles, dense_cycles=dense, gemms=tuple(results))


@lru_cache(maxsize=32768)
def _simulate_layer_cached(
    gemms: tuple[GemmShape, ...],
    weight_density: float,
    act_density: float,
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions,
) -> LayerSimResult:
    cache = _persistent_cache
    key = None
    if cache is not None:
        key = simulation_key(gemms, weight_density, act_density, config, category, options)
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = _compute_layer(gemms, weight_density, act_density, config, category, options)
    if cache is not None and key is not None:
        cache.put(key, result)
    return result


def simulate_layer(
    layer: NetworkLayer,
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions | None = None,
) -> LayerSimResult:
    """Simulate one layer; results are memoized on the full key.

    The cache key deliberately excludes the layer *name*, so topologically
    repeated blocks (ResNet stages, BERT encoders) simulate once; the
    returned result nevertheless carries the layer's real display name.
    """
    options = options or SimulationOptions()
    result = _simulate_layer_cached(
        tuple(layer.spec.gemms()),
        layer.weight_density,
        layer.act_density,
        config,
        category,
        options,
    )
    if result.name != layer.name:
        result = replace(result, name=layer.name)
    return result


def _network_tier(cache: LayerResultCache | None) -> NetworkResultCache | None:
    """The installed cache, if it also implements the network tier."""
    if cache is not None and isinstance(cache, NetworkResultCache):
        return cache
    return None


def simulate_network(
    network: Network,
    config: ArchConfig,
    category: ModelCategory,
    options: SimulationOptions | None = None,
) -> NetworkSimResult:
    """End-to-end latency of a network on an architecture configuration.

    Resolution is tiered: if the installed persistent cache implements
    :class:`NetworkResultCache`, the whole network is looked up under its
    :func:`network_key` first -- a warm run answers in one read with zero
    layer simulations.  On a miss (or with a layer-only cache) the layers
    simulate individually through the layer tier, and the aggregated result
    is written back to the network tier for the next run.
    """
    options = options or SimulationOptions()
    tier = _network_tier(_persistent_cache)
    key = None
    if tier is not None:
        key = network_key(network, config, category, options)
        hit = tier.get_network(key)
        if hit is not None:
            return hit
    layer_results = []
    cycles = 0.0
    dense = 0
    if obs.ACTIVE.enabled:
        with obs.ACTIVE.span(
            "engine.network_compute",
            network=network.name,
            config=config.label,
            layers=len(network.layers),
        ):
            for layer in network.layers:
                res = simulate_layer(layer, config, category, options)
                layer_results.append(res)
                cycles += res.cycles
                dense += res.dense_cycles
    else:
        for layer in network.layers:
            res = simulate_layer(layer, config, category, options)
            layer_results.append(res)
            cycles += res.cycles
            dense += res.dense_cycles
    result = NetworkSimResult(
        network=network.name,
        config=config.label,
        category=category,
        cycles=cycles,
        dense_cycles=dense,
        layers=tuple(layer_results),
    )
    if tier is not None and key is not None:
        tier.put_network(key, result)
    return result
