"""Cycle-level performance model of the Griffin borrowing architectures.

The simulator follows the paper's methodology (Sec. V): tensor blocks are
lowered to blocked nonzero masks, weight (B) blocks are preprocessed into a
compressed schedule, activation (A) zeros are skipped on the fly, and the
number of cycles per block follows the borrowing strategy of the configured
architecture, including stalls from output synchronization, SRAM bank
conflicts, and ABUF/BBUF fullness.
"""

from repro.sim.compaction import CompactionResult, compact_schedule, compact_schedule_reference
from repro.sim.shuffle import rotation_shuffle
from repro.sim.dual import dual_sparse_cycles
from repro.sim.preprocess import CompressedWeights, expand, preprocess_weights
from repro.sim.functional import (
    FunctionalResult,
    dense_reference,
    execute_activation_sparse,
    execute_dual_sparse,
    execute_weight_sparse,
)
from repro.sim.engine import (
    LayerSimResult,
    NetworkSimResult,
    SimulationOptions,
    TileResult,
    simulate_layer,
    simulate_network,
    simulate_tile,
)
from repro.sim.analytical import analytical_speedup, analytical_tile_cycles

__all__ = [
    "CompactionResult",
    "compact_schedule",
    "compact_schedule_reference",
    "rotation_shuffle",
    "dual_sparse_cycles",
    "CompressedWeights",
    "preprocess_weights",
    "expand",
    "FunctionalResult",
    "dense_reference",
    "execute_weight_sparse",
    "execute_activation_sparse",
    "execute_dual_sparse",
    "simulate_tile",
    "simulate_layer",
    "simulate_network",
    "SimulationOptions",
    "TileResult",
    "LayerSimResult",
    "NetworkSimResult",
    "analytical_speedup",
    "analytical_tile_cycles",
]
