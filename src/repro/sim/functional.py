"""Value-level functional execution of the sparse schedules.

The cycle model works on nonzero masks; this module closes the loop by
pushing *values* through the same schedules and checking the arithmetic:
every effectual product must be computed exactly once, by some multiplier,
and accumulated into the right output -- no matter how far the borrowing
moved it.  ``C == A @ B`` after scheduled execution is the strongest
correctness statement the reproduction can make about the borrowing
semantics (operand routing, metadata provenance, partial-sum return paths).

The functions return both the computed output and the schedule statistics,
so tests can simultaneously assert numerical equivalence and that the
functional path took exactly as many cycles as the performance model says.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ArchConfig
from repro.sim.compaction import compact_schedule, unpack_schedule
from repro.sim.shuffle import rotation_shuffle


@dataclass(frozen=True)
class FunctionalResult:
    """Output and schedule statistics of one value-level execution."""

    output: np.ndarray  # C[M, N]
    cycles: int
    executed_ops: int
    borrowed_ops: int


def _block_operand(values: np.ndarray, k0: int) -> tuple[np.ndarray, int]:
    """Pad the K axis (last) to a multiple of ``k0`` and report T steps."""
    k = values.shape[-1]
    t_steps = -(-k // k0)
    padded = np.zeros(values.shape[:-1] + (t_steps * k0,), dtype=values.dtype)
    padded[..., :k] = values
    return padded, t_steps


def dense_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The answer every scheduled execution must reproduce."""
    return np.asarray(a, dtype=np.int64) @ np.asarray(b, dtype=np.int64)


def execute_weight_sparse(
    a: np.ndarray, b: np.ndarray, config: ArchConfig
) -> FunctionalResult:
    """Run ``C = A @ B`` through the Sparse.B schedule of ``config``.

    ``a`` is ``[M, K]`` (dense activations), ``b`` is ``[K, N]`` (pruned
    weights).  B's nonzero mask is compacted with the ``db`` distances; each
    scheduled element's original coordinates select the matching A operand
    (the AMUX metadata path) and route the product to the element's own
    output column (the partial-sum return path for ``db3`` borrows).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    k0 = config.geometry.k0
    a_blk, t_steps = _block_operand(a, k0)
    b_blk, _ = _block_operand(b.T, k0)  # [N, K_pad]
    n_dim = b.shape[1]

    mask = (b_blk != 0).reshape(n_dim, t_steps, k0).transpose(1, 2, 0)  # [T, L, N]
    if config.shuffle:
        mask = rotation_shuffle(mask)
    result = compact_schedule(
        mask, *config.b.as_tuple(), return_schedule=True
    )
    out = np.zeros((a.shape[0], n_dim), dtype=np.int64)
    schedule = result.schedule
    if schedule is not None and schedule.size:
        t_src, l_src, n_src, _ = unpack_schedule(
            schedule.copy(), (t_steps, k0, n_dim, 1)
        )
        ok = schedule >= 0
        if config.shuffle:
            # Undo the rotation to recover original blocked coordinates.
            l_src = np.where(ok, (l_src + t_src) % k0, l_src)
        k_src = t_src * k0 + l_src
        for kk, nn in zip(k_src[ok], n_src[ok]):
            out[:, nn] += a_blk[:, kk] * b_blk[nn, kk]
    return FunctionalResult(
        output=out,
        cycles=result.cycles,
        executed_ops=result.executed_ops,
        borrowed_ops=result.borrowed_ops,
    )


def execute_activation_sparse(
    a: np.ndarray, b: np.ndarray, config: ArchConfig
) -> FunctionalResult:
    """Run ``C = A @ B`` through the Sparse.A schedule of ``config``.

    A's zeros are skipped on the fly with the ``da`` distances; every
    executed element multiplies the matching B operand (BMUX) for every
    output column and lands in its own output row (the ``da3`` adder-tree
    return path).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    k0 = config.geometry.k0
    a_blk, t_steps = _block_operand(a, k0)  # [M, K_pad]
    b_blk, _ = _block_operand(b.T, k0)  # [N, K_pad]
    m_dim = a.shape[0]

    mask = (a_blk != 0).reshape(m_dim, t_steps, k0).transpose(1, 2, 0)  # [T, L, M]
    if config.shuffle:
        mask = rotation_shuffle(mask)
    result = compact_schedule(mask, *config.a.as_tuple(), return_schedule=True)
    out = np.zeros((m_dim, b.shape[1]), dtype=np.int64)
    schedule = result.schedule
    if schedule is not None and schedule.size:
        t_src, l_src, m_src, _ = unpack_schedule(
            schedule.copy(), (t_steps, k0, m_dim, 1)
        )
        ok = schedule >= 0
        if config.shuffle:
            l_src = np.where(ok, (l_src + t_src) % k0, l_src)
        k_src = t_src * k0 + l_src
        for kk, mm in zip(k_src[ok], m_src[ok]):
            out[mm, :] += a_blk[mm, kk] * b_blk[:, kk]
    return FunctionalResult(
        output=out,
        cycles=result.cycles,
        executed_ops=result.executed_ops,
        borrowed_ops=result.borrowed_ops,
    )


def execute_dual_sparse(
    a: np.ndarray, b: np.ndarray, config: ArchConfig
) -> FunctionalResult:
    """Run ``C = A @ B`` through the dual-sparse seven-step pipeline.

    Phase 1 compresses B offline; phase 2 arbitrates (A, B) pairs over the
    compressed steps per PE.  Every surviving pair's product accumulates
    into the output position of its *original* coordinates regardless of
    which PE executed it.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    k0 = config.geometry.k0
    a_blk, t_steps = _block_operand(a, k0)
    b_blk, _ = _block_operand(b.T, k0)
    m_dim, n_dim = a.shape[0], b.shape[1]

    b_mask = (b_blk != 0).reshape(n_dim, t_steps, k0).transpose(1, 2, 0)
    a_mask3 = (a_blk != 0).reshape(m_dim, t_steps, k0).transpose(1, 2, 0)  # [T, L, M]
    if config.shuffle:
        b_mask = rotation_shuffle(b_mask)
        a_mask3 = rotation_shuffle(a_mask3)

    # Phase 1: offline B compression with provenance.
    phase1 = compact_schedule(
        b_mask[:, :, :, np.newaxis], *config.b.as_tuple(), return_schedule=True
    )
    sched1 = phase1.schedule
    if sched1 is None or not sched1.size:
        return FunctionalResult(
            output=np.zeros((m_dim, n_dim), dtype=np.int64),
            cycles=phase1.cycles,
            executed_ops=0,
            borrowed_ops=0,
        )
    tb, lb, nb, _ = unpack_schedule(sched1.copy(), (t_steps, k0, n_dim, 1))
    u_steps = sched1.shape[0]
    tb = tb.reshape(u_steps, k0, n_dim)
    lb = lb.reshape(u_steps, k0, n_dim)
    nb = nb.reshape(u_steps, k0, n_dim)
    occupied = tb >= 0

    # Phase 2 mask: a pair survives when the A element at B's original
    # coordinates is nonzero (in the shuffled frame A and B line up).
    tb_safe = np.where(occupied, tb, 0)
    lb_safe = np.where(occupied, lb, 0)
    paired = a_mask3[tb_safe, lb_safe]  # [U, L, N slots..., M]
    paired &= occupied[..., np.newaxis]
    pair_mask = paired.transpose(0, 1, 3, 2)  # [U, L, M, N]
    if phase1.cycles > u_steps:
        tail = np.zeros((phase1.cycles - u_steps,) + pair_mask.shape[1:], dtype=bool)
        pair_mask = np.concatenate([pair_mask, tail], axis=0)

    phase2 = compact_schedule(pair_mask, *config.a.as_tuple(), return_schedule=True)
    out = np.zeros((m_dim, n_dim), dtype=np.int64)
    sched2 = phase2.schedule
    if sched2 is not None and sched2.size:
        u_src, l_src, m_src, n_src = unpack_schedule(
            sched2.copy(), (pair_mask.shape[0], k0, m_dim, n_dim)
        )
        ok = sched2 >= 0
        for uu, ll, mm, nn in zip(u_src[ok], l_src[ok], m_src[ok], n_src[ok]):
            t_orig = tb[uu, ll, nn]
            l_orig = lb[uu, ll, nn]
            n_orig = nb[uu, ll, nn]
            if config.shuffle:
                l_unrot = (l_orig + t_orig) % k0
            else:
                l_unrot = l_orig
            kk = t_orig * k0 + l_unrot
            out[mm, n_orig] += a_blk[mm, kk] * b_blk[n_orig, kk]
    return FunctionalResult(
        output=out,
        cycles=phase2.cycles,
        executed_ops=phase2.executed_ops,
        borrowed_ops=phase2.borrowed_ops,
    )
