"""Dual-sparsity scheduling: the seven-step pipeline of Figure 3.

Supporting sparsity in both matrices composes the two single-sparse
mechanisms:

1. **Preprocess B** offline with the ``(db1, db2, db3)`` distances into a
   compressed schedule plus metadata (steps 1 of Fig. 3).
2. **Filter** the on-the-fly A zero mask through that schedule: an operation
   survives only if the B element occupying the compressed slot is matched
   by a nonzero A element at the *original* B coordinates (steps 2-3).
3. **Arbitrate and select** the surviving pairs on the fly with the
   ``(da1, da2, da3)`` distances over the compressed time axis (steps 4-7).

The ABUF reach of the composed design spans ``(1+da1)`` compressed steps,
each covering up to ``(1+db1)`` original positions -- hence the paper's ABUF
depth ``L = (1+da1)(1+db1)`` and the combined ideal speedup cap of ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ArchConfig
from repro.sim.compaction import (
    CompactionResult,
    compact_schedule,
    compact_schedule_batch,
    unpack_schedule,
)


@dataclass(frozen=True)
class DualResult:
    """Cycle outcome of a dual-sparse tile."""

    cycles: int
    b_schedule_len: int
    executed_pairs: int
    borrowed_ops: int


def filtered_pair_mask(
    a_mask: np.ndarray, b_mask: np.ndarray, config: ArchConfig
) -> tuple[np.ndarray, int]:
    """Build the per-PE effectual-pair mask over B's compressed schedule.

    Args:
        a_mask: activation nonzero mask, shape ``[T, L, M]`` (identical for
            every output column).
        b_mask: weight nonzero mask, shape ``[T, L, N]`` (identical for
            every output row).
        config: architecture providing the ``db`` distances.

    Returns:
        ``(pair_mask, schedule_len)`` where ``pair_mask`` has shape
        ``[U, L, M, N]``: slot ``(l, m, n)`` at compressed step ``u`` is
        effectual iff the B element scheduled there is paired with a nonzero
        A element.
    """
    t_steps, lanes, m_dim = a_mask.shape
    if b_mask.shape[0] != t_steps or b_mask.shape[1] != lanes:
        raise ValueError(
            f"A {a_mask.shape} and B {b_mask.shape} masks disagree on (T, L)"
        )
    n_dim = b_mask.shape[2]
    db1, db2, db3 = config.b.as_tuple()
    b_result = compact_schedule(
        b_mask[:, :, :, np.newaxis], db1, db2, db3, return_schedule=True
    )
    schedule = b_result.schedule
    if schedule is None or len(schedule) == 0:
        # Nothing scheduled (all-zero B): the drain still streams.
        empty = np.zeros((b_result.cycles, lanes, m_dim, n_dim), dtype=bool)
        return empty, b_result.cycles
    t_orig, l_orig, n_orig, _ = unpack_schedule(
        schedule.copy(), (t_steps, lanes, n_dim, 1)
    )
    u_steps = schedule.shape[0]
    # Slot layout of the B schedule is (lane, n); look the paired A element
    # up at B's original (t, lane) coordinates for every output row m.
    occupied = t_orig >= 0
    t_safe = np.where(occupied, t_orig, 0)
    l_safe = np.where(occupied, l_orig, 0)
    paired = a_mask[t_safe, l_safe]  # [U, L*N slots, M]
    paired &= occupied[:, :, np.newaxis]
    pair_mask = paired.reshape(u_steps, lanes, n_dim, m_dim).transpose(0, 1, 3, 2)
    if b_result.cycles > u_steps:
        # The B drain tail (trailing zero slices streaming at window rate)
        # still occupies compressed steps with no work in them.
        tail = np.zeros((b_result.cycles - u_steps,) + pair_mask.shape[1:], dtype=bool)
        pair_mask = np.concatenate([pair_mask, tail], axis=0)
    return pair_mask, b_result.cycles


def dual_sparse_cycles(
    a_mask: np.ndarray, b_mask: np.ndarray, config: ArchConfig
) -> DualResult:
    """Cycles to execute one dual-sparse tile under ``config``.

    The A-side compaction runs over the compressed time axis with the
    ``da`` distances: lane lookaside along ``L`` and neighbour borrowing
    along the output-row axis ``M`` (each output column ``n`` keeps its own
    stream; there is no ``da``-borrowing across columns).
    """
    pair_mask, b_len = filtered_pair_mask(a_mask, b_mask, config)
    da1, da2, da3 = config.a.as_tuple()
    a_result = compact_schedule(pair_mask, da1, da2, da3)
    return DualResult(
        cycles=a_result.cycles,
        b_schedule_len=b_len,
        executed_pairs=a_result.executed_ops,
        borrowed_ops=a_result.borrowed_ops,
    )


def dual_sparse_cycles_batch(
    pairs: "list[tuple[np.ndarray, np.ndarray]]", config: ArchConfig
) -> list[DualResult]:
    """Batched :func:`dual_sparse_cycles` over same-geometry tiles.

    The B preprocessing (which records a schedule) runs per tile; the
    expensive on-the-fly A-side cycle loop over the ``[U, L, M, N]`` pair
    masks runs once for the whole batch through
    :func:`compact_schedule_batch` (the compressed depths ``U`` may differ
    per tile).  Results are identical to mapping
    :func:`dual_sparse_cycles` over ``pairs``.
    """
    filtered = [filtered_pair_mask(a, b, config) for a, b in pairs]
    da1, da2, da3 = config.a.as_tuple()
    a_results = compact_schedule_batch([pm for pm, _ in filtered], da1, da2, da3)
    return [
        DualResult(
            cycles=res.cycles,
            b_schedule_len=b_len,
            executed_pairs=res.executed_ops,
            borrowed_ops=res.borrowed_ops,
        )
        for res, (_, b_len) in zip(a_results, filtered)
    ]
