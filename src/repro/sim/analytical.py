"""Closed-form cycle estimates verifying the simulator (paper Sec. V).

The paper builds "an analytical model, verified by a simulator" around the
borrowing distances.  We reproduce that layering: these closed forms predict
tile cycles from density statistics alone, and the test suite checks the
cycle simulator against them (and vice versa) on randomized tiles.

For a tile of ``T`` time steps with per-slot effectual density ``p`` and
window ``w = 1 + d1``, a slot's drain time is governed by three bounds:

* **window bound** -- the front advances at most ``w`` positions per cycle,
  so ``cycles >= T / w`` (the paper's ideal-speedup cap ``1 + d1``);
* **work bound** -- a slot executes one op per cycle, so
  ``cycles >= nnz_slot``; borrowing over a pool of ``g = (1+d2)(1+d3)``
  neighbours averages this bound over the pool;
* **fluctuation loss** -- when the local density hovers near ``1/w`` the
  slot alternates between starving and saturating; a Gaussian local-density
  model prices that as a smooth-max between the two bounds.

The tile ends when the *slowest* slot drains (shared front), so the model
takes an order-statistics max across the heterogeneous per-slot densities.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import ArchConfig


def _smooth_max(mu: float, floor: float, sigma: float) -> float:
    """``E[max(X, floor)]`` for ``X ~ N(mu, sigma)`` -- the rectified mean."""
    if sigma <= 0.0:
        return max(mu, floor)
    z = (mu - floor) / sigma
    phi = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
    cdf = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
    return floor + (mu - floor) * cdf + sigma * phi


def _order_stat_max(values: np.ndarray, correlation: float = 0.25) -> float:
    """Expected maximum of correlated per-slot drain rates.

    Per-stream fronts leave slots loosely coupled through borrowing, so a
    plain independent-max overestimates the tail.  We blend the empirical
    max with the mean by ``correlation``.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    return correlation * float(values.mean()) + (1.0 - correlation) * float(values.max())


def analytical_tile_cycles(
    t_steps: int,
    densities: np.ndarray,
    d1: int,
    d2: int = 0,
    d3: int = 0,
    pool_axis_len: int | None = None,
) -> float:
    """Expected cycles to drain one tile.

    Args:
        t_steps: K/K0 time steps in the tile.
        densities: per-slot effectual density, shape ``[L, C]`` (or any 2-D
            layout whose second axis is the ``d3`` pooling axis).
        d1: time lookahead.
        d2: lane pooling distance (first axis).
        d3: PE pooling distance (second axis).
        pool_axis_len: optional override of the ``d3`` axis length.
    """
    if t_steps <= 0:
        return 0.0
    densities = np.atleast_2d(np.asarray(densities, dtype=float))
    window = 1 + d1
    floor_rate = 1.0 / window

    # Borrowing pools a slot's work with its donors: approximate by a
    # moving average over the (d2, d3) neighbourhood (wrap on lanes).
    pooled = densities.copy()
    if d2 > 0:
        acc = np.zeros_like(pooled)
        for off in range(d2 + 1):
            acc += np.roll(densities, -off, axis=0)
        pooled = acc / (d2 + 1)
    if d3 > 0:
        acc = np.zeros_like(pooled)
        width = min(d3 + 1, pooled.shape[1] if pool_axis_len is None else pool_axis_len)
        for off in range(width):
            acc += np.roll(pooled, -off, axis=1)
        pooled = acc / width

    # The tile drains when its slowest stream does: the expected maximum of
    # per-stream work over S_eff effectively-independent pools adds the
    # classic Gumbel tail sqrt(2 p (1-p) ln S / T) to the mean rate.
    g = (1 + d2) * (1 + d3)
    n_slots = densities.size
    s_eff = max(n_slots / g, 2.0)
    variance = np.maximum(pooled * (1.0 - pooled), 0.0)
    tail = np.sqrt(2.0 * variance * math.log(s_eff) / (t_steps * g))
    sigma = np.sqrt(variance / max(window * g, 1))
    rates = np.array(
        [
            _smooth_max(mu, floor_rate, s)
            for mu, s in zip((pooled + tail).ravel(), sigma.ravel())
        ]
    )
    worst = float(rates.max())
    return t_steps * min(max(worst, floor_rate), 1.0)


def analytical_speedup(
    config: ArchConfig,
    weight_density: float | None,
    act_density: float | None,
    t_steps: int = 64,
    k_cv: float = 0.5,
) -> float:
    """Quick network-free speedup estimate for a design point.

    Used by the design-space explorer to pre-rank configurations before the
    cycle simulator refines the survivors.  Densities of ``None`` (or 1.0)
    mean the corresponding side is dense.
    """
    geometry = config.geometry
    w_density = 1.0 if weight_density is None else weight_density
    a_density = 1.0 if act_density is None else act_density
    use_b = config.supports_b_sparsity and w_density < 1.0
    use_a = config.supports_a_sparsity and a_density < 1.0
    if not (use_a or use_b):
        return 1.0

    rng = np.random.default_rng(7)

    def lane_profile(base: float, rows: int, cols: int) -> np.ndarray:
        cv = 0.0 if config.shuffle else k_cv
        if cv <= 0:
            return np.full((rows, cols), base)
        shape = 1.0 / (cv * cv)
        factors = rng.gamma(shape, 1.0 / shape, size=(rows, cols))
        factors /= factors.mean()
        return np.clip(base * factors, 0.01, 1.0)

    if use_b and use_a:
        dens = lane_profile(w_density, geometry.k0, geometry.n0)
        b_cycles = analytical_tile_cycles(t_steps, dens, *config.b.as_tuple())
        joint = a_density  # pair survival on top of B's schedule
        pair = lane_profile(joint, geometry.k0, geometry.m0)
        cycles = analytical_tile_cycles(
            int(round(b_cycles)), pair, *config.a.as_tuple()
        )
        return t_steps / max(cycles, 1e-9)
    if use_b:
        dens = lane_profile(w_density, geometry.k0, geometry.n0)
        cycles = analytical_tile_cycles(t_steps, dens, *config.b.as_tuple())
        return t_steps / max(cycles, 1e-9)
    dens = lane_profile(a_density, geometry.k0, geometry.m0)
    cycles = analytical_tile_cycles(t_steps, dens, *config.a.as_tuple())
    return t_steps / max(cycles, 1e-9)
