"""Offline weight preprocessing: compressed stream + metadata (Fig. 3 step 1).

Matrix B is known before execution, so zero entries are replaced by nonzero
entries borrowed from up to ``(db1, db2, db3)`` away and the result is
stored *compressed* in BSRAM: per scheduled slot, the element's value
position plus a metadata word that tells the AMUX which ABUF entry holds
the matching A operand (and, when ``db3 > 0``, whether the partial product
must detour through the extra adder tree to a neighbouring accumulator).

This module materializes that artifact bit-exactly:

* :func:`preprocess_weights` turns a weight tile mask into a
  :class:`CompressedWeights` stream whose metadata widths follow the
  overhead model (3 bits for ``B(2,0,1)``, Table III);
* :func:`expand` reconstructs which original element every slot executes,
  so tests can prove the encoding is lossless;
* the storage accounting (values + metadata bits) feeds the DRAM/SRAM
  traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ArchConfig
from repro.core.overhead import overhead_of
from repro.sim.compaction import compact_schedule, unpack_schedule


@dataclass(frozen=True)
class CompressedWeights:
    """The preprocessed form of one weight tile.

    ``slots[u, l, n]`` holds the original time-step of the element executed
    by lane ``l`` of column ``n`` at compressed step ``u`` (or -1 for an
    idle slot); ``lane_offset`` / ``col_offset`` are the borrowing
    displacements (``delta2``/``delta3``); ``tree_flag`` marks ops whose
    partial sum returns through the extra adder tree.  ``metadata_bits`` is
    the per-element width implied by the architecture's AMUX fan-in.
    """

    shape: tuple[int, int, int]  # original (T, L, N)
    slots: np.ndarray  # [U, L, N] original time step or -1
    lane_offset: np.ndarray  # [U, L, N] delta2 (0 when idle)
    col_offset: np.ndarray  # [U, L, N] delta3 (0 when idle)
    metadata_bits: int

    @property
    def steps(self) -> int:
        return self.slots.shape[0]

    @property
    def nonzeros(self) -> int:
        return int((self.slots >= 0).sum())

    @property
    def tree_flag(self) -> np.ndarray:
        """Ops executing in a neighbour PE's multiplier (Fig. 2(b))."""
        return self.col_offset > 0

    @property
    def storage_bits(self) -> int:
        """Compressed footprint: 8-bit values + metadata per nonzero."""
        return self.nonzeros * (8 + self.metadata_bits)

    @property
    def dense_storage_bits(self) -> int:
        t, l, n = self.shape
        return t * l * n * 8

    @property
    def compression_ratio(self) -> float:
        """Dense bits over compressed bits (> 1 when pruning wins)."""
        if self.storage_bits == 0:
            return float("inf")
        return self.dense_storage_bits / self.storage_bits


def preprocess_weights(b_mask: np.ndarray, config: ArchConfig) -> CompressedWeights:
    """Compress a weight tile mask ``[T, L, N]`` for a Sparse.B datapath.

    Runs the same borrow scheduler the runtime model uses (preprocessing is
    exactly a static execution of it) and re-expresses the schedule as the
    per-slot displacement metadata the hardware would store.
    """
    b_mask = np.asarray(b_mask, dtype=bool)
    if b_mask.ndim != 3:
        raise ValueError(f"weight mask must be [T, L, N], got shape {b_mask.shape}")
    if not config.supports_b_sparsity:
        raise ValueError(f"{config.label} does not preprocess weights (no db borrowing)")
    t_steps, lanes, n_dim = b_mask.shape
    result = compact_schedule(
        b_mask[:, :, :, np.newaxis], *config.b.as_tuple(), return_schedule=True
    )
    schedule = result.schedule
    if schedule is None or schedule.size == 0:
        empty = np.full((result.cycles, lanes, n_dim), -1, dtype=np.int64)
        zeros = np.zeros_like(empty)
        return CompressedWeights(
            shape=(t_steps, lanes, n_dim),
            slots=empty,
            lane_offset=zeros,
            col_offset=zeros,
            metadata_bits=overhead_of(config).metadata_bits,
        )
    u_steps = schedule.shape[0]
    t_orig, l_orig, n_orig, _ = unpack_schedule(
        schedule.copy(), (t_steps, lanes, n_dim, 1)
    )
    slots = t_orig.reshape(u_steps, lanes, n_dim)
    src_lane = l_orig.reshape(u_steps, lanes, n_dim)
    src_col = n_orig.reshape(u_steps, lanes, n_dim)
    occupied = slots >= 0
    lane_idx = np.arange(lanes)[None, :, None]
    col_idx = np.arange(n_dim)[None, None, :]
    lane_offset = np.where(occupied, (src_lane - lane_idx) % lanes, 0)
    col_offset = np.where(occupied, src_col - col_idx, 0)
    return CompressedWeights(
        shape=(t_steps, lanes, n_dim),
        slots=slots,
        lane_offset=lane_offset,
        col_offset=col_offset,
        metadata_bits=overhead_of(config).metadata_bits,
    )


def expand(compressed: CompressedWeights) -> np.ndarray:
    """Reconstruct the original nonzero mask from the compressed stream.

    The inverse of :func:`preprocess_weights`: every scheduled slot's
    ``(original step, source lane, source column)`` marks one original
    nonzero.  Lossless compression means this equals the input mask.
    """
    t_steps, lanes, n_dim = compressed.shape
    mask = np.zeros((t_steps, lanes, n_dim), dtype=bool)
    u_steps = compressed.steps
    slot_lane = np.broadcast_to(np.arange(lanes)[None, :, None], compressed.slots.shape)
    slot_col = np.broadcast_to(np.arange(n_dim)[None, None, :], compressed.slots.shape)
    occupied = compressed.slots >= 0
    src_lane = (slot_lane + compressed.lane_offset) % lanes
    src_col = slot_col + compressed.col_offset
    mask[
        compressed.slots[occupied],
        src_lane[occupied],
        src_col[occupied],
    ] = True
    return mask
