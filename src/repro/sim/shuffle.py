"""Rotation-based fine-grain load balancing (Sec. III, Load Balancing).

Unstructured sparsity leaves some lanes (k positions inside the dot-product
unit) systematically denser than others -- for example an input channel that
is never pruned.  The paper balances this by *shuffling* both input matrices
along their second blocked dimension before preprocessing / buffering: an
element at ``(i1, i2, i3)`` is relocated by a rotation of the lane index
that varies with the time step, so a persistently dense lane's surplus is
spread over all lanes across time.

In hardware the paper implements the rotation with ``K0/4`` local 4x4
crossbars instead of a full ``K0 x K0`` crossbar and observes that "this
localization does not impact the load balancing".  We therefore simulate
the idealized full rotation ``l -> (l + t) mod K0`` (the behaviour the
localized network is shown to match) while the cost model charges for the
local 4x4 crossbars the paper builds.

Because the rotation is a function of the shared (t, k) coordinates only,
A and B are permuted identically and operand pairing is preserved.
"""

from __future__ import annotations

import numpy as np

#: Size of the hardware rotation group (K0/4 local 4x4 crossbars); the cost
#: model charges for crossbars of this size.
HARDWARE_GROUP = 4


def rotation_shuffle(mask: np.ndarray) -> np.ndarray:
    """Apply the rotation shuffle to a blocked mask ``[T, L, ...]``.

    Lane ``l`` of time step ``t`` receives the element originally blocked
    at lane ``(l + t) % L`` -- a one-lane rotation per time step.

    Returns a new array; the input is not modified.
    """
    mask = np.asarray(mask)
    t_steps, lanes = mask.shape[0], mask.shape[1]
    t = np.arange(t_steps)[:, None]
    l = np.arange(lanes)[None, :]
    source = (l + t) % lanes
    gathered = np.take_along_axis(
        mask,
        source.reshape((t_steps, lanes) + (1,) * (mask.ndim - 2)),
        axis=1,
    )
    return gathered
