"""JSONL trace files: one meta header line, then one span per line.

Format (``repro-trace-v1``)::

    {"trace": "repro-trace-v1", "v": 1, "trace_id": "...", ...meta}
    {"name": ..., "id": 1, "parent": null, "t0": 0.01, "t1": 0.5, "attrs": {...}}
    ...

:func:`read_trace` also accepts Chrome trace-event JSON produced by
``repro trace export --chrome`` so summaries round-trip through either
representation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import TRACE_SCHEMA_VERSION, Tracer

TRACE_FILE_VERSION = "repro-trace-v1"


def write_trace(
    tracer: Tracer,
    path: "str | Path",
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the tracer's spans to ``path`` as JSONL; return the span count."""
    spans = tracer.export()
    header: Dict[str, Any] = {
        "trace": TRACE_FILE_VERSION,
        "v": TRACE_SCHEMA_VERSION,
        "trace_id": tracer.trace_id,
        "spans": len(spans),
    }
    if meta:
        header.update(meta)
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True) + "\n")
    return len(spans)


def _spans_from_jsonl(lines: List[str]) -> Tuple[Dict[str, Any], List[dict]]:
    if not lines:
        raise ValueError("empty trace file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("trace") != TRACE_FILE_VERSION:
        raise ValueError(
            "not a %s trace file (bad header line)" % TRACE_FILE_VERSION
        )
    spans = []
    for number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        for field in ("name", "id", "t0", "t1"):
            if field not in record:
                raise ValueError("span on line %d is missing %r" % (number, field))
        record.setdefault("parent", None)
        record.setdefault("attrs", {})
        spans.append(record)
    return header, spans


def read_trace(path: "str | Path") -> Tuple[Dict[str, Any], List[dict]]:
    """Load ``(meta, spans)`` from a JSONL trace or a Chrome export."""
    text = Path(path).read_text(encoding="utf-8")
    if not text.strip():
        raise ValueError("empty trace file: %s" % path)
    try:
        document: Any = json.loads(text)
    except json.JSONDecodeError:
        document = None  # multi-line JSONL is not one JSON document
    if isinstance(document, dict) and "traceEvents" in document:
        from repro.obs.chrome import spans_from_chrome

        return spans_from_chrome(document)
    return _spans_from_jsonl(text.splitlines())
