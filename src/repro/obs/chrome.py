"""Chrome trace-event export: open in Perfetto or ``chrome://tracing``.

Spans become complete (``"ph": "X"``) events with microsecond ``ts`` /
``dur``.  The span id and parent id ride along in ``args`` so the export
is lossless: :func:`spans_from_chrome` rebuilds the exact span records
and ``repro trace summarize`` produces the same report from either file.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import TRACE_SCHEMA_VERSION

_RESERVED_ARGS = ("span_id", "parent_id")


def chrome_trace(spans: List[dict], meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a Chrome trace-event document from span records."""
    events = []
    for span in spans:
        attrs = dict(span.get("attrs") or {})
        for reserved in _RESERVED_ARGS:
            attrs.pop(reserved, None)
        args = {"span_id": span["id"], "parent_id": span.get("parent")}
        args.update(attrs)
        events.append(
            {
                "name": span["name"],
                "cat": span["name"].split(".", 1)[0],
                "ph": "X",
                "ts": round(span["t0"] * 1e6, 3),
                "dur": round(max(span["t1"] - span["t0"], 0.0) * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    other: Dict[str, Any] = {"v": TRACE_SCHEMA_VERSION}
    if meta:
        other.update(meta)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome_trace(document: Any) -> List[dict]:
    """Check ``document`` against the Chrome trace-event schema.

    Returns the event list on success; raises ``ValueError`` describing
    the first violation otherwise.
    """
    if not isinstance(document, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace needs a traceEvents array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError("traceEvents[%d] is not an object" % index)
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            raise ValueError("traceEvents[%d] is missing ph" % index)
        if not isinstance(event.get("name"), str):
            raise ValueError("traceEvents[%d] is missing name" % index)
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError("traceEvents[%d] is missing numeric ts" % index)
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ValueError("traceEvents[%d] complete event needs dur" % index)
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), (int, str)):
                raise ValueError("traceEvents[%d] is missing %s" % (index, field))
    return events


def spans_from_chrome(document: Dict[str, Any]) -> Tuple[Dict[str, Any], List[dict]]:
    """Rebuild ``(meta, spans)`` from a Chrome export of ours."""
    events = validate_chrome_trace(document)
    meta = dict(document.get("otherData") or {})
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        if span_id is None:
            span_id = len(spans) + 1
        t0 = float(event["ts"]) / 1e6
        spans.append(
            {
                "name": event["name"],
                "id": span_id,
                "parent": parent_id,
                "t0": t0,
                "t1": t0 + float(event.get("dur", 0.0)) / 1e6,
                "attrs": args,
            }
        )
    spans.sort(key=lambda span: (span["t0"], span["id"]))
    return meta, spans
