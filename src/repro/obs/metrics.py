"""Unified metrics registry: counters, gauges, histograms.

Stdlib-only, thread-safe, and deterministic: histogram bucket edges are
fixed at construction (no adaptive resizing), so two runs that observe
the same values render the same text.  The registry renders both as
Prometheus text exposition format (``GET /metrics`` on ``repro serve``,
``--metrics`` on the CLI) and as plain dicts (for ``/stats``).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Fixed latency bucket edges, in milliseconds.  Chosen to cover the
# span from a memoized evaluation (~1 ms) to a cold full-suite search
# (~tens of seconds); deterministic across runs by construction.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
    30000.0,
)

_LabelKey = Tuple[str, ...]


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labelnames: Sequence[str], key: _LabelKey, extra: str = "") -> str:
    parts = [
        '%s="%s"' % (name, _escape_label(str(value)))
        for name, value in zip(labelnames, key)
    ]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


class _Metric:
    """Shared name/help/label plumbing for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> _LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "metric %r expects labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labels)))
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def header_lines(self) -> List[str]:
        lines = []
        if self.help:
            lines.append("# HELP %s %s" % (self.name, self.help))
        lines.append("# TYPE %s %s" % (self.name, self.kind))
        return lines


class Counter(_Metric):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[_LabelKey, float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def values(self) -> Dict[_LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def render(self) -> List[str]:
        lines = self.header_lines()
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                "%s%s %s"
                % (self.name, _render_labels(self.labelnames, key), _format_value(value))
            )
        return lines

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {",".join(key): value for key, value in sorted(self._values.items())}


class Gauge(_Metric):
    """Set-to-current-value gauge, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[_LabelKey, float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self.header_lines()
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                "%s%s %s"
                % (self.name, _render_labels(self.labelnames, key), _format_value(value))
            )
        return lines

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {",".join(key): value for key, value in sorted(self._values.items())}


class _HistogramState:
    __slots__ = ("counts", "sum", "count", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0
        self.max = 0.0


class Histogram(_Metric):
    """Histogram with fixed, deterministic bucket edges.

    Percentiles are estimated by linear interpolation inside the bucket
    containing the requested rank; the exact observed maximum is kept so
    ``max`` (and the estimate for the overflow bucket) is precise.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        super().__init__(name, help, labelnames)
        edges = tuple(sorted(float(edge) for edge in buckets))
        if not edges:
            raise ValueError("histogram %r needs at least one bucket edge" % name)
        self.buckets = edges
        self._states: Dict[_LabelKey, _HistogramState] = {}
        if not self.labelnames:
            self._states[()] = _HistogramState(len(edges))

    def _state(self, key: _LabelKey) -> _HistogramState:
        state = self._states.get(key)
        if state is None:
            state = self._states.setdefault(key, _HistogramState(len(self.buckets)))
        return state

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            state = self._state(key)
            slot = len(self.buckets)
            for index, edge in enumerate(self.buckets):
                if value <= edge:
                    slot = index
                    break
            state.counts[slot] += 1
            state.sum += value
            state.count += 1
            if value > state.max:
                state.max = value

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-interpolated quantile estimate (0 when empty)."""
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None or state.count == 0:
                return 0.0
            rank = q * state.count
            cumulative = 0
            for index, bucket_count in enumerate(state.counts):
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    lower = self.buckets[index - 1] if index > 0 else 0.0
                    upper = (
                        self.buckets[index]
                        if index < len(self.buckets)
                        else max(state.max, lower)
                    )
                    fraction = (rank - previous) / bucket_count
                    return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            return state.max

    def summary(self, **labels: object) -> Dict[str, float]:
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            count = state.count if state else 0
            total = state.sum if state else 0.0
            peak = state.max if state else 0.0
        return {
            "count": count,
            "sum": total,
            "max": peak,
            "p50": self.quantile(0.5, **labels),
            "p90": self.quantile(0.9, **labels),
        }

    def label_keys(self) -> List[_LabelKey]:
        with self._lock:
            return sorted(self._states)

    def render(self) -> List[str]:
        lines = self.header_lines()
        with self._lock:
            items = sorted(
                (key, list(state.counts), state.sum, state.count)
                for key, state in self._states.items()
            )
        for key, counts, total, count in items:
            cumulative = 0
            for index, edge in enumerate(self.buckets):
                cumulative += counts[index]
                lines.append(
                    "%s_bucket%s %d"
                    % (
                        self.name,
                        _render_labels(
                            self.labelnames, key, 'le="%s"' % _format_value(edge)
                        ),
                        cumulative,
                    )
                )
            lines.append(
                '%s_bucket%s %d'
                % (self.name, _render_labels(self.labelnames, key, 'le="+Inf"'), count)
            )
            labels = _render_labels(self.labelnames, key)
            lines.append("%s_sum%s %s" % (self.name, labels, _format_value(total)))
            lines.append("%s_count%s %d" % (self.name, labels, count))
        return lines

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {",".join(key): self.summary(**dict(zip(self.labelnames, key))) for key in self.label_keys()}


class MetricsRegistry:
    """Ordered collection of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str, labelnames: Sequence[str], **kwargs: object) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, labelnames, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise ValueError(
                "metric %r already registered as %s" % (name, metric.kind)
            )
        if metric.labelnames != tuple(labelnames):
            raise ValueError(
                "metric %r already registered with labels %r"
                % (name, metric.labelnames)
            )
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)  # type: ignore[return-value]

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def render(self) -> str:
        """Prometheus text exposition format (trailing newline included)."""
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def as_dict(self) -> Dict[str, object]:
        return {
            metric.name: {"kind": metric.kind, "values": metric.as_dict()}
            for metric in self.metrics()
        }


def cache_metrics(registry: MetricsRegistry, stats: object, prefix: str = "repro_cache") -> None:
    """Record a ``CacheStats`` snapshot as ``{prefix}_events_total`` counters.

    ``stats`` is duck-typed (anything with the ``CacheStats.as_dict``
    counter fields) so this module stays free of repro imports.
    """
    as_dict = getattr(stats, "as_dict", None)
    payload = as_dict() if callable(as_dict) else dict(stats)  # type: ignore[arg-type]
    counter = registry.counter(
        "%s_events_total" % prefix,
        "Persistent cache events by tier and outcome.",
        labelnames=("tier", "event"),
    )
    for event in ("hits", "misses", "puts", "errors"):
        total = int(payload.get(event, 0))
        network = int(payload.get("network_%s" % event, 0))
        counter.inc(network, tier="network", event=event)
        counter.inc(total - network, tier="layer", event=event)
