"""Span tracing with a compiled-out-cheap disabled path.

A :class:`Tracer` records a tree of timed spans.  Instrumented code in
the hot paths (engine, cache) is written as::

    from repro.obs import trace as obs
    ...
    if obs.ACTIVE.enabled:
        with obs.ACTIVE.span("engine.tile_batch", passes=n):
            work()
    else:
        work()

so the disabled path costs one module-attribute load plus one attribute
check.  Code off the hot path can skip the guard and call
``obs.ACTIVE.span(...)`` unconditionally: the no-op tracer returns a
shared no-op span whose context-manager protocol does nothing.

Determinism contract: spans are collected out-of-band and never feed
simulation inputs or cache keys, so traced results are bitwise-identical
to untraced results.  Worker processes install their own local tracer,
export span records as plain dicts, and the parent re-parents them with
:meth:`Tracer.absorb` in deterministic chunk order -- two traced runs of
the same command produce structurally identical span trees regardless of
worker completion order.

Span records are plain dicts::

    {"name": str, "id": int, "parent": int | None,
     "t0": float, "t1": float, "attrs": {str: json-scalar}}

with ``t0``/``t1`` in seconds relative to the owning tracer's epoch.
"""

from __future__ import annotations

import itertools
import threading
import uuid
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator, List, Optional, Sequence

TRACE_SCHEMA_VERSION = 1

_FROM_STACK = object()


class _NoopSpan:
    """Shared do-nothing span returned by the no-op tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    @property
    def span_id(self) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _NoopTracer:
    """Inactive tracer: ``enabled`` is False and spans do nothing."""

    __slots__ = ()

    enabled = False
    trace_id: Optional[str] = None

    def span(self, name: str, parent_id: Any = _FROM_STACK, **attrs: Any) -> _NoopSpan:
        return NOOP_SPAN

    def export(self) -> List[dict]:
        return []

    def absorb(
        self,
        spans: Sequence[dict],
        parent: Any = None,
        shift: Optional[float] = None,
    ) -> None:
        return None


NOOP = _NoopTracer()

# The active tracer.  Hot paths read this through the module
# (``obs.ACTIVE``) so ``set_tracer`` rebinds for every caller at once.
ACTIVE: Any = NOOP


class Span:
    """A single timed span; use as a context manager."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "attrs", "t0", "t1")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Any,
        attrs: dict,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.t0 = 0.0
        self.t1 = 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        if self.parent_id is _FROM_STACK:
            self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self.t0 = self.tracer._now()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.t1 = self.tracer._now()
        # Remove rather than pop: concurrent asyncio requests on one
        # thread may interleave detached spans out of LIFO order.
        stack = self.tracer._stack()
        try:
            stack.remove(self)
        except ValueError:
            pass
        self.tracer._record(self)
        return False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects span records; thread-safe, one per traced command."""

    enabled = True

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self._epoch = perf_counter()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._records: List[dict] = []
        self._local = threading.local()

    # -- internal ----------------------------------------------------

    def _now(self) -> float:
        return perf_counter() - self._epoch

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._records.append(span.as_dict())

    # -- public ------------------------------------------------------

    def span(self, name: str, parent_id: Any = _FROM_STACK, **attrs: Any) -> Span:
        """Create a span.

        Without ``parent_id`` the parent is the innermost open span on
        the *current thread*.  Pass ``parent_id`` explicitly (an id or
        ``None`` for a root) to stitch across threads or async tasks;
        the span is still pushed on the current thread's stack so its
        own children nest under it.
        """
        with self._lock:
            span_id = next(self._ids)
        return Span(self, name, span_id, parent_id, dict(attrs))

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def absorb(
        self,
        spans: Sequence[dict],
        parent: Any = None,
        shift: Optional[float] = None,
    ) -> None:
        """Adopt span records exported by another tracer (e.g. a worker).

        Ids are remapped from this tracer's counter (in input order, so
        the result is deterministic for a deterministic input order),
        orphan spans are parented under ``parent`` (a :class:`Span`, an
        id, or ``None``), and timestamps are shifted by ``shift`` --
        defaulting to aligning the earliest absorbed span with the
        parent span's start when ``parent`` is a :class:`Span`.
        """
        if not spans:
            return
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        if shift is None:
            if isinstance(parent, Span):
                shift = parent.t0 - min(rec["t0"] for rec in spans)
            else:
                shift = 0.0
        with self._lock:
            remap = {rec["id"]: next(self._ids) for rec in spans}
            for rec in spans:
                self._records.append(
                    {
                        "name": rec["name"],
                        "id": remap[rec["id"]],
                        "parent": remap.get(rec["parent"], parent_id),
                        "t0": rec["t0"] + shift,
                        "t1": rec["t1"] + shift,
                        "attrs": dict(rec.get("attrs") or {}),
                    }
                )

    def export(self) -> List[dict]:
        """Return a copy of all recorded spans, sorted by (t0, id)."""
        with self._lock:
            records = [dict(rec, attrs=dict(rec["attrs"])) for rec in self._records]
        records.sort(key=lambda rec: (rec["t0"], rec["id"]))
        return records


def get_tracer() -> Any:
    """Return the active tracer (the no-op tracer when tracing is off)."""
    return ACTIVE


def set_tracer(tracer: Any) -> Any:
    """Install ``tracer`` (or the no-op tracer for ``None``); return the previous one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer if tracer is not None else NOOP
    return previous


@contextmanager
def tracing(tracer: Any) -> Iterator[Any]:
    """Context manager: install ``tracer`` for the duration of the block."""
    previous = set_tracer(tracer)
    try:
        yield ACTIVE
    finally:
        set_tracer(previous)


def current_trace_id() -> Optional[str]:
    """Trace id of the active tracer, or ``None`` when tracing is off."""
    return ACTIVE.trace_id
