"""repro.obs: stdlib-only tracing, metrics, and profiling hooks.

One coherent observability layer for the whole stack (see
``docs/observability.md``):

* :mod:`repro.obs.trace` -- span tracing.  A :class:`Tracer` records a
  tree of timed spans; the module-level active tracer defaults to a
  no-op whose ``enabled`` attribute is the *only* cost instrumented hot
  paths pay when tracing is off.  Worker processes record their own
  spans and ship them back as plain dicts, re-parented into the
  session's trace -- tracing never changes evaluation results.
* :mod:`repro.obs.sink` -- the JSONL trace file (``--trace PATH`` on
  ``repro run|sweep|search|serve``) and its reader.
* :mod:`repro.obs.report` -- ``repro trace summarize``: critical path,
  top spans by self time, and the cache hit/miss breakdown.
* :mod:`repro.obs.chrome` -- ``repro trace export --chrome``: Chrome
  trace-event JSON loadable in Perfetto / ``chrome://tracing``.
* :mod:`repro.obs.metrics` -- the unified metrics registry (counters,
  gauges, histograms with fixed deterministic bucket edges) behind
  ``GET /metrics`` on ``repro serve`` and the CLI ``--metrics`` dump.
"""

from repro.obs.trace import (
    NOOP,
    Span,
    Tracer,
    current_trace_id,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_metrics,
)
from repro.obs.sink import TRACE_FILE_VERSION, read_trace, write_trace
from repro.obs.report import render_summary, span_structure, summarize
from repro.obs.chrome import chrome_trace, spans_from_chrome, validate_chrome_trace

__all__ = [
    "NOOP",
    "Span",
    "Tracer",
    "current_trace_id",
    "get_tracer",
    "set_tracer",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "cache_metrics",
    "TRACE_FILE_VERSION",
    "read_trace",
    "write_trace",
    "summarize",
    "render_summary",
    "span_structure",
    "chrome_trace",
    "spans_from_chrome",
    "validate_chrome_trace",
]
