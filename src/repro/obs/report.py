"""Trace reports: summary, critical path, cache breakdown, structure.

:func:`summarize` turns a list of span records into a plain dict report;
:func:`render_summary` prints it (``repro trace summarize``).  The
``cache spans: network Nh/Nm, layer Nh/Nm`` line is grepped by the CI
``obs-smoke`` job -- keep its format stable.  :func:`span_structure`
normalizes ids and timestamps away so two traced runs of the same
command can be compared structurally.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

_CACHE_GET_SPANS = {
    "cache.layer.get": "layer",
    "cache.network.get": "network",
}
_CACHE_PUT_SPANS = {
    "cache.layer.put": "layer",
    "cache.network.put": "network",
}


def _children_index(spans: List[dict]) -> Dict[Optional[int], List[dict]]:
    children: Dict[Optional[int], List[dict]] = {}
    ids = {span["id"] for span in spans}
    for span in spans:
        parent = span.get("parent")
        if parent not in ids:
            parent = None  # orphan (e.g. a filtered parent) counts as a root
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: (span["t0"], span["id"]))
    return children


def _duration(span: dict) -> float:
    return max(span["t1"] - span["t0"], 0.0)


def _critical_path(spans: List[dict]) -> List[dict]:
    """Longest-duration chain from a root down to a leaf."""
    if not spans:
        return []
    children = _children_index(spans)
    path = []
    node = max(children.get(None, []), key=_duration, default=None)
    while node is not None:
        path.append({"name": node["name"], "dur_s": _duration(node)})
        node = max(children.get(node["id"], []), key=_duration, default=None)
    return path


def _cache_breakdown(spans: List[dict]) -> Dict[str, Dict[str, int]]:
    breakdown = {
        "layer": {"hits": 0, "misses": 0, "puts": 0},
        "network": {"hits": 0, "misses": 0, "puts": 0},
    }
    for span in spans:
        tier = _CACHE_GET_SPANS.get(span["name"])
        if tier is not None:
            hit = bool((span.get("attrs") or {}).get("hit"))
            breakdown[tier]["hits" if hit else "misses"] += 1
            continue
        tier = _CACHE_PUT_SPANS.get(span["name"])
        if tier is not None:
            breakdown[tier]["puts"] += 1
    return breakdown


def summarize(spans: List[dict], meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build the summary report dict for a list of span records."""
    children = _children_index(spans)
    roots = children.get(None, [])
    wall_s = max((span["t1"] for span in spans), default=0.0) - min(
        (span["t0"] for span in spans), default=0.0
    )

    # Self time: a span's duration minus the time covered by its children.
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        dur = _duration(span)
        child_time = sum(_duration(child) for child in children.get(span["id"], []))
        entry = totals.setdefault(
            span["name"], {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += dur
        entry["self_s"] += max(dur - child_time, 0.0)

    top = [
        {"name": name, **values}
        for name, values in sorted(
            totals.items(), key=lambda item: (-item[1]["self_s"], item[0])
        )
    ]

    return {
        "trace_id": (meta or {}).get("trace_id"),
        "command": (meta or {}).get("command"),
        "spans": len(spans),
        "roots": len(roots),
        "wall_s": wall_s,
        "critical_path": _critical_path(spans),
        "top": top,
        "cache": _cache_breakdown(spans),
    }


def render_summary(summary: Dict[str, Any], top_n: int = 10) -> str:
    """Human-readable report for ``repro trace summarize``."""
    lines = []
    title = "trace summary"
    if summary.get("trace_id"):
        title += " (id %s)" % summary["trace_id"]
    if summary.get("command"):
        title += " -- %s" % summary["command"]
    lines.append(title)
    lines.append(
        "spans: %d (%d roots), wall %.3fs"
        % (summary["spans"], summary["roots"], summary["wall_s"])
    )
    cache = summary["cache"]
    lines.append(
        "cache spans: network %dh/%dm, layer %dh/%dm (puts: %d network, %d layer)"
        % (
            cache["network"]["hits"],
            cache["network"]["misses"],
            cache["layer"]["hits"],
            cache["layer"]["misses"],
            cache["network"]["puts"],
            cache["layer"]["puts"],
        )
    )
    if summary["critical_path"]:
        lines.append("critical path:")
        for depth, step in enumerate(summary["critical_path"]):
            lines.append(
                "  %s%s  %.3fs" % ("  " * depth, step["name"], step["dur_s"])
            )
    if summary["top"]:
        lines.append("top spans by self time:")
        width = max(len(entry["name"]) for entry in summary["top"][:top_n])
        for entry in summary["top"][:top_n]:
            lines.append(
                "  %-*s  x%-5d self %8.3fs  total %8.3fs"
                % (
                    width,
                    entry["name"],
                    entry["count"],
                    entry["self_s"],
                    entry["total_s"],
                )
            )
    return "\n".join(lines)


def span_structure(spans: List[dict], with_attrs: bool = False) -> Tuple:
    """Normalize a span list to a nested structure tree.

    Ids and timestamps are dropped; only names, parent/child topology,
    and sibling order (by start time, which is deterministic for a
    deterministic execution) remain -- optionally with attrs.  Two
    traced runs of the same command compare equal under this projection.
    """

    children = _children_index(spans)

    def build(span: dict) -> Tuple:
        kids = tuple(build(child) for child in children.get(span["id"], []))
        if with_attrs:
            attrs = tuple(sorted((span.get("attrs") or {}).items()))
            return (span["name"], attrs, kids)
        return (span["name"], kids)

    return tuple(build(root) for root in children.get(None, []))
