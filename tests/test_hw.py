"""Tests for the calibrated power/area cost model (Table VII)."""

import pytest

from repro.config import (
    GRIFFIN,
    SPARSE_A_STAR,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
    dense,
    sparse_b,
)
from repro.hw.cost import CostBreakdown, cost_of, griffin_cost, provisioned_bandwidth_scale
from repro.baselines.bittactical import tcl_b_cost
from repro.baselines.tensordash import tdash_ab_cost
from repro.baselines.sparten import sparten_cost

#: Table VII totals: label -> (power mW, area k um^2).
TABLE_VII_TOTALS = {
    "Baseline": (151.0, 217.0),
    "Sparse.B*": (206.0, 258.0),
    "TCL.B": (209.0, 233.0),
    "Sparse.A*": (223.0, 253.0),
    "Sparse.AB*": (282.0, 282.0),
    "Griffin": (284.0, 286.0),
    "TDash.AB": (284.0, 276.0),
    "SparTen.AB": (991.0, 1139.0),
}


def _row(label: str) -> CostBreakdown:
    if label == "Baseline":
        return cost_of(dense())
    if label == "Sparse.B*":
        return cost_of(SPARSE_B_STAR)
    if label == "Sparse.A*":
        return cost_of(SPARSE_A_STAR)
    if label == "Sparse.AB*":
        return cost_of(SPARSE_AB_STAR)
    if label == "Griffin":
        return griffin_cost(GRIFFIN)
    if label == "TCL.B":
        return tcl_b_cost()
    if label == "TDash.AB":
        return tdash_ab_cost()
    return sparten_cost("AB")


class TestTableVIITotals:
    @pytest.mark.parametrize("label", list(TABLE_VII_TOTALS))
    def test_total_power_within_tolerance(self, label):
        model = _row(label).total_power_mw
        paper, _ = TABLE_VII_TOTALS[label]
        assert model == pytest.approx(paper, rel=0.10), label

    @pytest.mark.parametrize("label", list(TABLE_VII_TOTALS))
    def test_total_area_within_tolerance(self, label):
        model = _row(label).total_area_kum2
        _, paper = TABLE_VII_TOTALS[label]
        assert model == pytest.approx(paper, rel=0.10), label

    def test_efficiency_ordering_of_paper(self):
        # Table VII lists designs in order of increasing power; the dense
        # baseline must be cheapest and SparTen most expensive.
        powers = [_row(label).total_power_mw for label in TABLE_VII_TOTALS]
        assert powers[0] == min(powers)
        assert powers[-1] == max(powers)


class TestBreakdownStructure:
    def test_dense_has_no_sparse_components(self):
        row = cost_of(dense())
        assert row.ctrl_power == 0 and row.abuf_power == 0
        assert row.mux_power == 0 and row.shf_power == 0

    def test_sparse_b_has_no_bbuf(self):
        row = cost_of(SPARSE_B_STAR)
        assert row.bbuf_power == 0.0
        assert row.abuf_power > 0.0

    def test_dual_pays_pe_control(self):
        assert cost_of(SPARSE_AB_STAR).ctrl_power > 10.0
        assert cost_of(SPARSE_A_STAR).ctrl_power < 2.0

    def test_griffin_slightly_above_dual(self):
        dual = cost_of(SPARSE_AB_STAR)
        hybrid = griffin_cost(GRIFFIN)
        assert hybrid.total_power_mw > dual.total_power_mw
        assert hybrid.total_power_mw < dual.total_power_mw * 1.03
        assert hybrid.total_area_kum2 > dual.total_area_kum2

    def test_deeper_windows_cost_more(self):
        shallow = cost_of(sparse_b(2, 0, 0))
        deep = cost_of(sparse_b(6, 0, 0))
        assert deep.abuf_power > shallow.abuf_power
        assert deep.mux_area > shallow.mux_area

    def test_extra_tree_area_scales(self):
        no_tree = cost_of(sparse_b(4, 0, 0))
        one_tree = cost_of(sparse_b(4, 0, 1))
        two_trees = cost_of(sparse_b(4, 0, 2))
        per_tree = one_tree.adt_area - no_tree.adt_area
        assert per_tree == pytest.approx(64 * 105.0 / 1e3, rel=0.01)
        assert two_trees.adt_area - one_tree.adt_area == pytest.approx(per_tree)

    def test_shuffler_charged_per_side(self):
        b_on = cost_of(sparse_b(4, 0, 1, shuffle=True))
        ab_on = cost_of(SPARSE_AB_STAR)
        assert ab_on.shf_power == pytest.approx(2 * b_on.shf_power)

    def test_power_row_matches_total(self):
        row = cost_of(SPARSE_AB_STAR)
        assert sum(row.power_row().values()) == pytest.approx(row.total_power_mw)
        assert sum(row.area_row().values()) == pytest.approx(row.total_area_kum2)


class TestBandwidthProvisioning:
    def test_scale_is_window_product(self):
        assert provisioned_bandwidth_scale(dense()) == 1.0
        assert provisioned_bandwidth_scale(SPARSE_B_STAR) == 5.0
        assert provisioned_bandwidth_scale(SPARSE_AB_STAR) == 9.0

    def test_sram_power_grows_with_bandwidth(self):
        assert cost_of(sparse_b(6, 0, 0)).sram_power > cost_of(sparse_b(2, 0, 0)).sram_power


class TestSparTenRows:
    def test_variants(self):
        assert sparten_cost("A").label == "SparTen.A"
        assert sparten_cost("b").label == "SparTen.B"
        with pytest.raises(ValueError):
            sparten_cost("C")

    def test_sparten_accumulators_unshared(self):
        # 1024 private accumulators: 10x the baseline's ACC power.
        assert sparten_cost("AB").acc_power == pytest.approx(110.0)

    def test_sparten_b_fits_sec_vi_text(self):
        # 3.9x speedup at -26% power efficiency vs baseline -> ~795 mW.
        row = sparten_cost("B")
        assert row.total_power_mw == pytest.approx(795.0, rel=0.05)
