"""Value-level equivalence: scheduled sparse execution computes A @ B.

The strongest correctness statement in the reproduction: for every
borrowing configuration, pushing real values through the compacted
schedules produces bit-exact dense-GEMM results -- every effectual product
computed exactly once and routed to the right accumulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import sparse_a, sparse_ab, sparse_b
from repro.sim.dual import dual_sparse_cycles
from repro.sim.functional import (
    dense_reference,
    execute_activation_sparse,
    execute_dual_sparse,
    execute_weight_sparse,
)
from repro.sim.shuffle import rotation_shuffle


def operands(seed, m=4, k=48, n=12, a_density=0.6, b_density=0.3):
    rng = np.random.default_rng(seed)
    a = rng.integers(-8, 8, size=(m, k))
    a[rng.random((m, k)) > a_density] = 0
    b = rng.integers(-8, 8, size=(k, n))
    b[rng.random((k, n)) > b_density] = 0
    return a, b


class TestWeightSparse:
    @pytest.mark.parametrize("db", [(2, 0, 0), (4, 0, 1), (2, 2, 0), (3, 1, 2)])
    def test_matches_dense(self, db):
        a, b = operands(1)
        res = execute_weight_sparse(a, b, sparse_b(*db))
        np.testing.assert_array_equal(res.output, dense_reference(a, b))

    def test_matches_dense_with_shuffle(self):
        a, b = operands(2)
        res = execute_weight_sparse(a, b, sparse_b(4, 0, 1, shuffle=True))
        np.testing.assert_array_equal(res.output, dense_reference(a, b))

    def test_executes_each_nonzero_once(self):
        a, b = operands(3)
        res = execute_weight_sparse(a, b, sparse_b(4, 0, 1))
        assert res.executed_ops == int((b != 0).sum())

    def test_unaligned_k(self):
        a, b = operands(4, k=37)  # not a multiple of K0
        res = execute_weight_sparse(a, b, sparse_b(2, 1, 0))
        np.testing.assert_array_equal(res.output, dense_reference(a, b))


class TestActivationSparse:
    @pytest.mark.parametrize("da", [(1, 0, 0), (2, 1, 0), (2, 1, 1)])
    def test_matches_dense(self, da):
        a, b = operands(5, a_density=0.4, b_density=1.0)
        res = execute_activation_sparse(a, b, sparse_a(*da))
        np.testing.assert_array_equal(res.output, dense_reference(a, b))

    def test_matches_dense_with_shuffle(self):
        a, b = operands(6, a_density=0.4, b_density=1.0)
        res = execute_activation_sparse(a, b, sparse_a(2, 1, 0, shuffle=True))
        np.testing.assert_array_equal(res.output, dense_reference(a, b))


class TestDualSparse:
    @pytest.mark.parametrize(
        "cfg",
        [
            sparse_ab(1, 0, 0, 1, 0, 0),
            sparse_ab(2, 0, 0, 2, 0, 1),
            sparse_ab(2, 0, 0, 2, 0, 1, shuffle=True),
        ],
        ids=lambda c: c.notation,
    )
    def test_matches_dense(self, cfg):
        a, b = operands(7)
        res = execute_dual_sparse(a, b, cfg)
        np.testing.assert_array_equal(res.output, dense_reference(a, b))

    def test_cycles_match_performance_model(self):
        a, b = operands(8)
        cfg = sparse_ab(2, 0, 0, 2, 0, 1)
        k0 = cfg.geometry.k0
        func = execute_dual_sparse(a, b, cfg)
        # Rebuild the same blocked masks the performance model sees.
        t = -(-a.shape[1] // k0)
        a_blk = np.zeros((a.shape[0], t * k0), dtype=np.int64)
        a_blk[:, : a.shape[1]] = a
        b_pad = np.zeros((t * k0, b.shape[1]), dtype=np.int64)
        b_pad[: b.shape[0]] = b
        a_mask = (a_blk != 0).reshape(a.shape[0], t, k0).transpose(1, 2, 0)
        b_mask = (b_pad != 0).reshape(t, k0, b.shape[1])
        perf = dual_sparse_cycles(a_mask, b_mask, cfg)
        assert func.cycles == perf.cycles
        assert func.executed_ops == perf.executed_pairs

    def test_executes_only_effectual_pairs(self):
        a, b = operands(9)
        cfg = sparse_ab(2, 0, 0, 2, 0, 0)
        res = execute_dual_sparse(a, b, cfg)
        pairs = int(((a != 0).T[:, :, None] & (b != 0)[:, None, :]).sum())
        assert res.executed_ops == pairs

    def test_all_zero_operands(self):
        a = np.zeros((4, 32), dtype=np.int64)
        b = np.zeros((32, 8), dtype=np.int64)
        res = execute_dual_sparse(a, b, sparse_ab(1, 0, 0, 1, 0, 0))
        assert (res.output == 0).all()


class TestShuffleFrameConsistency:
    def test_rotation_is_self_inverse_mapping(self):
        # The un-rotation used by the functional path must invert the
        # shuffle: gathering source (l+t)%L then writing back to (l+t)%L
        # restores the original layout.
        rng = np.random.default_rng(10)
        x = rng.integers(0, 100, size=(6, 16, 3))
        shuffled = rotation_shuffle(x)
        t_idx = np.arange(6)[:, None, None]
        l_idx = np.arange(16)[None, :, None]
        restored = np.empty_like(x)
        src = (l_idx + t_idx) % 16
        np.put_along_axis(restored, np.broadcast_to(src, x.shape), shuffled, axis=1)
        np.testing.assert_array_equal(restored, x)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    m=st.integers(1, 6),
    k=st.integers(1, 70),
    n=st.integers(1, 20),
    db1=st.integers(1, 4),
    db2=st.integers(0, 2),
    db3=st.integers(0, 2),
    shuffle=st.booleans(),
    density=st.floats(0.0, 1.0),
)
def test_weight_sparse_equivalence_property(seed, m, k, n, db1, db2, db3, shuffle, density):
    """Scheduled execution equals dense matmul for any shape and config."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-5, 5, size=(m, k))
    b = rng.integers(-5, 5, size=(k, n))
    b[rng.random((k, n)) > density] = 0
    cfg = sparse_b(db1, db2, db3, shuffle=shuffle)
    res = execute_weight_sparse(a, b, cfg)
    np.testing.assert_array_equal(res.output, dense_reference(a, b))
    assert res.executed_ops == int((b != 0).sum())
