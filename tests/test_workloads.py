"""Tests for the first-class Workload API.

The load-bearing guarantees:

* the six Table IV presets are **bitwise-identical** to the pre-redesign
  factories: per-layer density assignments (locked by content-fingerprint
  goldens captured on the pre-redesign code) and end-to-end simulated
  cycles both match exactly;
* a workload's content fingerprint is stable across processes, and any
  layer or density edit produces a new fingerprint (hence a network-tier
  cache miss);
* `WorkloadSpec.to_dict` / `from_dict` round-trip exactly (identity);
* `parse_workload` resolves registry names, `name:override` tokens and
  WorkloadSpec JSON paths uniformly, with closest-match suggestions;
* a custom (non-Table-IV) network defined purely as a WorkloadSpec JSON
  runs through `Session.evaluate` / `Session.search` / `repro run`
  unmodified, with a warm repeat served from the network cache tier.
"""

import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, Session
from repro.cli import main
from repro.config import SPARSE_AB_STAR, ModelCategory
from repro.dse.evaluate import EvalSettings
from repro.sim import engine
from repro.sim.engine import SimulationOptions, simulate_network
from repro.workloads import (
    BENCHMARKS,
    WORKLOADS,
    AnalyticalSparsity,
    ExplicitSparsity,
    NetworkLayer,
    UniformSparsity,
    Workload,
    WorkloadRegistry,
    WorkloadSpec,
    benchmark,
    network_fingerprint,
    parse_workload,
    register_sparsity_profile,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TINYCNN = REPO_ROOT / "examples" / "workloads" / "tinycnn.json"
PYRAMID = REPO_ROOT / "examples" / "workloads" / "pyramid_hier.json"

CHEAP = SimulationOptions(passes_per_gemm=1, max_t_steps=16)

SPEC_DICT = {
    "name": "TestNet",
    "layers": [
        {"type": "conv2d", "name": "conv1", "in_channels": 3,
         "out_channels": 16, "kernel": 3, "input_hw": 16, "stride": 1,
         "padding": 1, "groups": 1},
        {"type": "linear", "name": "fc", "in_features": 1024,
         "out_features": 10, "batch": 1},
        {"type": "attention", "name": "attn", "hidden": 64, "heads": 2,
         "seq_len": 16},
        {"type": "feedforward", "name": "ffn", "hidden": 64,
         "intermediate": 256, "seq_len": 16},
        {"type": "gemm", "name": "raw",
         "shapes": [{"m": 16, "k": 32, "n": 8},
                    {"m": 16, "k": 32, "n": 8, "repeats": 2,
                     "weight_is_dynamic": True, "channels": 8}]},
    ],
    "sparsity": {"profile": "analytical",
                 "weight_sparsity": 0.6, "act_sparsity": 0.3},
}


@pytest.fixture
def cold_engine():
    """No inherited memoization or persistent cache; restore afterwards."""
    previous = engine.set_persistent_cache(None)
    engine.clear_memo_cache()
    yield
    engine.clear_memo_cache()
    engine.set_persistent_cache(previous)


# ----------------------------------------------------------------------
# Table IV bitwise regression (goldens captured on the pre-redesign code).
# ----------------------------------------------------------------------

#: Per-preset goldens recorded with the pre-redesign factory functions:
#: the content digest of every layer (name, GEMM shapes, density reprs)
#: and the end-to-end cycles of one cheap simulation on Sparse.AB*.
TABLE_IV_GOLDEN = {
    "AlexNet": {
        "digest": "6340dcb3efee8dc17b8feb41dbc769172faaf34c7c87b22572bc7085e3891fce",
        "category": ModelCategory.AB,
        "cycles": 425490.2237350593,
        "dense_cycles": 877500,
        "macs": 714188480,
    },
    "GoogleNet": {
        "digest": "7ac10b532da73f18a9449ba9d07700465536aedc1910ad560cf01ae5748c8ac4",
        "category": ModelCategory.AB,
        "cycles": 895269.1926206605,
        "dense_cycles": 1567847,
        "macs": 1582671872,
    },
    "ResNet50": {
        "digest": "85b5835764e609907ae6a49c02a09d162b384debbee03d84cd5af4de88170d09",
        "category": ModelCategory.AB,
        "cycles": 2178960.4694666755,
        "dense_cycles": 4051840,
        "macs": 4089184256,
    },
    "InceptionV3": {
        "digest": "f36a2a683f48df9730b7235f20cf618376aba62a9c18f97fff985b7c12d8b5ac",
        "category": ModelCategory.AB,
        "cycles": 2886225.084396898,
        "dense_cycles": 5617434,
        "macs": 5713216096,
    },
    "MobileNetV2": {
        "digest": "468e2ae2bc467a7d1067a4773190ebe171db39243e538b857b4afdea478a6bfb",
        "category": ModelCategory.AB,
        "cycles": 784946.0059371262,
        "dense_cycles": 874848,
        "macs": 300774272,
    },
    "BERT": {
        "digest": "b00da9d21a77f7756f3cef847dc54d135850e94b5794848501dae4317438b5ce",
        "category": ModelCategory.B,
        "cycles": 3422868.533804289,
        "dense_cycles": 5382192,
        "macs": 5511317760,
    },
}


class TestTableIVRegression:
    def test_covers_every_preset(self):
        assert sorted(TABLE_IV_GOLDEN) == sorted(b.name for b in BENCHMARKS)

    @pytest.mark.parametrize("info", BENCHMARKS, ids=lambda b: b.name)
    def test_topology_and_densities_bitwise(self, info):
        # The fingerprint hashes every layer's name, GEMM shapes, and exact
        # density reprs -- equality means the redesigned registry builds
        # byte-for-byte the same networks the pre-redesign factories did.
        golden = TABLE_IV_GOLDEN[info.name]
        assert info.fingerprint == golden["digest"]
        assert info.network.macs == golden["macs"]

    @pytest.mark.parametrize("info", BENCHMARKS, ids=lambda b: b.name)
    def test_simulated_cycles_bitwise(self, info, cold_engine):
        golden = TABLE_IV_GOLDEN[info.name]
        result = simulate_network(
            info.network, SPARSE_AB_STAR, golden["category"], CHEAP
        )
        assert result.cycles == golden["cycles"]
        assert result.dense_cycles == golden["dense_cycles"]


# ----------------------------------------------------------------------
# Fingerprints.
# ----------------------------------------------------------------------

class TestFingerprint:
    def test_pure_function_of_spec(self):
        spec = WorkloadSpec.from_dict(SPEC_DICT)
        assert spec.build().fingerprint == spec.build().fingerprint
        again = WorkloadSpec.from_dict(json.loads(json.dumps(SPEC_DICT)))
        assert again.build().fingerprint == spec.build().fingerprint

    def test_stable_across_processes(self):
        # The acceptance bar: same WorkloadSpec JSON -> identical
        # fingerprint in a fresh interpreter.
        code = (
            "from repro.workloads import WorkloadSpec; "
            f"print(WorkloadSpec.load({str(TINYCNN)!r}).build().fingerprint)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == WorkloadSpec.load(TINYCNN).build().fingerprint

    def test_layer_edit_changes_fingerprint(self):
        base = WorkloadSpec.from_dict(SPEC_DICT).build().fingerprint
        edited = json.loads(json.dumps(SPEC_DICT))
        edited["layers"][0]["out_channels"] = 17
        assert WorkloadSpec.from_dict(edited).build().fingerprint != base

    def test_density_edit_changes_fingerprint(self):
        base = WorkloadSpec.from_dict(SPEC_DICT).build().fingerprint
        edited = json.loads(json.dumps(SPEC_DICT))
        edited["sparsity"]["weight_sparsity"] = 0.61
        assert WorkloadSpec.from_dict(edited).build().fingerprint != base

    def test_layer_name_edit_changes_fingerprint(self):
        base = WorkloadSpec.from_dict(SPEC_DICT).build().fingerprint
        edited = json.loads(json.dumps(SPEC_DICT))
        edited["layers"][1]["name"] = "fc_renamed"
        assert WorkloadSpec.from_dict(edited).build().fingerprint != base

    def test_fingerprint_edit_means_network_key_miss(self):
        # The cache consequence: a density edit re-keys the network tier
        # even though name, config, category and options are unchanged.
        spec = WorkloadSpec.from_dict(SPEC_DICT)
        edited = json.loads(json.dumps(SPEC_DICT))
        edited["sparsity"]["act_sparsity"] = 0.31
        key = engine.network_key(
            spec.build().network, SPARSE_AB_STAR, ModelCategory.B, CHEAP
        )
        key2 = engine.network_key(
            WorkloadSpec.from_dict(edited).build().network,
            SPARSE_AB_STAR, ModelCategory.B, CHEAP,
        )
        assert key != key2

    def test_network_fingerprint_matches_workload_property(self):
        workload = parse_workload("AlexNet")
        assert network_fingerprint(workload.network) == workload.fingerprint


# ----------------------------------------------------------------------
# WorkloadSpec round-trip and validation.
# ----------------------------------------------------------------------

class TestWorkloadSpec:
    def test_round_trip_identity_inline(self):
        spec = WorkloadSpec.from_dict(SPEC_DICT)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("path", [TINYCNN, PYRAMID], ids=lambda p: p.stem)
    def test_round_trip_identity_examples(self, path):
        spec = WorkloadSpec.load(path)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec
        # And the serialized form itself is a fixed point.
        assert WorkloadSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown workload keys"):
            WorkloadSpec.from_dict({**SPEC_DICT, "bogus": 1})

    def test_unknown_layer_type_rejected(self):
        bad = json.loads(json.dumps(SPEC_DICT))
        bad["layers"][0]["type"] = "conv3d"
        with pytest.raises(ValueError, match="unknown layer type"):
            WorkloadSpec.from_dict(bad)

    def test_unknown_layer_key_rejected(self):
        bad = json.loads(json.dumps(SPEC_DICT))
        bad["layers"][0]["kernel_size"] = 3
        with pytest.raises(ValueError, match="unknown conv2d keys"):
            WorkloadSpec.from_dict(bad)

    def test_duplicate_layer_names_rejected(self):
        bad = json.loads(json.dumps(SPEC_DICT))
        bad["layers"][1]["name"] = "conv1"
        with pytest.raises(ValueError, match="duplicate layer name"):
            WorkloadSpec.from_dict(bad)

    def test_conv_padding_defaults_to_same(self):
        spec = WorkloadSpec.from_dict({
            "name": "P",
            "layers": [{"type": "conv2d", "name": "c", "in_channels": 4,
                        "out_channels": 4, "kernel": 5, "input_hw": 8}],
        })
        assert spec.layers[0].padding == 2

    def test_unknown_profile_suggests_closest(self):
        bad = json.loads(json.dumps(SPEC_DICT))
        bad["sparsity"] = {"profile": "analitycal"}
        with pytest.raises(ValueError, match="did you mean 'analytical'"):
            WorkloadSpec.from_dict(bad)

    def test_uniform_profile(self):
        spec = replace(
            WorkloadSpec.from_dict(SPEC_DICT),
            sparsity=UniformSparsity(weight_density=0.5, act_density=0.25),
        )
        net = spec.build().network
        assert all(l.weight_density == 0.5 for l in net.layers)
        assert all(l.act_density == 0.25 for l in net.layers)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_explicit_profile_requires_full_coverage(self):
        with pytest.raises(ValueError, match="missing entries"):
            replace(
                WorkloadSpec.from_dict(SPEC_DICT),
                sparsity=ExplicitSparsity((("conv1", 0.5, 1.0),)),
            ).build()

    def test_explicit_profile_rejects_unmatched_names(self):
        bad = json.loads(json.dumps(SPEC_DICT))
        bad["sparsity"] = {
            "profile": "explicit",
            "layers": {"conv_one": {"weight_density": 0.5},
                       "*": {"weight_density": 0.3}},
        }
        with pytest.raises(ValueError, match="do not exist"):
            WorkloadSpec.from_dict(bad)

    def test_explicit_profile_star_default(self):
        spec = replace(
            WorkloadSpec.from_dict(SPEC_DICT),
            sparsity=ExplicitSparsity(
                (("conv1", 0.9, 1.0), ("*", 0.3, 0.5))
            ),
        )
        net = spec.build().network
        assert net.layers[0].weight_density == 0.9
        assert net.layers[1].weight_density == 0.3
        assert net.layers[1].act_density == 0.5

    def test_analytical_matches_preset_solver(self):
        # The default profile is exactly the Table IV solver: building
        # AlexNet's topology through a spec yields AlexNet's densities.
        from repro.workloads import alexnet, layer_content

        preset = alexnet()
        spec = WorkloadSpec(
            name=preset.name,
            layers=tuple(l.spec for l in preset.layers),
            sparsity=AnalyticalSparsity(0.89, 0.53),
        )
        built = spec.build().network
        assert [layer_content(l) for l in built.layers] == [
            layer_content(l) for l in preset.layers
        ]
        assert built.fingerprint == preset.fingerprint

    def test_custom_profile_registration(self):
        class Halving:
            def assign(self, specs):
                return tuple(
                    NetworkLayer(spec=s, weight_density=max(0.05, 0.8 * 0.5 ** i),
                                 act_density=1.0)
                    for i, s in enumerate(specs)
                )

            def to_dict(self):
                return {"profile": "halving-test"}

        register_sparsity_profile("halving-test", lambda data: Halving(),
                                  replace=True)
        spec = WorkloadSpec.from_dict(
            {**SPEC_DICT, "sparsity": {"profile": "halving-test"}}
        )
        assert spec.build().network.layers[1].weight_density == 0.4


# ----------------------------------------------------------------------
# parse_workload and the registry.
# ----------------------------------------------------------------------

class TestParseWorkload:
    def test_names_case_insensitive(self):
        assert parse_workload("resnet50") is benchmark("ResNet50")

    def test_workload_object_passthrough(self):
        workload = benchmark("BERT")
        assert parse_workload(workload) is workload

    def test_network_object_wrapped(self):
        net = benchmark("AlexNet").network
        workload = parse_workload(net)
        assert workload.network is net
        assert workload.act_sparsity == pytest.approx(0.53, abs=0.05)

    def test_path_token(self):
        workload = parse_workload(str(TINYCNN))
        assert workload.name == "TinyCNN"
        assert ModelCategory.AB in workload.categories()

    def test_missing_path_token(self):
        with pytest.raises(ValueError, match="does not exist"):
            parse_workload("no/such/workload.json")

    def test_sparsity_override_token(self):
        workload = parse_workload("BERT:weight_sparsity=0.9")
        assert workload.name == "BERT:weight_sparsity=0.9"
        assert workload.weight_sparsity == pytest.approx(0.9, abs=1e-6)
        # The base registry entry is untouched.
        assert benchmark("BERT").weight_sparsity == 0.82

    def test_density_and_name_override_token(self):
        workload = parse_workload("AlexNet:weight_density=0.5,name=half-alex")
        assert workload.name == "half-alex"
        assert all(
            l.weight_density == 0.5 for l in workload.network.layers
        )

    def test_path_with_override_token(self):
        workload = parse_workload(f"{TINYCNN}:act_density=0.2")
        assert all(l.act_density == 0.2 for l in workload.network.layers)

    def test_unknown_name_suggests_closest(self):
        with pytest.raises(ValueError, match="did you mean ResNet50"):
            parse_workload("ResNet5")

    def test_unknown_override_key_suggests_closest(self):
        with pytest.raises(ValueError, match="did you mean 'weight_sparsity'"):
            parse_workload("BERT:weight_sparsty=0.9")

    def test_benchmark_unknown_name_suggests_closest(self):
        with pytest.raises(KeyError, match="did you mean MobileNetV2"):
            benchmark("MobileNet")

    def test_registry_register_round_trip(self):
        registry = WorkloadRegistry()
        workload = WorkloadSpec.from_dict(SPEC_DICT).build()
        registry.register(workload)
        assert registry.get("testnet") is workload
        assert "TestNet" in registry and len(registry) == 1
        with pytest.raises(ValueError, match="already registered"):
            registry.register(workload)
        registry.register(workload, replace=True)
        registry.unregister("TestNet")
        assert len(registry) == 0

    def test_global_registry_register(self):
        workload = WorkloadSpec.from_dict(SPEC_DICT).build()
        WORKLOADS.register(workload)
        try:
            assert parse_workload("TestNet") is workload
        finally:
            WORKLOADS.unregister("TestNet")
        # Presets are unaffected and suite_for still counts only Table IV.
        from repro.workloads import suite_for

        assert len(suite_for(ModelCategory.B)) == 6

    def test_benchmark_info_network_memoized(self):
        info = benchmark("GoogleNet")
        assert info.network is info.network

    def test_presets_are_workloads(self):
        assert all(isinstance(info, Workload) for info in BENCHMARKS)


# ----------------------------------------------------------------------
# End to end: custom workloads through the session, search, and CLI.
# ----------------------------------------------------------------------

class TestEndToEnd:
    CATS = (ModelCategory.B, ModelCategory.DENSE)

    def test_evaluate_networks_kwarg_warm_network_tier(self, cold_engine, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        cold = session.evaluate(
            ["Dense", "Sparse.B*"], self.CATS,
            EvalSettings(quick=True, options=CHEAP),
            networks=(str(TINYCNN),),
        )
        assert cold.cache_stats.network_misses > 0
        engine.clear_memo_cache()
        warm = session.evaluate(
            ["Dense", "Sparse.B*"], self.CATS,
            EvalSettings(quick=True, options=CHEAP),
            networks=(str(TINYCNN),),
        )
        assert warm.cache_stats.network_hits > 0
        assert warm.cache_stats.layer_hits == warm.cache_stats.layer_misses == 0
        for a, b in zip(cold.evaluations, warm.evaluations):
            assert a == b

    def test_parallel_equals_serial_with_workload_objects(self, cold_engine, tmp_path):
        # Workload objects pickle into worker processes.
        workload = parse_workload(str(PYRAMID))
        settings = EvalSettings(quick=True, options=CHEAP)
        serial = Session(workers=0, cache_dir=tmp_path / "s").evaluate(
            ["Dense", "Sparse.B*"], self.CATS, settings, networks=(workload,)
        )
        engine.clear_memo_cache()
        parallel = Session(workers=2, cache_dir=tmp_path / "p").evaluate(
            ["Dense", "Sparse.B*"], self.CATS, settings, networks=(workload,)
        )
        assert serial.evaluations == parallel.evaluations

    def test_search_on_custom_workload_warm_network_tier(self, cold_engine, tmp_path):
        spec = {
            "name": "custom-search",
            "space": {"db1": [1, 2], "db2": [0, 1], "db3": [0]},
            "strategy": {"kind": "exhaustive"},
            "networks": [str(TINYCNN)],
            "quick": True,
            "options": {"passes_per_gemm": 1, "max_t_steps": 16},
        }
        session = Session(cache_dir=tmp_path / "cache")
        cold = session.search(spec)
        assert len(cold.archive) == cold.grid_size > 0
        engine.clear_memo_cache()
        warm = session.search(spec)
        assert warm.optimal().label == cold.optimal().label
        assert warm.cache_stats.network_hits > 0
        assert warm.cache_stats.layer_hits == warm.cache_stats.layer_misses == 0

    def test_experiment_spec_anchors_relative_workload_paths(self, tmp_path):
        spec = ExperimentSpec.load(
            REPO_ROOT / "examples" / "experiments" / "custom_tinycnn.json"
        )
        (resolved,) = spec.resolve_networks()
        assert resolved.name == "TinyCNN"
        # The anchored token is an existing path, independent of the cwd.
        (token,) = spec.networks
        assert Path(token.partition(":")[0]).exists()

    def test_experiment_spec_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="did you mean"):
            ExperimentSpec.from_dict(
                {"name": "x", "designs": ["Dense"], "networks": ["ResNet5"]}
            )

    def test_cli_simulate_spec_path(self, cold_engine, tmp_path, capsys):
        code = main([
            "simulate", "--arch", "B(2,0,0)", "--network", str(TINYCNN),
            "--category", "DNN.B", "--passes", "1", "--max-t", "16",
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TinyCNN" in out and "speedup" in out

    def test_cli_workloads_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("AlexNet", "ResNet50", "BERT"):
            assert name in out
        assert "Fingerprint" in out

    def test_cli_workloads_validate(self, capsys):
        assert main(["workloads", "validate", str(TINYCNN), str(PYRAMID)]) == 0
        out = capsys.readouterr().out
        assert "all 2 spec(s) valid" in out

    def test_cli_workloads_validate_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "bad", "layers": []}))
        assert main(["workloads", "validate", str(bad)]) == 2
        assert "FAIL" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "payload",
        [
            {"name": "b", "layers": ["conv1"]},
            {"name": "b", "layers": [{"type": "gemm", "name": "g",
                                      "shapes": ["not-a-dict"]}]},
            {"name": "b", "layers": [{"type": "conv2d", "name": "c",
                                      "in_channels": None, "out_channels": 4,
                                      "kernel": 3, "input_hw": 8}]},
            {"name": "b",
             "layers": [{"type": "linear", "name": "fc",
                         "in_features": 8, "out_features": 2}],
             "sparsity": {"profile": "explicit", "layers": {"fc": 5}}},
            {"name": "b",
             "layers": [{"type": "linear", "name": "fc",
                         "in_features": 8, "out_features": 2}],
             "sparsity": ["uniform"]},
            ["not", "an", "object"],
        ],
        ids=["str-layer", "str-gemm-shape", "null-dim", "int-density-pair",
             "list-sparsity", "array-spec"],
    )
    def test_cli_workloads_validate_malformed_shapes(self, tmp_path, capsys,
                                                     payload):
        # Malformed spec *shapes* must report FAIL + exit 2, never a
        # traceback: validation is the tool's whole job.
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        assert main(["workloads", "validate", str(bad)]) == 2
        assert "FAIL" in capsys.readouterr().err

    def test_spec_path_resolution_is_memoized(self, tmp_path):
        # The suite re-resolves tokens per evaluation; same file content
        # must return the same Workload instance (file reads + density
        # solver run once), while an edit is a cache miss.
        first = parse_workload(str(TINYCNN))
        assert parse_workload(str(TINYCNN)) is first
        copied = tmp_path / "tinycnn.json"
        copied.write_text(TINYCNN.read_text())
        edited = parse_workload(str(copied))
        assert edited is not first
        spec = json.loads(copied.read_text())
        spec["sparsity"]["weight_sparsity"] = 0.9
        copied.write_text(json.dumps(spec))
        assert parse_workload(str(copied)) is not edited

    def test_cli_workloads_fingerprint(self, capsys):
        assert main(["workloads", "fingerprint", "ResNet50", str(TINYCNN)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("ResNet50")
        assert lines[0].split()[0] == TABLE_IV_GOLDEN["ResNet50"]["digest"]
