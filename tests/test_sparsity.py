"""Tests for the synthetic structured sparsity generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.sparsity import (
    SparsityProfile,
    act_profile,
    activation_tile_mask,
    channel_factors,
    sample_act_field,
    sample_weight_field,
    smooth_factors,
    weight_profile,
    weight_tile_mask,
)


class TestProfiles:
    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            SparsityProfile(1.5, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            SparsityProfile(-0.1, 0, 0, 0, 0)

    def test_rejects_negative_cv(self):
        with pytest.raises(ValueError):
            SparsityProfile(0.5, -1, 0, 0, 0)

    def test_dense_flag(self):
        assert SparsityProfile(1.0, 0, 0, 0, 0).is_dense
        assert not weight_profile(0.2).is_dense


class TestFactors:
    def test_unit_mean(self):
        rng = np.random.default_rng(0)
        f = channel_factors(rng, 1000, 0.7)
        assert f.mean() == pytest.approx(1.0)

    def test_cv_close_to_requested(self):
        rng = np.random.default_rng(1)
        f = channel_factors(rng, 20000, 0.5)
        assert f.std() == pytest.approx(0.5, rel=0.1)

    def test_zero_cv_is_ones(self):
        rng = np.random.default_rng(2)
        np.testing.assert_array_equal(channel_factors(rng, 10, 0.0), np.ones(10))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            channel_factors(np.random.default_rng(0), 0, 0.5)

    def test_smooth_factors_are_correlated(self):
        rng = np.random.default_rng(3)
        f = smooth_factors(rng, 5000, 0.6)
        raw = channel_factors(np.random.default_rng(3), 5000, 0.6)
        def lag1(x):
            return np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1(f) > lag1(raw) + 0.2


def _weight_setup(density=0.2, k=256, n=64, channels=32, seed=0):
    rng = np.random.default_rng(seed)
    profile = weight_profile(density)
    field = sample_weight_field(rng, profile, k, n, channels, k0=16)
    return rng, profile, field


class TestWeightMasks:
    def test_density_close_to_target(self):
        rng, profile, field = _weight_setup(density=0.25, k=1600, n=160, channels=64)
        total = 0
        count = 0
        for ni in range(10):
            mask = weight_tile_mask(
                rng, profile, field, t_steps=100, k0=16,
                k_offset=0, k_total=1600, n_offset=ni * 16, n_tile=16, n_total=160,
            )
            total += mask.sum()
            count += mask.size
        assert total / count == pytest.approx(0.25, rel=0.15)

    def test_edge_positions_zero(self):
        rng, profile, field = _weight_setup(k=100, n=10)
        mask = weight_tile_mask(
            rng, profile, field, t_steps=7, k0=16,
            k_offset=0, k_total=100, n_offset=0, n_tile=16, n_total=10,
        )
        flat_k = np.arange(7 * 16).reshape(7, 16)
        assert not mask[flat_k >= 100].any()
        assert not mask[:, :, 10:].any()

    def test_dense_profile_fills_valid_region(self):
        rng = np.random.default_rng(0)
        profile = SparsityProfile(1.0, 0, 0, 0, 0)
        field = sample_weight_field(rng, profile, 64, 16, 8, k0=16)
        mask = weight_tile_mask(
            rng, profile, field, t_steps=4, k0=16,
            k_offset=0, k_total=64, n_offset=0, n_tile=16, n_total=16,
        )
        assert mask.all()

    def test_lane_factor_creates_persistent_imbalance(self):
        rng, profile, field = _weight_setup(density=0.2, k=3200, n=16, channels=100, seed=5)
        mask = weight_tile_mask(
            rng, profile, field, t_steps=200, k0=16,
            k_offset=0, k_total=3200, n_offset=0, n_tile=16, n_total=16,
        )
        lane_density = mask.mean(axis=(0, 2))
        spread = lane_density.max() / max(lane_density.min(), 1e-9)
        assert spread > 1.5  # calibrated lane_cv must show up

    def test_deterministic_given_rng_state(self):
        def build():
            rng, profile, field = _weight_setup(seed=9)
            return weight_tile_mask(
                rng, profile, field, t_steps=8, k0=16,
                k_offset=0, k_total=256, n_offset=0, n_tile=16, n_total=64,
            )
        np.testing.assert_array_equal(build(), build())


class TestActivationMasks:
    def test_density_close_to_target(self):
        rng = np.random.default_rng(1)
        profile = act_profile(0.5)
        field = sample_act_field(rng, profile, 800, 500, 50, k0=16)
        mask = activation_tile_mask(
            rng, profile, field, t_steps=50, k0=16,
            k_offset=0, k_total=800, m_offset=0, m_tile=400, m_total=500,
        )
        assert mask.mean() == pytest.approx(0.5, rel=0.15)

    def test_edge_rows_zero(self):
        rng = np.random.default_rng(2)
        profile = act_profile(0.9)
        field = sample_act_field(rng, profile, 64, 10, 4, k0=16)
        mask = activation_tile_mask(
            rng, profile, field, t_steps=4, k0=16,
            k_offset=0, k_total=64, m_offset=8, m_tile=4, m_total=10,
        )
        assert not mask[:, :, 2:].any()


@settings(max_examples=25, deadline=None)
@given(
    density=st.floats(0.05, 0.95),
    k=st.integers(32, 512),
    n=st.integers(4, 64),
    seed=st.integers(0, 2**31),
)
def test_weight_mask_density_statistics(density, k, n, seed):
    """Generated density tracks the target across the parameter space."""
    rng = np.random.default_rng(seed)
    profile = weight_profile(density)
    field = sample_weight_field(rng, profile, k, n, max(1, k // 9), k0=16)
    t = (k + 15) // 16
    mask = weight_tile_mask(
        rng, profile, field, t_steps=t, k0=16,
        k_offset=0, k_total=k, n_offset=0, n_tile=min(16, n), n_total=n,
    )
    valid = k * min(16, n)
    achieved = mask.sum() / valid
    # Clipping at 1.0 biases extreme-CV draws; allow a loose band.
    assert 0.3 * density < achieved < min(1.0, 2.5 * density + 0.05)
