"""Unit tests for ``tools/bench_gate.py`` on synthetic snapshot pairs.

The gate's comparison logic must be trustworthy without ever executing a
real benchmark: these tests build small in-memory reports/snapshots and
exercise every verdict the gate can return -- pass, warn, fail, a module
missing from the current run, a new module, a failed module, the
absolute noise floor, and the machine-calibration scaling.  The last
test is the tier-1 smoke over ``benchmarks/history/``: every committed
snapshot must parse against the schema, so a malformed commit fails fast
here instead of deep inside a CI gate run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_gate import (  # noqa: E402
    ABS_FLOOR_S,
    SNAPSHOT_SCHEMA,
    GateResult,
    cache_hit_rate,
    compare,
    history_snapshots,
    latest_snapshot,
    merge_min_of_n,
    next_snapshot_path,
    trend_table,
    validate_report,
    validate_snapshot,
)

HISTORY_DIR = REPO_ROOT / "benchmarks" / "history"


def make_record(module: str, wall_s: float, passed: bool = True,
                error: str | None = None) -> dict:
    return {
        "module": module,
        "passed": passed,
        "returncode": 0 if passed else 1,
        "wall_s": wall_s,
        "cache": {"hits": 0, "misses": 1},
        "summary": "1 passed" if passed else "1 failed",
        "error": error,
    }


def make_report(records: list[dict]) -> dict:
    return {
        "total_wall_s": round(sum(r["wall_s"] for r in records), 3),
        "modules_passed": sum(r["passed"] for r in records),
        "modules_failed": sum(not r["passed"] for r in records),
        "failed": sorted(r["module"] for r in records if not r["passed"]),
        "python": "3.11.0",
        "results": records,
    }


def make_snapshot(records: list[dict], calibration_s: float = 1.0) -> dict:
    return {
        "meta": {
            "schema": SNAPSHOT_SCHEMA,
            "label": "synthetic",
            "created": "2026-01-01",
            "commit": "0000000",
            "repeats": 3,
            "calibration_s": calibration_s,
        },
        "report": make_report(records),
        "workloads": {"workloads": []},
    }


def statuses(result: GateResult) -> dict[str, str]:
    return {row.module: row.status for row in result.rows}


class TestValidation:
    def test_valid_report_passes(self):
        report = make_report([make_record("test_a", 2.0)])
        assert validate_report(report) == []

    def test_report_missing_keys(self):
        errors = validate_report({"results": [{}]})
        assert any("missing keys" in e for e in errors)

    def test_report_not_a_dict(self):
        assert validate_report([1, 2]) != []

    def test_report_empty_results(self):
        report = make_report([make_record("test_a", 1.0)])
        report["results"] = []
        assert any("non-empty" in e for e in validate_report(report))

    def test_report_duplicate_module(self):
        report = make_report([make_record("test_a", 1.0), make_record("test_a", 2.0)])
        assert any("duplicate" in e for e in validate_report(report))

    def test_report_negative_wall(self):
        report = make_report([make_record("test_a", -1.0)])
        assert any("wall_s" in e for e in validate_report(report))

    def test_report_failed_list_disagrees(self):
        report = make_report([make_record("test_a", 1.0, passed=False)])
        report["failed"] = []  # lies about the per-module records
        assert any("disagrees" in e for e in validate_report(report))

    def test_valid_snapshot_passes(self):
        snapshot = make_snapshot([make_record("test_a", 2.0)])
        assert validate_snapshot(snapshot) == []

    def test_snapshot_missing_meta(self):
        snapshot = make_snapshot([make_record("test_a", 2.0)])
        del snapshot["meta"]
        assert any("meta" in e for e in validate_snapshot(snapshot))

    def test_snapshot_bad_calibration(self):
        snapshot = make_snapshot([make_record("test_a", 2.0)])
        snapshot["meta"]["calibration_s"] = -3
        assert any("calibration_s" in e for e in validate_snapshot(snapshot))

    def test_snapshot_unknown_schema(self):
        snapshot = make_snapshot([make_record("test_a", 2.0)])
        snapshot["meta"]["schema"] = "bench-snapshot-v99"
        assert any("schema" in e for e in validate_snapshot(snapshot))

    def test_compare_rejects_malformed_snapshot(self):
        current = make_report([make_record("test_a", 1.0)])
        with pytest.raises(ValueError, match="malformed baseline"):
            compare(current, {"meta": {}, "report": {}})


class TestMergeMinOfN:
    def test_min_wall_wins(self):
        merged = merge_min_of_n([
            make_report([make_record("test_a", 3.0)]),
            make_report([make_record("test_a", 2.0)]),
            make_report([make_record("test_a", 2.5)]),
        ])
        (record,) = merged["results"]
        assert record["wall_s"] == 2.0
        assert record["wall_all"] == [3.0, 2.0, 2.5]
        assert merged["repeats"] == 3
        assert merged["total_wall_s"] == 2.0

    def test_any_failing_repeat_marks_failed(self):
        merged = merge_min_of_n([
            make_report([make_record("test_a", 2.0)]),
            make_report([make_record("test_a", 9.0, passed=False, error="boom")]),
            make_report([make_record("test_a", 1.0)]),
        ])
        (record,) = merged["results"]
        assert not record["passed"]
        assert record["error"] == "boom"
        assert merged["failed"] == ["test_a"]

    def test_module_order_preserved(self):
        merged = merge_min_of_n([
            make_report([make_record("test_b", 1.0), make_record("test_a", 1.0)]),
        ])
        assert [r["module"] for r in merged["results"]] == ["test_b", "test_a"]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            merge_min_of_n([])


class TestCompare:
    BASE_WALL = 20.0

    def snapshot(self) -> dict:
        return make_snapshot([
            make_record("test_fast", 2.0),
            make_record("test_slow", self.BASE_WALL),
        ])

    def test_identical_passes(self):
        current = make_report([
            make_record("test_fast", 2.0),
            make_record("test_slow", self.BASE_WALL),
        ])
        result = compare(current, self.snapshot())
        assert result.status == "pass"
        assert statuses(result) == {"test_fast": "ok", "test_slow": "ok"}

    def test_improvement_passes(self):
        current = make_report([
            make_record("test_fast", 0.5),
            make_record("test_slow", self.BASE_WALL / 3),
        ])
        result = compare(current, self.snapshot())
        assert result.status == "pass"

    def test_regression_between_10_and_20_pct_warns(self):
        current = make_report([
            make_record("test_fast", 2.0),
            make_record("test_slow", self.BASE_WALL * 1.15),
        ])
        result = compare(current, self.snapshot())
        assert result.status == "warn"
        assert statuses(result)["test_slow"] == "warn"

    def test_regression_over_20_pct_fails(self):
        current = make_report([
            make_record("test_fast", 2.0),
            make_record("test_slow", self.BASE_WALL * 1.5),
        ])
        result = compare(current, self.snapshot())
        assert result.status == "fail"
        assert statuses(result)["test_slow"] == "fail"

    def test_noise_floor_absorbs_small_absolute_regressions(self):
        # +25% on a 2s module is only +0.5s -- under the absolute floor,
        # so it must read as noise, not a regression.
        assert 2.0 * 0.25 < ABS_FLOOR_S
        current = make_report([
            make_record("test_fast", 2.5),
            make_record("test_slow", self.BASE_WALL),
        ])
        result = compare(current, self.snapshot())
        assert result.status == "pass"
        assert statuses(result)["test_fast"] == "ok"

    def test_missing_module_fails(self):
        current = make_report([make_record("test_fast", 2.0)])
        result = compare(current, self.snapshot())
        assert result.status == "fail"
        assert statuses(result)["test_slow"] == "missing"

    def test_new_module_noted_but_passes(self):
        current = make_report([
            make_record("test_fast", 2.0),
            make_record("test_slow", self.BASE_WALL),
            make_record("test_extra", 99.0),
        ])
        result = compare(current, self.snapshot())
        assert result.status == "pass"
        assert statuses(result)["test_extra"] == "new"

    def test_failed_current_module_fails(self):
        current = make_report([
            make_record("test_fast", 2.0),
            make_record("test_slow", 1.0, passed=False, error="AssertionError: x"),
        ])
        result = compare(current, self.snapshot())
        assert result.status == "fail"
        assert statuses(result)["test_slow"] == "failed"

    def test_failed_baseline_carries_no_budget(self):
        snapshot = make_snapshot([make_record("test_flaky", 5.0, passed=False)])
        current = make_report([make_record("test_flaky", 99.0)])
        result = compare(current, snapshot)
        assert result.status == "pass"

    def test_calibration_scales_budgets(self):
        # Current machine is 2x slower (probe 2.0 vs baseline 1.0): a wall
        # that doubled is exactly on budget, not a regression.
        current = make_report([
            make_record("test_fast", 4.0),
            make_record("test_slow", self.BASE_WALL * 2),
        ])
        result = compare(current, self.snapshot(), current_calibration_s=2.0)
        assert result.scale == 2.0
        assert result.status == "pass"

    def test_calibration_scaling_still_catches_regressions(self):
        current = make_report([
            make_record("test_fast", 4.0),
            make_record("test_slow", self.BASE_WALL * 3),
        ])
        result = compare(current, self.snapshot(), current_calibration_s=2.0)
        assert result.status == "fail"


class TestTrendTable:
    def test_table_includes_every_row_and_verdict(self):
        snapshot = make_snapshot([
            make_record("test_fast", 2.0),
            make_record("test_slow", 20.0),
        ])
        current = make_report([
            make_record("test_fast", 2.0),
            make_record("test_slow", 30.0),
        ])
        table = trend_table(compare(current, snapshot))
        assert "**FAIL**" in table
        assert "| test_fast |" in table
        assert "| test_slow |" in table
        assert "x1.50" in table
        assert "over budget" in table

    def test_table_renders_missing_as_dashes(self):
        snapshot = make_snapshot([make_record("test_gone", 5.0)])
        current = make_report([make_record("test_new", 1.0)])
        table = trend_table(compare(current, snapshot))
        assert "missing" in table
        assert "new" in table


class TestHistory:
    def test_numbering_starts_at_one(self, tmp_path):
        assert next_snapshot_path(tmp_path, "First Label!").name == "0001-first-label.json"

    def test_numbering_increments_past_latest(self, tmp_path):
        (tmp_path / "0001-old.json").write_text("{}")
        (tmp_path / "0007-newer.json").write_text("{}")
        (tmp_path / "README.md").write_text("not a snapshot")
        assert next_snapshot_path(tmp_path, "x").name == "0008-x.json"
        assert latest_snapshot(tmp_path).name == "0007-newer.json"

    def test_empty_history_has_no_latest(self, tmp_path):
        assert latest_snapshot(tmp_path) is None
        assert history_snapshots(tmp_path) == []


class TestCacheHitRate:
    """The cache hit-rate trend column (serve PR satellite)."""

    def test_rate_from_raw_cache_dict(self):
        record = make_record("m", 1.0)
        record["cache"] = {"hits": 3, "misses": 1}
        assert cache_hit_rate(record) == pytest.approx(0.75)

    def test_precomputed_field_wins(self):
        record = make_record("m", 1.0)
        record["cache_hit_rate"] = 0.5
        record["cache"] = {"hits": 0, "misses": 100}
        assert cache_hit_rate(record) == pytest.approx(0.5)

    def test_no_cache_traffic_is_none_not_zero(self):
        record = make_record("m", 1.0)
        record["cache"] = {"hits": 0, "misses": 0}
        assert cache_hit_rate(record) is None
        record["cache"] = "garbage"
        assert cache_hit_rate(record) is None

    def test_merge_annotates_records_with_hit_rate(self):
        record = make_record("m", 1.0)
        record["cache"] = {"hits": 1, "misses": 3}
        merged = merge_min_of_n([make_report([record])])
        assert merged["results"][0]["cache_hit_rate"] == pytest.approx(0.25)

    def test_compare_threads_rates_into_rows_and_table(self):
        base = make_record("m", 10.0)
        base["cache"] = {"hits": 1, "misses": 9}
        cur = make_record("m", 10.0)
        cur["cache_hit_rate"] = 0.9
        result = compare(make_report([cur]), make_snapshot([base]), 1.0)
        (row,) = result.rows
        assert row.baseline_hit_rate == pytest.approx(0.1)
        assert row.current_hit_rate == pytest.approx(0.9)
        table = trend_table(result)
        assert "cache hit" in table
        assert "10% → 90%" in table

    def test_old_snapshots_without_rate_render_dashes(self):
        base = make_record("m", 10.0)
        base["cache"] = {"hits": 0, "misses": 0}
        cur = make_record("m", 10.0)
        cur["cache"] = {"hits": 0, "misses": 0}
        result = compare(make_report([cur]), make_snapshot([base]), 1.0)
        assert "– → –" in trend_table(result)


class TestCommittedSnapshots:
    """Tier-1 smoke: everything committed under benchmarks/history/ parses."""

    def test_history_dir_has_snapshots(self):
        assert HISTORY_DIR.is_dir(), "benchmarks/history/ must be committed"
        assert history_snapshots(HISTORY_DIR), (
            "benchmarks/history/ holds no snapshots; commit one with "
            "'python tools/bench_gate.py snapshot --label <label>'"
        )

    def test_committed_snapshots_validate(self):
        for path in history_snapshots(HISTORY_DIR):
            with open(path) as handle:
                snapshot = json.load(handle)
            errors = validate_snapshot(snapshot)
            assert not errors, f"{path.name}: {errors}"

    def test_latest_committed_snapshot_is_self_consistent(self):
        latest = latest_snapshot(HISTORY_DIR)
        snapshot = json.loads(latest.read_text())
        report = snapshot["report"]
        # The snapshot gates future runs; its own bookkeeping must agree.
        assert report["modules_failed"] == 0, (
            f"{latest.name} recorded failed modules {report['failed']} -- "
            "a broken baseline cannot gate anything"
        )
        total = round(sum(r["wall_s"] for r in report["results"]), 3)
        assert abs(total - report["total_wall_s"]) < 0.01
