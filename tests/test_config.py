"""Tests for the architecture configuration space (repro.config)."""

import pytest

from repro.config import (
    GRIFFIN,
    PAPER_CORE,
    SPARSE_A_STAR,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
    ArchConfig,
    BorrowConfig,
    CoreGeometry,
    GriffinArch,
    ModelCategory,
    dense,
    parse_notation,
    sparse_a,
    sparse_ab,
    sparse_b,
)


class TestCoreGeometry:
    def test_paper_core_is_1024_macs(self):
        assert PAPER_CORE.macs_per_cycle == 1024
        assert PAPER_CORE.num_pes == 64
        assert (PAPER_CORE.k0, PAPER_CORE.n0, PAPER_CORE.m0) == (16, 16, 4)

    def test_dense_tops_at_800mhz(self):
        # 1024 MACs x 2 ops x 800 MHz = 1.6384 TOPS.
        assert PAPER_CORE.dense_tops == pytest.approx(1.6384)

    def test_rejects_non_positive_dims(self):
        with pytest.raises(ValueError):
            CoreGeometry(k0=0)
        with pytest.raises(ValueError):
            CoreGeometry(m0=-1)

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            CoreGeometry(precision_bits=7)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            CoreGeometry(frequency_mhz=0)


class TestBorrowConfig:
    def test_window_and_candidates(self):
        cfg = BorrowConfig(2, 1, 1)
        assert cfg.window == 3
        assert cfg.candidates == 3 * 2 * 2

    def test_dense_detection(self):
        assert BorrowConfig().is_dense
        assert not BorrowConfig(d1=1).is_dense

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BorrowConfig(d1=-1)

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            BorrowConfig(d1=1.5)


class TestFamilies:
    def test_dense_family(self):
        assert dense().family == "Dense"

    def test_sparse_a_family(self):
        assert sparse_a(2, 1, 0).family == "Sparse.A"

    def test_sparse_b_family(self):
        assert sparse_b(4, 0, 1).family == "Sparse.B"

    def test_sparse_ab_family(self):
        assert sparse_ab(2, 0, 0, 2, 0, 1).family == "Sparse.AB"

    def test_support_flags(self):
        cfg = sparse_ab(1, 0, 0, 1, 0, 0)
        assert cfg.supports_a_sparsity and cfg.supports_b_sparsity
        assert not dense().supports_a_sparsity


class TestNotation:
    def test_roundtrip_a(self):
        cfg = sparse_a(2, 1, 0, shuffle=True)
        assert cfg.notation == "A(2,1,0,on)"
        assert parse_notation(cfg.notation) == ArchConfig(a=cfg.a, shuffle=True)

    def test_roundtrip_b(self):
        cfg = sparse_b(4, 0, 1)
        assert cfg.notation == "B(4,0,1,off)"
        assert parse_notation(cfg.notation).b == cfg.b

    def test_roundtrip_ab(self):
        cfg = sparse_ab(2, 0, 0, 2, 0, 1, shuffle=True)
        assert cfg.notation == "AB(2,0,0,2,0,1,on)"
        parsed = parse_notation(cfg.notation)
        assert parsed.a == cfg.a and parsed.b == cfg.b and parsed.shuffle

    def test_parse_dense(self):
        assert parse_notation("Dense").family == "Dense"
        assert parse_notation("baseline").family == "Dense"

    def test_parse_defaults_shuffle_off(self):
        assert not parse_notation("B(4,0,1)").shuffle

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            parse_notation("A(1,2)")
        with pytest.raises(ValueError):
            parse_notation("AB(1,2,3)")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_notation("C(1,2,3)")

    def test_label_prefers_name(self):
        assert SPARSE_B_STAR.label == "Sparse.B*"
        assert sparse_b(4, 0, 1).label == "B(4,0,1,off)"


class TestModelCategory:
    def test_from_sparsity(self):
        assert ModelCategory.from_sparsity(False, False) is ModelCategory.DENSE
        assert ModelCategory.from_sparsity(True, False) is ModelCategory.A
        assert ModelCategory.from_sparsity(False, True) is ModelCategory.B
        assert ModelCategory.from_sparsity(True, True) is ModelCategory.AB

    def test_flags(self):
        assert ModelCategory.AB.activations_sparse
        assert ModelCategory.AB.weights_sparse
        assert not ModelCategory.B.activations_sparse
        assert not ModelCategory.A.weights_sparse


class TestGriffin:
    def test_published_configuration(self):
        # Table VI: conf.AB = AB(2,0,0,2,0,1), conf.B = B(8,0,1),
        # conf.A = A(2,1,1), all with shuffling.
        assert GRIFFIN.conf_ab.notation == "AB(2,0,0,2,0,1,on)"
        assert GRIFFIN.conf_b.notation == "B(8,0,1,on)"
        assert GRIFFIN.conf_a.notation == "A(2,1,1,on)"

    def test_config_for_each_category(self):
        assert GRIFFIN.config_for(ModelCategory.AB) is GRIFFIN.conf_ab
        assert GRIFFIN.config_for(ModelCategory.A) is GRIFFIN.conf_a
        assert GRIFFIN.config_for(ModelCategory.B) is GRIFFIN.conf_b
        assert GRIFFIN.config_for(ModelCategory.DENSE).family == "Dense"

    def test_rejects_wrong_families(self):
        with pytest.raises(ValueError):
            GriffinArch(conf_ab=sparse_b(4, 0, 1))

    def test_published_stars(self):
        assert SPARSE_B_STAR.notation == "B(4,0,1,on)"
        assert SPARSE_A_STAR.notation == "A(2,1,0,on)"
        assert SPARSE_AB_STAR.notation == "AB(2,0,0,2,0,1,on)"
