"""Cross-module integration tests: the paper's claims end to end."""

import pytest

from repro.config import (
    GRIFFIN,
    ModelCategory,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
    dense,
    sparse_b,
)
from repro.core.metrics import effective_tops_per_watt
from repro.dse.evaluate import EvalSettings, category_speedup, evaluate_design
from repro.hw.cost import cost_of, gated_power_mw, griffin_cost
from repro.sim.engine import SimulationOptions

FAST = EvalSettings(
    quick=True, options=SimulationOptions(passes_per_gemm=2, max_t_steps=48)
)


class TestEndToEndClaims:
    def test_weight_sparse_suite_speedup_band(self):
        # Fig. 5 territory: B*(4,0,1,on) around 2-3x on the pruned suite.
        s = category_speedup(SPARSE_B_STAR, ModelCategory.B, FAST)
        assert 1.7 < s < 3.2

    def test_dual_beats_single_on_dual_sparse(self):
        dual = category_speedup(SPARSE_AB_STAR, ModelCategory.AB, FAST)
        single = category_speedup(SPARSE_B_STAR, ModelCategory.AB, FAST)
        assert dual > single

    def test_deeper_lookahead_faster_at_same_family(self):
        shallow = category_speedup(sparse_b(2, 0, 1, shuffle=True), ModelCategory.B, FAST)
        deep = category_speedup(sparse_b(8, 0, 1, shuffle=True), ModelCategory.B, FAST)
        assert deep > shallow

    def test_griffin_evaluation_complete(self):
        ev = evaluate_design(GRIFFIN, tuple(ModelCategory), FAST)
        assert {pt.category for pt in ev.points} == {c.value for c in ModelCategory}
        assert ev.speedup(ModelCategory.DENSE) == pytest.approx(1.0)
        assert ev.speedup(ModelCategory.B) > 1.5
        assert ev.speedup(ModelCategory.AB) >= ev.speedup(ModelCategory.A)

    def test_griffin_beats_plain_dual_power_efficiency_on_b(self):
        griffin = evaluate_design(GRIFFIN, (ModelCategory.B,), FAST)
        dual = evaluate_design(SPARSE_AB_STAR, (ModelCategory.B,), FAST)
        assert (
            griffin.point(ModelCategory.B).tops_per_watt
            > dual.point(ModelCategory.B).tops_per_watt
        )


class TestGatedPower:
    def test_sparse_b_star_dense_overhead_matches_paper(self):
        # Sec. VI-A: Sparse.B* imposes ~16% power overhead on dense models.
        cost = cost_of(SPARSE_B_STAR)
        power = gated_power_mw(cost, SPARSE_B_STAR, ModelCategory.DENSE)
        base = cost_of(dense()).total_power_mw
        assert power / base == pytest.approx(1.16, abs=0.05)

    def test_griffin_dense_tax_matches_paper(self):
        # Sec. VI-F: Griffin's dense sparsity tax is ~29% in power.
        base_eff = effective_tops_per_watt(1.0, cost_of(dense()).total_power_mw)
        cost = griffin_cost(GRIFFIN)
        from repro.hw.cost import griffin_category_power_mw

        power = griffin_category_power_mw(GRIFFIN, cost, ModelCategory.DENSE)
        tax = 1.0 - effective_tops_per_watt(1.0, power) / base_eff
        assert tax == pytest.approx(0.29, abs=0.05)

    def test_sparse_operating_point_not_gated(self):
        cost = cost_of(SPARSE_B_STAR)
        assert gated_power_mw(cost, SPARSE_B_STAR, ModelCategory.B) == pytest.approx(
            cost.total_power_mw
        )

    def test_dual_gates_pair_control_on_weight_only(self):
        cost = cost_of(SPARSE_AB_STAR)
        on_b = gated_power_mw(cost, SPARSE_AB_STAR, ModelCategory.B)
        on_ab = gated_power_mw(cost, SPARSE_AB_STAR, ModelCategory.AB)
        assert on_b < on_ab

    def test_dense_arch_never_gated(self):
        cost = cost_of(dense())
        for category in ModelCategory:
            assert gated_power_mw(cost, dense(), category) == pytest.approx(
                cost.total_power_mw
            )


class TestDeterminismAcrossStack:
    def test_full_evaluation_is_reproducible(self):
        a = evaluate_design(SPARSE_B_STAR, (ModelCategory.B,), FAST)
        b = evaluate_design(SPARSE_B_STAR, (ModelCategory.B,), FAST)
        assert a.point(ModelCategory.B).speedup == b.point(ModelCategory.B).speedup
