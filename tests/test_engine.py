"""Tests for the end-to-end simulation engine."""

import numpy as np
import pytest

from repro.config import (
    GRIFFIN,
    ModelCategory,
    dense,
    sparse_a,
    sparse_ab,
    sparse_b,
)
from repro.sim.engine import (
    SimulationOptions,
    simulate_layer,
    simulate_network,
    simulate_tile,
)
from repro.workloads.models import alexnet, bert_base
from repro.workloads.registry import BENCHMARKS, benchmark

FAST = SimulationOptions(passes_per_gemm=2, max_t_steps=48, seed=3)


class TestSimulateTile:
    def test_dense_tile(self):
        res = simulate_tile(dense(), t_steps=33)
        assert res.cycles == 33 and res.speedup == 1.0

    def test_requires_t_steps_or_mask(self):
        with pytest.raises(ValueError):
            simulate_tile(dense())

    def test_b_only_dispatch(self):
        rng = np.random.default_rng(0)
        b = rng.random((32, 16, 16)) < 0.2
        res = simulate_tile(sparse_b(4, 0, 1), b_mask=b)
        assert res.dense_cycles == 32
        assert res.cycles < 32
        assert res.executed_ops == int(b.sum())

    def test_a_only_dispatch(self):
        rng = np.random.default_rng(1)
        a = rng.random((32, 16, 4)) < 0.5
        res = simulate_tile(sparse_a(2, 1, 0), a_mask=a)
        assert res.cycles < 32

    def test_dual_dispatch(self):
        rng = np.random.default_rng(2)
        a = rng.random((32, 16, 4)) < 0.5
        b = rng.random((32, 16, 16)) < 0.2
        res = simulate_tile(sparse_ab(2, 0, 0, 2, 0, 1), a_mask=a, b_mask=b)
        single = simulate_tile(sparse_b(2, 0, 1), b_mask=b)
        assert res.cycles < single.cycles  # dual skips A zeros too

    def test_shuffle_helps_imbalanced_tile(self):
        rng = np.random.default_rng(3)
        probs = np.clip(0.2 * rng.gamma(2.0, 0.5, 16), 0, 1)
        b = rng.random((64, 16, 16)) < probs[None, :, None]
        off = simulate_tile(sparse_b(6, 0, 0), b_mask=b)
        on = simulate_tile(sparse_b(6, 0, 0, shuffle=True), b_mask=b)
        assert on.cycles < off.cycles


class TestSimulateNetwork:
    @pytest.mark.parametrize(
        "info", BENCHMARKS, ids=[b.name for b in BENCHMARKS]
    )
    def test_dense_latency_in_table_iv_ballpark(self, info):
        res = simulate_network(info.network, dense(), ModelCategory.DENSE, FAST)
        assert res.speedup == 1.0
        # Absolute dense latency within ~2x of Table IV (the paper's
        # simulator carries pipeline overheads ours folds differently).
        assert res.cycles == pytest.approx(info.dense_latency_cycles, rel=0.65)

    def test_sparse_b_speeds_up_pruned_network(self):
        net = alexnet()
        res = simulate_network(net, sparse_b(4, 0, 1, shuffle=True), ModelCategory.B, FAST)
        assert 1.5 < res.speedup < 5.0

    def test_dense_category_gets_no_speedup(self):
        net = alexnet()
        res = simulate_network(net, sparse_b(4, 0, 1), ModelCategory.DENSE, FAST)
        assert res.speedup == pytest.approx(1.0)

    def test_a_arch_ignores_weight_sparsity(self):
        net = alexnet()
        res_b = simulate_network(net, sparse_a(2, 1, 0), ModelCategory.B, FAST)
        assert res_b.speedup == pytest.approx(1.0)

    def test_bert_has_no_a_speedup(self):
        net = bert_base()
        res = simulate_network(net, sparse_a(2, 1, 0, shuffle=True), ModelCategory.A, FAST)
        assert res.speedup == pytest.approx(1.0, abs=0.02)

    def test_deterministic(self):
        net = alexnet()
        r1 = simulate_network(net, sparse_b(4, 0, 0), ModelCategory.B, FAST)
        r2 = simulate_network(net, sparse_b(4, 0, 0), ModelCategory.B, FAST)
        assert r1.cycles == r2.cycles

    def test_layer_results_sum(self):
        net = alexnet()
        res = simulate_network(net, sparse_b(4, 0, 0), ModelCategory.B, FAST)
        assert res.cycles == pytest.approx(sum(l.cycles for l in res.layers))
        assert res.dense_cycles == sum(l.dense_cycles for l in res.layers)

    def test_speedup_capped_by_window_product(self):
        net = bert_base()
        cfg = sparse_b(2, 0, 0)
        res = simulate_network(net, cfg, ModelCategory.B, FAST)
        assert res.speedup <= 3.0 + 1e-9

    def test_repeated_layers_hit_cache(self):
        # BERT's 12 identical encoders simulate as 2 unique layers.
        from repro.sim.engine import _simulate_layer_cached

        _simulate_layer_cached.cache_clear()
        simulate_network(bert_base(), sparse_b(4, 0, 0), ModelCategory.B, FAST)
        info = _simulate_layer_cached.cache_info()
        assert info.misses <= 4
        assert info.hits >= 20

    def test_layer_results_keep_real_names(self):
        res = simulate_network(alexnet(), sparse_b(4, 0, 0), ModelCategory.B, FAST)
        assert [l.name for l in res.layers][:3] == ["conv1", "conv2", "conv3"]


class TestSimulateLayerNames:
    def test_simulate_layer_returns_display_name(self):
        layer = alexnet().layers[0]
        res = simulate_layer(layer, sparse_b(4, 0, 0), ModelCategory.B, FAST)
        assert res.name == "conv1"

    def test_cache_shared_across_names_without_losing_them(self):
        # Two layers identical up to the display name must share one cache
        # entry yet each come back under their own name.
        from repro.gemm.layers import GemmShape
        from repro.sim.engine import _simulate_layer_cached
        from repro.workloads.models import NetworkLayer, RawGemmSpec

        shapes = (GemmShape(m=48, k=160, n=48),)
        first = NetworkLayer(
            spec=RawGemmSpec(name="enc0.attn", shapes=shapes),
            weight_density=0.3, act_density=1.0,
        )
        twin = NetworkLayer(
            spec=RawGemmSpec(name="enc7.attn", shapes=shapes),
            weight_density=0.3, act_density=1.0,
        )
        _simulate_layer_cached.cache_clear()
        res_a = simulate_layer(first, sparse_b(4, 0, 0), ModelCategory.B, FAST)
        res_b = simulate_layer(twin, sparse_b(4, 0, 0), ModelCategory.B, FAST)
        info = _simulate_layer_cached.cache_info()
        assert info.misses == 1 and info.hits == 1
        assert res_a.name == "enc0.attn" and res_b.name == "enc7.attn"
        assert res_a.cycles == res_b.cycles
        assert res_a.gemms == res_b.gemms


class TestGriffinMorphPerformance:
    def test_conf_b_beats_downgraded_dual_on_dnn_b(self):
        # The headline Table III / Fig. 8(b) claim.
        net = alexnet()
        dual = simulate_network(net, GRIFFIN.conf_ab, ModelCategory.B, FAST)
        morph = simulate_network(net, GRIFFIN.conf_b, ModelCategory.B, FAST)
        assert morph.speedup > dual.speedup

    def test_conf_a_beats_downgraded_dual_on_dnn_a(self):
        net = alexnet()
        dual = simulate_network(net, GRIFFIN.conf_ab, ModelCategory.A, FAST)
        morph = simulate_network(net, GRIFFIN.conf_a, ModelCategory.A, FAST)
        assert morph.speedup > dual.speedup

    def test_dual_mode_fastest_on_dual_sparse(self):
        net = alexnet()
        ab = simulate_network(net, GRIFFIN.conf_ab, ModelCategory.AB, FAST)
        b_only = simulate_network(net, GRIFFIN.conf_b, ModelCategory.AB, FAST)
        assert ab.speedup > b_only.speedup


class TestOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationOptions(passes_per_gemm=0)
        with pytest.raises(ValueError):
            SimulationOptions(max_t_steps=2)

    def test_stall_toggle_changes_results(self):
        net = benchmark("AlexNet").network
        with_stalls = simulate_network(
            net, sparse_b(4, 0, 1), ModelCategory.B,
            SimulationOptions(passes_per_gemm=2, max_t_steps=48, include_stalls=True),
        )
        without = simulate_network(
            net, sparse_b(4, 0, 1), ModelCategory.B,
            SimulationOptions(passes_per_gemm=2, max_t_steps=48, include_stalls=False),
        )
        assert with_stalls.cycles >= without.cycles

    def test_dram_ablation_slows_fc_heavy_nets(self):
        net = alexnet()
        base = simulate_network(
            net, sparse_b(4, 0, 1), ModelCategory.B,
            SimulationOptions(passes_per_gemm=2, max_t_steps=48, include_dram=False),
        )
        dram = simulate_network(
            net, sparse_b(4, 0, 1), ModelCategory.B,
            SimulationOptions(passes_per_gemm=2, max_t_steps=48, include_dram=True),
        )
        assert dram.cycles > base.cycles
