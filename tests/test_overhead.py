"""Tests for the Table II / Sec. IV-A hardware overhead model."""

import pytest

from repro.config import dense, sparse_a, sparse_ab, sparse_b
from repro.core.overhead import overhead_of


class TestDense:
    def test_no_overhead(self):
        ovh = overhead_of(dense())
        assert ovh.abuf_depth == 1
        assert ovh.amux_fanin == 1
        assert ovh.adder_trees == 1
        assert ovh.extra_adder_trees == 0
        assert ovh.amux_legs == 0
        assert not ovh.per_pe_control
        assert not ovh.per_row_arbiter


class TestSparseATableII:
    """The special-case rows of Table II pin the Sparse.A closed forms."""

    @pytest.mark.parametrize("da1", [1, 2, 3, 4])
    def test_time_only_row(self, da1):
        ovh = overhead_of(sparse_a(da1, 0, 0))
        assert ovh.abuf_depth == 1 + da1
        assert ovh.amux_fanin == 1 + da1
        assert ovh.bbuf_depth == 1 + da1
        assert ovh.bmux_fanin == 1 + da1
        assert ovh.adder_trees == 1

    @pytest.mark.parametrize("da2", [1, 2, 3])
    def test_lane_row(self, da2):
        ovh = overhead_of(sparse_a(1, da2, 0))
        assert ovh.abuf_depth == 2
        assert ovh.amux_fanin == 2 + da2
        assert ovh.bbuf_depth == 2
        assert ovh.bmux_fanin == 2 + da2
        assert ovh.adder_trees == 1

    @pytest.mark.parametrize("da3", [1, 2])
    def test_neighbour_row(self, da3):
        ovh = overhead_of(sparse_a(1, 0, da3))
        assert ovh.abuf_depth == 2
        assert ovh.amux_fanin == 2 + da3
        assert ovh.bmux_fanin == 2
        assert ovh.adder_trees == 1 + da3

    def test_sec_vi_b_quoted_fanin_formula(self):
        # Sec. VI-B observation 4: AMUX = 1 + da1*(1+da2)*(1+da3).
        ovh = overhead_of(sparse_a(4, 1, 0))
        assert ovh.amux_fanin == 1 + 4 * 2 * 1

    def test_arbiter_not_pe_control(self):
        ovh = overhead_of(sparse_a(2, 1, 0))
        assert ovh.per_row_arbiter and not ovh.per_pe_control
        assert ovh.metadata_bits == 0


class TestSparseBTableII:
    @pytest.mark.parametrize("db1", [1, 2, 4, 8])
    def test_time_only_row(self, db1):
        ovh = overhead_of(sparse_b(db1, 0, 0))
        assert ovh.abuf_depth == 1 + db1
        assert ovh.amux_fanin == 1 + db1
        assert ovh.bbuf_depth == 0
        assert ovh.bmux_fanin == 0
        assert ovh.adder_trees == 1

    @pytest.mark.parametrize("db2", [1, 2])
    def test_lane_row(self, db2):
        ovh = overhead_of(sparse_b(1, db2, 0))
        assert ovh.abuf_depth == 2
        assert ovh.amux_fanin == 2 + db2

    @pytest.mark.parametrize("db3", [1, 2])
    def test_neighbour_row(self, db3):
        ovh = overhead_of(sparse_b(1, 0, db3))
        assert ovh.amux_fanin == 2
        assert ovh.adder_trees == 1 + db3

    def test_preprocessed_b_has_no_bbuf(self):
        ovh = overhead_of(sparse_b(4, 0, 1))
        assert ovh.bbuf_depth == 0 and ovh.bmux_fanin == 0
        assert ovh.metadata_bits > 0

    def test_paper_upgrade_example(self):
        # Sec. III: Sparse.B(...) with db3=1 needs one extra adder tree.
        base = overhead_of(sparse_b(4, 0, 0))
        upgraded = overhead_of(sparse_b(4, 0, 1))
        assert upgraded.adder_trees == base.adder_trees + 1

    def test_metadata_bits_b201(self):
        # Table III: Sparse.B(2,0,1) carries 3 bits per element.
        assert overhead_of(sparse_b(2, 0, 1)).metadata_bits == 3


class TestSparseABSection4A:
    def test_published_star_numbers(self):
        # Sec. IV-B: Sparse.AB(2,0,0,2,0,1) requires a 9-entry ABUF,
        # 3-entry BBUF, 9-input AMUX, 3-input BMUX and one extra adder tree.
        ovh = overhead_of(sparse_ab(2, 0, 0, 2, 0, 1))
        assert ovh.abuf_depth == 9
        assert ovh.bbuf_depth == 3
        assert ovh.amux_fanin == 9
        assert ovh.bmux_fanin == 3
        assert ovh.extra_adder_trees == 1
        assert ovh.per_pe_control and ovh.per_row_arbiter

    def test_abuf_is_window_product(self):
        for da1, db1 in [(1, 1), (2, 3), (1, 4)]:
            ovh = overhead_of(sparse_ab(da1, 0, 0, db1, 0, 0))
            assert ovh.abuf_depth == (1 + da1) * (1 + db1)

    def test_amux_formula(self):
        # Sec. IV-A: AMUX = 1 + (L-1)(1 + y + y')(1 + z).
        ovh = overhead_of(sparse_ab(1, 1, 1, 1, 1, 0))
        l_depth = 4
        assert ovh.amux_fanin == 1 + (l_depth - 1) * (1 + 1 + 1) * 2

    def test_adder_trees_product(self):
        # Fig. 7 observation 2: da3 and db3 both nonzero means at least
        # four adder trees per PE.
        ovh = overhead_of(sparse_ab(1, 0, 1, 1, 0, 1))
        assert ovh.adder_trees == 4

    def test_fig7_fanin_bound_example(self):
        # AB(2,0,0,4,0,2) reaches the Fig. 7 fan-in limit of 16.
        assert overhead_of(sparse_ab(2, 0, 0, 4, 0, 2)).amux_fanin == 15


class TestGriffinMorphOverheads:
    def test_conf_b_uses_full_abuf_with_wider_metadata(self):
        from repro.config import GRIFFIN

        ab = overhead_of(GRIFFIN.conf_ab)
        conf_b = overhead_of(GRIFFIN.conf_b)
        assert conf_b.abuf_depth == ab.abuf_depth == 9
        # Table III: metadata widens from 3 bits (dual) to >= 4 (conf.B).
        assert conf_b.metadata_bits > overhead_of(GRIFFIN.conf_ab).metadata_bits >= 3

    def test_conf_a_bmux_grows_3_to_5(self):
        from repro.config import GRIFFIN

        assert overhead_of(GRIFFIN.conf_ab).bmux_fanin == 3
        assert overhead_of(GRIFFIN.conf_a).bmux_fanin == 5
