"""Tests for the guided design-space search subsystem (`repro.search`).

The load-bearing guarantees:

* `SearchSpace` expresses the three paper spaces exactly (element-for-
  element identical to the legacy explorer lists) plus arbitrary
  constrained spaces; mutation/sampling are seeded-deterministic;
* the `ParetoArchive` keeps exact dominance bookkeeping incrementally,
  handles ties/duplicates, and round-trips through its JSON checkpoint;
* the ask/tell loop enforces budgets, answers recorded configs from the
  archive (resume), and is bitwise-deterministic across runs and worker
  counts;
* the exhaustive strategy reproduces the legacy `design_space()` sweep
  results; the seeded evolutionary strategy recovers the Table VI optimal
  point of each paper space while evaluating < 25% of its grid.

The expensive end-to-end assertions share one session-scoped persistent
cache, so each (config, category) pair is simulated at most once per test
run no matter how many strategies walk over it.
"""

import json
import random

import pytest

from repro.api import Session
from repro.config import ModelCategory, sparse_b
from repro.core.metrics import EfficiencyPoint
from repro.dse.evaluate import DesignEvaluation, EvalSettings
from repro.dse.explorer import design_space, space_categories
from repro.dse.report import select_optimal
from repro.runtime.cache import CacheStats
from repro.runtime.search import run_search_loop
from repro.search import (
    AreaBudget,
    EvolutionarySearch,
    ExhaustiveSearch,
    MaxAmuxFanin,
    Objective,
    ObjectiveSet,
    ParetoArchive,
    Predicate,
    RandomSearch,
    SearchRecord,
    SearchSpace,
    SearchSpec,
    paper_space,
)
from repro.search.strategy import build_strategy
from repro.sim.engine import SimulationOptions

CHEAP = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=7)

#: Per-space single-benchmark settings: BERT only exercises DNN.B, and
#: MobileNetV2 is by far the cheapest network to simulate dual-sparse.
SPACE_SETTINGS = {
    "b": EvalSettings(quick=True, options=CHEAP, networks=("BERT",)),
    "a": EvalSettings(quick=True, options=CHEAP, networks=("AlexNet",)),
    "ab": EvalSettings(quick=True, options=CHEAP, networks=("MobileNetV2",)),
}

#: Evolutionary budgets: < 25% of each space's exhaustive grid
#: (42 / 34 / 72 feasible configs respectively).
BUDGETS = {"b": 9, "a": 7, "ab": 17}

EVO = dict(population=4, parents=2, children=2)
SEED = 14


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    """One persistent cache for every search in this module."""
    return Session(cache_dir=tmp_path_factory.mktemp("search-cache"))


# ----------------------------------------------------------------------
# SearchSpace.
# ----------------------------------------------------------------------


class TestSearchSpace:
    def test_paper_spaces_match_legacy_explorer(self):
        for name in ("a", "b", "ab"):
            assert paper_space(name).configs() == design_space(name)

    def test_grid_vs_feasible_size(self):
        space = paper_space("b")
        assert space.grid_size == 4 * 3 * 3 * 2
        assert len(space) == 42 < space.grid_size

    def test_constraints_compose(self):
        base = SearchSpace(name="x", db1=(2, 4, 6), db3=(0, 1))
        tight = SearchSpace(
            name="x",
            db1=(2, 4, 6),
            db3=(0, 1),
            constraints=(
                MaxAmuxFanin(8),
                AreaBudget(1500.0),
                Predicate(lambda c: c.shuffle, "shuffle required"),
            ),
        )
        assert 0 < len(tight) < len(base)
        for config in tight:
            assert config.shuffle

    def test_contains(self):
        space = paper_space("b")
        assert sparse_b(4, 0, 1, shuffle=True) in space
        assert sparse_b(1, 0, 0) not in space          # domain excludes db1=1
        assert sparse_b(6, 2, 0) not in space          # fan-in infeasible
        assert "B(4,0,1,on)" not in space              # not a config

    def test_enumeration_deduplicates_by_notation(self):
        # The all-dense point's shuffle variants share the notation "Dense"
        # (the design identity everywhere in the subsystem); enumeration
        # must yield it once so len(space) always equals the number of
        # archivable designs.
        space = SearchSpace(name="d", db1=(0, 2))
        notations = [c.notation for c in space]
        assert notations == ["Dense", "B(2,0,0,off)", "B(2,0,0,on)"]
        assert len(space) == len(set(notations)) == 3 < space.grid_size

    def test_default_category(self):
        assert paper_space("b").default_category() is ModelCategory.B
        assert paper_space("a").default_category() is ModelCategory.A
        assert paper_space("ab").default_category() is ModelCategory.AB
        assert SearchSpace().default_category() is ModelCategory.DENSE

    def test_rejects_bad_domains(self):
        with pytest.raises(ValueError, match="empty"):
            SearchSpace(db1=())
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace(db1=(2, 2))
        with pytest.raises(ValueError, match="non-negative"):
            SearchSpace(db1=(-1,))

    def test_mutation_stays_feasible_and_deterministic(self):
        space = paper_space("ab")
        rng_a, rng_b = random.Random(5), random.Random(5)
        config = space.configs()[10]
        for _ in range(50):
            mutated_a = space.mutate(config, rng_a)
            mutated_b = space.mutate(config, rng_b)
            assert mutated_a == mutated_b
            assert mutated_a in space
            assert mutated_a != config
            config = mutated_a

    def test_sample_deterministic(self):
        space = paper_space("b")
        assert space.sample(random.Random(3), 5) == space.sample(random.Random(3), 5)
        assert space.sample(random.Random(3), 999) == space.configs()

    def test_json_round_trip(self):
        space = SearchSpace(
            name="wide",
            db1=(1, 2, 3),
            db2=(0, 1),
            constraints=(MaxAmuxFanin(8), AreaBudget(2000.0)),
        )
        assert SearchSpace.from_dict(space.to_dict()) == space

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown search-space keys"):
            SearchSpace.from_dict({"db1": [2], "dbx": [1]})

    def test_predicate_constraint_not_serializable(self):
        space = SearchSpace(db1=(2,), constraints=(Predicate(lambda c: True),))
        with pytest.raises(ValueError, match="cannot be serialized"):
            space.to_dict()


# ----------------------------------------------------------------------
# ParetoArchive.
# ----------------------------------------------------------------------


def _record(key, scores, index):
    point = EfficiencyPoint(
        label=key, category=ModelCategory.B.value, speedup=1.0,
        power_mw=100.0, area_um2=1e6,
    )
    return SearchRecord(
        key=key, index=index, scores=tuple(scores),
        evaluation=DesignEvaluation(label=key, points=(point,)),
    )


class TestParetoArchive:
    def archive(self):
        return ParetoArchive(("s", "d"), space="t")

    def test_incremental_dominance(self):
        archive = self.archive()
        archive.add(_record("a", (1.0, 1.0), 0))
        archive.add(_record("b", (2.0, 2.0), 1))     # dominates a
        archive.add(_record("c", (0.5, 3.0), 2))     # incomparable to b
        archive.add(_record("d", (0.4, 2.5), 3))     # dominated by c
        assert [r.key for r in archive.front()] == ["b", "c"]
        assert len(archive) == 4                     # everything stays recorded
        assert archive.on_front("b") and not archive.on_front("d")

    def test_ties_share_the_front(self):
        archive = self.archive()
        archive.add(_record("a", (1.0, 2.0), 0))
        archive.add(_record("b", (1.0, 2.0), 1))     # identical scores
        assert [r.key for r in archive.front()] == ["a", "b"]

    def test_duplicate_keys_are_noops(self):
        archive = self.archive()
        first = archive.add(_record("a", (1.0, 1.0), 0))
        again = archive.add(_record("a", (9.0, 9.0), 1))
        assert again is first and len(archive) == 1

    def test_best_applies_scalar_rule(self):
        archive = self.archive()
        archive.add(_record("balanced", (3.0, 3.0), 0))
        archive.add(_record("skewed", (8.0, 1.0), 1))
        assert archive.best(lambda s: s[0] * s[1]).key == "balanced"
        with pytest.raises(ValueError):
            self.archive().best(sum)

    def test_score_arity_checked(self):
        with pytest.raises(ValueError, match="objectives"):
            self.archive().add(_record("a", (1.0,), 0))

    def test_checkpoint_round_trip(self, tmp_path):
        archive = self.archive()
        archive.add(_record("a", (1.0, 2.0), 0))
        archive.add(_record("b", (2.0, 1.0), 1))
        archive.add(_record("c", (0.1, 0.1), 2))
        path = tmp_path / "arch.json"
        archive.save(path)
        loaded = ParetoArchive.load(path)
        assert loaded.objectives == archive.objectives
        assert loaded.space == archive.space
        assert [r.key for r in loaded.front()] == [r.key for r in archive.front()]
        assert [(r.key, r.scores, r.evaluation) for r in loaded] == [
            (r.key, r.scores, r.evaluation) for r in archive
        ]

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "arch.json"
        payload = self.archive().to_dict()
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            ParetoArchive.load(path)


# ----------------------------------------------------------------------
# The ask/tell loop (strategy-level, no simulation).
# ----------------------------------------------------------------------


def _fake_evaluate(configs):
    """Deterministic synthetic scores: favour db1=2, db2=2, shuffle."""
    evaluations = []
    for config in configs:
        score = 10.0 - abs(config.b.d1 - 2) - abs(config.b.d2 - 2) + config.shuffle
        point = EfficiencyPoint(
            label=config.label, category=ModelCategory.B.value,
            speedup=score, power_mw=100.0, area_um2=1e6,
        )
        evaluations.append(DesignEvaluation(label=config.label, points=(point,)))
    return evaluations, CacheStats()


SPEEDUP_OBJECTIVE = ObjectiveSet((Objective(ModelCategory.B, "speedup"),))


class TestSearchLoop:
    def test_budget_enforced(self):
        space = paper_space("b")
        archive = ParetoArchive(SPEEDUP_OBJECTIVE.names, space="b")
        outcome = run_search_loop(
            RandomSearch(space, budget=30, seed=1, batch_size=4),
            _fake_evaluate, SPEEDUP_OBJECTIVE, archive, budget=6,
        )
        assert len(archive) == 6 == outcome.evaluated

    def test_exhaustive_covers_space_once(self):
        space = paper_space("b")
        archive = ParetoArchive(SPEEDUP_OBJECTIVE.names, space="b")
        outcome = run_search_loop(
            ExhaustiveSearch(space), _fake_evaluate, SPEEDUP_OBJECTIVE, archive
        )
        assert len(archive) == len(space)
        assert outcome.batches == 1 and outcome.reused == 0
        assert [r.key for r in archive] == [c.notation for c in space]

    def test_resume_replays_without_reevaluating(self):
        space = paper_space("b")
        objectives = SPEEDUP_OBJECTIVE

        def strategy():
            return EvolutionarySearch(space, budget=12, seed=3, **EVO)

        full_archive = ParetoArchive(objectives.names, space="b")
        run_search_loop(strategy(), _fake_evaluate, objectives, full_archive,
                        budget=12)

        # Interrupt at 6, checkpoint, then resume to 12: identical archive.
        half_archive = ParetoArchive(objectives.names, space="b")
        run_search_loop(strategy(), _fake_evaluate, objectives, half_archive,
                        budget=6)
        resumed = run_search_loop(strategy(), _fake_evaluate, objectives,
                                  half_archive, budget=12)
        assert resumed.reused >= 6 and resumed.evaluated == 6
        assert [(r.key, r.scores) for r in half_archive] == [
            (r.key, r.scores) for r in full_archive
        ]

    def test_evolutionary_budget_exceeding_space_terminates(self):
        space = SearchSpace(name="tiny", db1=(2, 3), shuffle=(False, True))
        archive = ParetoArchive(SPEEDUP_OBJECTIVE.names, space="tiny")
        run_search_loop(
            EvolutionarySearch(space, budget=50, seed=0, **EVO),
            _fake_evaluate, SPEEDUP_OBJECTIVE, archive, budget=50,
        )
        assert len(archive) == len(space)  # proposed everything, then went silent

    def test_checkpoint_called_per_batch(self):
        space = paper_space("b")
        archive = ParetoArchive(SPEEDUP_OBJECTIVE.names, space="b")
        saves = []
        outcome = run_search_loop(
            RandomSearch(space, budget=8, seed=1, batch_size=4),
            _fake_evaluate, SPEEDUP_OBJECTIVE, archive, budget=8,
            checkpoint=lambda: saves.append(len(archive)),
        )
        assert saves == [4, 8] and outcome.batches == 2

    def test_build_strategy_validates(self):
        space = paper_space("b")
        assert build_strategy("exhaustive", space).name == "exhaustive"
        with pytest.raises(ValueError, match="budget"):
            build_strategy("random", space)
        with pytest.raises(ValueError, match="unknown search strategy"):
            build_strategy("annealing", space, budget=5)


# ----------------------------------------------------------------------
# SearchSpec.
# ----------------------------------------------------------------------


class TestSearchSpec:
    MINI = {
        "name": "mini",
        "space": {"name": "b-mini", "db1": [2, 3], "max_amux_fanin": 8},
        "strategy": {"kind": "random", "seed": 5, "budget": 4},
        "networks": ["BERT"],
        "options": {"passes_per_gemm": 1, "max_t_steps": 16, "seed": 7},
    }

    def test_round_trip(self):
        spec = SearchSpec.from_dict(self.MINI)
        assert SearchSpec.from_dict(spec.to_dict()) == spec

    def test_preset_space(self):
        spec = SearchSpec.from_dict({"space": "ab"})
        assert spec.space == paper_space("ab")
        assert spec.strategy.kind == "exhaustive"  # bare spec = full sweep
        assert spec.resolve_objectives().categories == (
            ModelCategory.AB, ModelCategory.DENSE
        )

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown search keys"):
            SearchSpec.from_dict({"space": "b", "budget": 5})
        with pytest.raises(ValueError, match="unknown strategy keys"):
            SearchSpec.from_dict({"space": "b", "strategy": {"kid": "x"}})
        with pytest.raises(ValueError, match="needs a 'space'"):
            SearchSpec.from_dict({"name": "nope"})

    def test_infeasible_space_fails_fast(self):
        with pytest.raises(ValueError, match="no feasible config"):
            SearchSpec.from_dict(
                {"space": {"db1": [6], "db2": [4], "max_amux_fanin": 8}}
            )

    def test_missing_budget_fails_fast(self):
        with pytest.raises(ValueError, match="budget"):
            SearchSpec.from_dict(
                {"space": "b", "strategy": {"kind": "evolutionary"}}
            )

    def test_checked_in_example_parses(self):
        from pathlib import Path

        spec = SearchSpec.load(
            Path(__file__).resolve().parent.parent
            / "examples" / "experiments" / "search_b.json"
        )
        assert spec.strategy.kind == "evolutionary"
        assert spec.strategy.budget is not None
        assert len(spec.space) >= 10 * spec.strategy.budget
        assert spec.resolve_objectives().names == (
            "DNN.B:tops_per_watt", "DNN.dense:tops_per_watt"
        )


# ----------------------------------------------------------------------
# End to end through the session (real simulations, shared cache).
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["b", "a", "ab"])
class TestSessionSearchEndToEnd:
    def test_exhaustive_matches_legacy_sweep_and_evolutionary_recovers_star(
        self, session, name
    ):
        space = paper_space(name)
        settings = SPACE_SETTINGS[name]
        sparse_cat, dense_cat = space_categories(name)

        exhaustive = session.search(space, settings=settings)
        assert len(exhaustive.archive) == len(space)

        # Identical to the legacy design_space() sweep through evaluate().
        legacy = session.evaluate(design_space(name), (sparse_cat, dense_cat),
                                  settings)
        assert tuple(r.evaluation for r in exhaustive.archive) == \
            legacy.evaluations
        # ... and the product-rule star matches select_optimal.
        star = select_optimal(list(legacy.evaluations), sparse_cat, dense_cat)
        assert exhaustive.optimal().label == star.label

        # The seeded evolutionary strategy recovers the same Table VI
        # optimal point with < 25% of the exhaustive evaluations.
        budget = BUDGETS[name]
        assert budget < 0.25 * len(space)
        evolutionary = session.search(
            space,
            EvolutionarySearch(space, budget=budget, seed=SEED, **EVO),
            budget=budget, settings=settings,
        )
        assert len(evolutionary.archive) == budget
        assert evolutionary.optimal().label == exhaustive.optimal().label

    def test_evolutionary_bitwise_deterministic_across_workers(
        self, session, name, tmp_path
    ):
        space = paper_space(name)
        settings = SPACE_SETTINGS[name]
        budget = BUDGETS[name]

        def run(workers):
            inner = Session(cache_dir=session.cache_dir, workers=workers)
            result = inner.search(
                space,
                EvolutionarySearch(space, budget=budget, seed=SEED, **EVO),
                budget=budget, settings=settings,
            )
            return [(r.key, r.scores, r.evaluation) for r in result.archive]

        serial = run(0)
        parallel = run(2)
        assert serial == parallel


class TestSessionSearchPlumbing:
    def test_checkpoint_resume_through_session(self, session, tmp_path):
        space = paper_space("b")
        settings = SPACE_SETTINGS["b"]
        path = tmp_path / "b.json"

        def strategy():
            return EvolutionarySearch(space, budget=BUDGETS["b"], seed=SEED, **EVO)

        first = session.search(space, strategy(), budget=BUDGETS["b"],
                               settings=settings, checkpoint=path)
        assert path.is_file()

        resumed = session.search(space, strategy(), budget=BUDGETS["b"],
                                 settings=settings, checkpoint=path, resume=True)
        assert resumed.outcome.evaluated == 0
        assert [(r.key, r.scores) for r in resumed.archive] == [
            (r.key, r.scores) for r in first.archive
        ]
        assert resumed.optimal().label == first.optimal().label

    def test_resume_without_checkpoint_is_an_error(self, session):
        with pytest.raises(ValueError, match="checkpoint"):
            session.search(paper_space("b"), settings=SPACE_SETTINGS["b"],
                           resume=True)

    def test_resume_rejects_mismatched_checkpoint(self, session, tmp_path):
        path = tmp_path / "wrong.json"
        ParetoArchive(("other:metric",), space="b").save(path)
        with pytest.raises(ValueError, match="objectives"):
            session.search(paper_space("b"), settings=SPACE_SETTINGS["b"],
                           checkpoint=path, resume=True)
        ParetoArchive(
            ("DNN.B:tops_per_watt", "DNN.dense:tops_per_watt"), space="zz"
        ).save(path)
        with pytest.raises(ValueError, match="space"):
            session.search(paper_space("b"), settings=SPACE_SETTINGS["b"],
                           checkpoint=path, resume=True)

    def test_spec_through_session(self, session):
        result = session.search(
            {
                "name": "spec-mini",
                "space": {"name": "b-mini", "db1": [2, 3], "db3": [0, 1],
                          "max_amux_fanin": 8},
                "strategy": {"kind": "random", "seed": 5, "budget": 4},
                "networks": ["BERT"],
                "options": {"passes_per_gemm": 1, "max_t_steps": 16, "seed": 7},
            }
        )
        assert len(result.archive) == 4
        assert result.name == "spec-mini"
        payload = result.to_dict()
        assert payload["evaluations"] == 4
        assert payload["optimal"]["key"] == result.optimal().key
        assert len(payload["front"]) == len(result.front())
