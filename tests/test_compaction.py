"""Tests for the borrow-scheduling kernel (simulator heart)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.compaction import (
    CompactionResult,
    compact_schedule,
    compact_schedule_reference,
    unpack_schedule,
)


def random_mask(seed, t, l, c1, c2=1, density=0.3):
    rng = np.random.default_rng(seed)
    return rng.random((t, l, c1, c2)) < density


class TestBasicSemantics:
    def test_dense_mask_costs_t_cycles(self):
        mask = np.ones((12, 4, 3), dtype=bool)
        res = compact_schedule(mask, 0, 0, 0)
        assert res.cycles == 12
        assert res.executed_ops == 12 * 4 * 3
        assert res.borrowed_ops == 0

    def test_empty_mask_drains_at_window_rate(self):
        mask = np.zeros((20, 4, 2), dtype=bool)
        res = compact_schedule(mask, 4, 0, 0)
        assert res.cycles == int(np.ceil(20 / 5))
        assert res.executed_ops == 0

    def test_empty_mask_no_lookahead(self):
        mask = np.zeros((20, 4, 2), dtype=bool)
        assert compact_schedule(mask, 0, 0, 0).cycles == 20

    def test_zero_time_steps(self):
        mask = np.zeros((0, 4, 2), dtype=bool)
        assert compact_schedule(mask, 2, 0, 0).cycles == 0

    def test_single_hot_stream_is_work_bound(self):
        mask = np.zeros((30, 4, 1), dtype=bool)
        mask[:, 0, 0] = True  # 30 ops in one stream
        res = compact_schedule(mask, 4, 0, 0)
        assert res.cycles == 30

    def test_ideal_speedup_cap_is_window(self):
        # One op total: cycles is bounded below by T / (1 + d1).
        mask = np.zeros((40, 4, 2), dtype=bool)
        mask[0, 0, 0] = True
        for d1 in (0, 1, 3, 7):
            res = compact_schedule(mask, d1, 0, 0)
            assert res.cycles == int(np.ceil(40 / (1 + d1)))

    def test_all_ops_execute_exactly_once(self):
        mask = random_mask(1, 18, 6, 4, density=0.4)
        res = compact_schedule(mask, 2, 1, 1)
        assert res.executed_ops == int(mask.sum())

    def test_lane_borrowing_balances_hot_lane(self):
        # Lane 0 is dense, others empty: with d2 = 3, three neighbours help.
        mask = np.zeros((24, 4, 1), dtype=bool)
        mask[:, 0, 0] = True
        alone = compact_schedule(mask, 4, 0, 0).cycles
        pooled = compact_schedule(mask, 4, 3, 0).cycles
        assert pooled < alone
        assert pooled >= 24 // 4

    def test_pe_borrowing_is_directional(self):
        # Work in c1=0 can only be taken by lower-index PEs via d3... the
        # donor direction is c + d3, so a hot PE at the *end* has helpers.
        mask = np.zeros((24, 2, 3), dtype=bool)
        mask[:, :, 2] = True
        helped = compact_schedule(mask, 2, 0, 2).cycles
        alone = compact_schedule(mask, 2, 0, 0).cycles
        assert helped < alone

    def test_no_wrap_disables_edge_donor(self):
        mask = np.zeros((16, 2, 1), dtype=bool)
        mask[:, 0, 0] = True  # lane 0 hot; lane 1's donor (wrap) is lane 0
        wrap = compact_schedule(mask, 2, 1, 0, lane_wrap=True).cycles
        nowrap = compact_schedule(mask, 2, 1, 0, lane_wrap=False).cycles
        assert wrap <= nowrap


class TestMonotonicity:
    @pytest.mark.parametrize("param", ["d1", "d2", "d3"])
    def test_more_borrowing_never_hurts(self, param):
        mask = random_mask(7, 20, 8, 4, density=0.25)
        base = dict(d1=1, d2=0, d3=0)
        lo = compact_schedule(mask, **base).cycles
        base[param] = base[param] + 2
        hi = compact_schedule(mask, **base).cycles
        assert hi <= lo

    def test_cycles_bounded_by_dense(self):
        for seed in range(5):
            mask = random_mask(seed, 16, 6, 3, density=0.5)
            res = compact_schedule(mask, 3, 1, 1)
            assert res.cycles <= 16

    def test_cycles_at_least_work_and_window_bounds(self):
        mask = random_mask(3, 25, 5, 4, density=0.3)
        d1 = 3
        res = compact_schedule(mask, d1, 2, 2)
        flat = mask.reshape(25, -1)
        max_stream = int(flat.sum(axis=0).max())
        assert res.cycles >= int(np.ceil(25 / (1 + d1)))
        assert res.cycles >= int(np.ceil(mask.sum() / flat.shape[1]))
        # Without borrowing the hottest stream is also a bound.
        assert compact_schedule(mask, d1, 0, 0).cycles >= max_stream


class TestFrontModes:
    def test_tile_mode_slowest(self):
        mask = random_mask(11, 30, 8, 4, density=0.2)
        stream = compact_schedule(mask, 3, 0, 0, front_mode="stream").cycles
        unit = compact_schedule(mask, 3, 0, 0, front_mode="unit").cycles
        tile = compact_schedule(mask, 3, 0, 0, front_mode="tile").cycles
        assert stream <= unit <= tile

    def test_unknown_mode_rejected(self):
        mask = random_mask(0, 4, 2, 1)
        with pytest.raises(ValueError):
            compact_schedule(mask, 1, front_mode="bogus")
        with pytest.raises(ValueError):
            compact_schedule_reference(mask, 1, front_mode="bogus")

    def test_dense_invariant_under_mode(self):
        mask = np.ones((10, 3, 2), dtype=bool)
        for mode in ("stream", "unit", "tile"):
            assert compact_schedule(mask, 2, front_mode=mode).cycles == 10


class TestScheduleRecording:
    def test_schedule_entries_are_real_ops(self):
        mask = random_mask(5, 12, 4, 3, density=0.4)
        res = compact_schedule(mask, 2, 1, 1, return_schedule=True)
        sched = res.schedule
        executed = sched[sched >= 0]
        assert len(executed) == res.executed_ops
        # Every recorded entry refers to a true op, each exactly once.
        assert len(np.unique(executed)) == len(executed)
        t, l, c1, c2 = unpack_schedule(sched.copy(), mask.shape)
        ok = sched >= 0
        assert mask[t[ok], l[ok], c1[ok], c2[ok]].all()

    def test_unpack_marks_idle(self):
        sched = np.array([[-1, 5]])
        t, l, c1, c2 = unpack_schedule(sched.copy(), (3, 2, 1, 1))
        assert t[0, 0] == -1 and l[0, 0] == -1

    def test_occupancy(self):
        mask = np.ones((4, 2, 1), dtype=bool)
        res = compact_schedule(mask, 0)
        assert res.occupancy == pytest.approx(2.0)
        assert CompactionResult(0, 0, 0, 0).occupancy == 0.0


class TestInputValidation:
    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            compact_schedule(np.ones((4, 4), dtype=bool), 1)

    def test_accepts_3d_and_4d(self):
        m3 = np.ones((4, 2, 2), dtype=bool)
        m4 = m3[:, :, :, np.newaxis]
        assert compact_schedule(m3, 1).cycles == compact_schedule(m4, 1).cycles


@settings(max_examples=60, deadline=None)
@given(
    t=st.integers(1, 14),
    l=st.integers(1, 6),
    c1=st.integers(1, 4),
    c2=st.integers(1, 3),
    d1=st.integers(0, 4),
    d2=st.integers(0, 3),
    d3=st.integers(0, 2),
    mode=st.sampled_from(["stream", "unit", "tile"]),
    wrap=st.booleans(),
    seed=st.integers(0, 2**31),
    density=st.floats(0.0, 1.0),
)
def test_fast_matches_reference(t, l, c1, c2, d1, d2, d3, mode, wrap, seed, density):
    """The vectorized kernel is cycle-exact against the pure-Python oracle."""
    rng = np.random.default_rng(seed)
    mask = rng.random((t, l, c1, c2)) < density
    fast = compact_schedule(mask, d1, d2, d3, lane_wrap=wrap, front_mode=mode)
    ref = compact_schedule_reference(mask, d1, d2, d3, lane_wrap=wrap, front_mode=mode)
    assert fast.cycles == ref.cycles
    assert fast.executed_ops == ref.executed_ops == int(mask.sum())
    assert fast.borrowed_ops == ref.borrowed_ops
    assert fast.busy_cycles == ref.busy_cycles


@settings(max_examples=40, deadline=None)
@given(
    t=st.integers(1, 20),
    d1=st.integers(0, 5),
    seed=st.integers(0, 2**31),
    density=st.floats(0.05, 0.95),
)
def test_invariants_hold(t, d1, seed, density):
    """Work bound, window bound, and dense ceiling on random tiles."""
    rng = np.random.default_rng(seed)
    mask = rng.random((t, 4, 3, 2)) < density
    res = compact_schedule(mask, d1, 1, 1)
    nnz = int(mask.sum())
    slots = 4 * 3 * 2
    assert res.executed_ops == nnz
    assert res.cycles <= t or nnz == 0 and res.cycles <= t
    assert res.cycles >= int(np.ceil(t / (1 + d1)))
    assert res.cycles >= int(np.ceil(nnz / slots))
