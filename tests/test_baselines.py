"""Tests for the SOTA baseline registry (Table V)."""

import pytest

from repro.baselines import (
    CAMBRICON_X,
    CNVLUTIN,
    SPARTEN_AB,
    TCL_B,
    TDASH_AB,
    all_baselines,
    baseline,
)
from repro.config import ModelCategory


class TestTableVRows:
    def test_tcl_is_weight_only_no_shuffle(self):
        assert TCL_B.family == "Sparse.B"
        assert not TCL_B.shuffle
        assert TCL_B.b.d3 == 0  # TCL does not route across output channels

    def test_tensordash_is_dual_no_preprocessing_dims(self):
        assert TDASH_AB.family == "Sparse.AB"
        assert TDASH_AB.a.d2 > 0 and TDASH_AB.b.d2 > 0
        assert not TDASH_AB.shuffle

    def test_sparten_is_time_only(self):
        assert SPARTEN_AB.family == "Sparse.AB"
        assert SPARTEN_AB.a.d2 == SPARTEN_AB.a.d3 == 0
        assert SPARTEN_AB.b.d2 == SPARTEN_AB.b.d3 == 0

    def test_cnvlutin_activation_only(self):
        assert CNVLUTIN.family == "Sparse.A"

    def test_cambricon_wide_window(self):
        assert CAMBRICON_X.b.d1 == 15 and CAMBRICON_X.b.d2 == 15

    def test_registry_contents(self):
        names = [b.name for b in all_baselines()]
        assert names == [
            "Baseline", "BitTactical", "TensorDash", "SparTen",
            "Cnvlutin", "Cambricon-X",
        ]

    def test_routing_rows_have_table_v_columns(self):
        row = baseline("TensorDash").routing_row()
        assert set(row) == {
            "Architecture", "da1", "da2", "da3", "db1", "db2", "db3",
            "Shuffle", "Sparsity",
        }

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            baseline("Eyeriss")


class TestCostRows:
    def test_sparten_per_category_power(self):
        sparten = baseline("SparTen")
        assert sparten.power_mw(ModelCategory.AB) == pytest.approx(991.0)
        # Dense streams leave the inner-join machinery idle (Fig. 8a fit).
        assert sparten.power_mw(ModelCategory.DENSE) < 400.0

    def test_others_power_is_cost_total(self):
        tcl = baseline("BitTactical")
        assert tcl.power_mw(ModelCategory.B) == pytest.approx(tcl.cost.total_power_mw)

    def test_tcl_cheaper_than_tensordash(self):
        assert (
            baseline("BitTactical").cost.total_power_mw
            < baseline("TensorDash").cost.total_power_mw
        )
