"""Property-based invariants of ``compact_schedule`` over random masks.

These lock the scheduler's contract in for refactors:

* zero borrowing costs exactly ``T`` cycles for *any* mask, and a dense
  mask costs exactly ``T`` for any borrowing distances;
* borrowing never makes a tile slower than dense (``cycles <= T``);
* cycles are bounded below by the work (``ceil(ops / slots)``) and by the
  stream drain rate (``ceil(T / (1 + d1))``);
* growing any single distance is monotone non-increasing up to a one-cycle
  tolerance -- the greedy offset-priority arbiter can lose exactly one
  cycle to an unlucky donor claim, never more (verified over tens of
  thousands of schedules);
* the vectorized kernel agrees with the pure-Python reference oracle.

Masks are drawn as (shape, density, seed) and expanded with a seeded
generator, so examples are reproducible; with ``hypothesis`` installed the
search is driven by its shrinker (derandomized for CI stability), otherwise
a fixed seeded-random sweep covers the same ground.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sim.compaction import compact_schedule, compact_schedule_reference

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the container always has it
    HAVE_HYPOTHESIS = False


def make_mask(t_steps: int, lanes: int, c1: int, c2: int, density: float, seed: int):
    rng = np.random.default_rng(seed)
    return rng.random((t_steps, lanes, c1, c2)) < density


def check_bounds(mask, d1: int, d2: int, d3: int) -> None:
    t_steps = mask.shape[0]
    slots = mask.shape[1] * mask.shape[2] * mask.shape[3]
    ops = int(mask.sum())
    res = compact_schedule(mask, d1, d2, d3)
    assert res.executed_ops == ops
    assert res.cycles <= t_steps, "borrowing must never be slower than dense"
    assert res.cycles >= math.ceil(ops / slots)
    assert res.cycles >= math.ceil(t_steps / (1 + d1))
    if d2 == 0 and d3 == 0:
        assert res.borrowed_ops == 0, "no lane/PE reach means no borrowed ops"
    assert res.busy_cycles <= res.cycles


def check_no_borrowing_is_dense(mask) -> None:
    res = compact_schedule(mask, 0, 0, 0)
    assert res.cycles == mask.shape[0]


def check_dense_mask_costs_t(shape, d1: int, d2: int, d3: int) -> None:
    dense = np.ones(shape, dtype=bool)
    res = compact_schedule(dense, d1, d2, d3)
    assert res.cycles == shape[0]
    assert res.executed_ops == int(dense.sum())


def check_near_monotone(mask, base: tuple[int, int, int]) -> None:
    for axis in range(3):
        distances = list(base)
        previous = None
        for value in range(4):
            distances[axis] = value
            cycles = compact_schedule(mask, *distances).cycles
            if previous is not None:
                assert cycles <= previous + 1, (
                    f"growing d{axis + 1} to {value} regressed {previous} -> "
                    f"{cycles} cycles (more than arbitration jitter)"
                )
            previous = cycles


def check_matches_reference(mask, d1: int, d2: int, d3: int) -> None:
    fast = compact_schedule(mask, d1, d2, d3)
    slow = compact_schedule_reference(mask, d1, d2, d3)
    assert fast.cycles == slow.cycles
    assert fast.busy_cycles == slow.busy_cycles
    assert fast.executed_ops == slow.executed_ops
    assert fast.borrowed_ops == slow.borrowed_ops


if HAVE_HYPOTHESIS:
    mask_params = st.tuples(
        st.integers(2, 14),       # T
        st.integers(1, 6),        # L
        st.integers(1, 4),        # C1
        st.integers(1, 2),        # C2
        st.floats(0.02, 0.98),    # density
        st.integers(0, 2**31),    # seed
    )
    distance = st.integers(0, 3)
    prop = settings(max_examples=60, deadline=None, derandomize=True)

    class TestHypothesisProperties:
        @prop
        @given(mask_params, distance, distance, distance)
        def test_bounds(self, params, d1, d2, d3):
            check_bounds(make_mask(*params), d1, d2, d3)

        @prop
        @given(mask_params)
        def test_no_borrowing_is_dense(self, params):
            check_no_borrowing_is_dense(make_mask(*params))

        @prop
        @given(st.tuples(st.integers(2, 14), st.integers(1, 6), st.integers(1, 4),
                         st.integers(1, 2)), distance, distance, distance)
        def test_dense_mask_costs_t(self, shape, d1, d2, d3):
            check_dense_mask_costs_t(shape, d1, d2, d3)

        @prop
        @given(mask_params, distance, distance, distance)
        def test_near_monotone(self, params, b1, b2, b3):
            check_near_monotone(make_mask(*params), (b1, b2, b3))

        @settings(max_examples=30, deadline=None, derandomize=True)
        @given(
            st.tuples(st.integers(2, 8), st.integers(1, 4), st.integers(1, 3),
                      st.integers(1, 2), st.floats(0.05, 0.95), st.integers(0, 2**31)),
            distance, distance, distance,
        )
        def test_matches_reference(self, params, d1, d2, d3):
            check_matches_reference(make_mask(*params), d1, d2, d3)


class TestSeededRandomProperties:
    """Seeded-random sweep of the same invariants (runs with or without
    hypothesis, so CI environments missing it keep the coverage)."""

    @pytest.mark.parametrize("trial", range(25))
    def test_invariants(self, trial):
        rng = np.random.default_rng(1000 + trial)
        t_steps = int(rng.integers(2, 14))
        lanes = int(rng.integers(1, 6))
        c1 = int(rng.integers(1, 4))
        c2 = int(rng.integers(1, 3))
        density = float(rng.uniform(0.02, 0.98))
        mask = make_mask(t_steps, lanes, c1, c2, density, seed=trial)
        base = tuple(int(rng.integers(0, 4)) for _ in range(3))
        check_bounds(mask, *base)
        check_no_borrowing_is_dense(mask)
        check_dense_mask_costs_t((t_steps, lanes, c1, c2), *base)
        check_near_monotone(mask, base)

    @pytest.mark.parametrize("trial", range(8))
    def test_matches_reference(self, trial):
        rng = np.random.default_rng(2000 + trial)
        mask = make_mask(
            int(rng.integers(2, 8)), int(rng.integers(1, 4)),
            int(rng.integers(1, 3)), int(rng.integers(1, 2)),
            float(rng.uniform(0.05, 0.95)), seed=trial,
        )
        check_matches_reference(
            mask, int(rng.integers(0, 3)), int(rng.integers(0, 3)), int(rng.integers(0, 3))
        )
