"""Property-based invariants of ``compact_schedule`` over random masks.

These lock the scheduler's contract in for refactors:

* zero borrowing costs exactly ``T`` cycles for *any* mask, and a dense
  mask costs exactly ``T`` for any borrowing distances;
* borrowing never makes a tile slower than dense (``cycles <= T``);
* cycles are bounded below by the work (``ceil(ops / slots)``) and by the
  stream drain rate (``ceil(T / (1 + d1))``);
* growing any single distance is monotone non-increasing up to a one-cycle
  tolerance -- the greedy offset-priority arbiter can lose exactly one
  cycle to an unlucky donor claim, never more (verified over tens of
  thousands of schedules);
* the vectorized kernel agrees with the pure-Python reference oracle.

Masks are drawn as (shape, density, seed) and expanded with a seeded
generator, so examples are reproducible; with ``hypothesis`` installed the
search is driven by its shrinker (derandomized for CI stability), otherwise
a fixed seeded-random sweep covers the same ground.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sim.compaction import (
    compact_schedule,
    compact_schedule_batch,
    compact_schedule_reference,
)

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the container always has it
    HAVE_HYPOTHESIS = False


def make_mask(t_steps: int, lanes: int, c1: int, c2: int, density: float, seed: int):
    rng = np.random.default_rng(seed)
    return rng.random((t_steps, lanes, c1, c2)) < density


def check_bounds(mask, d1: int, d2: int, d3: int) -> None:
    t_steps = mask.shape[0]
    slots = mask.shape[1] * mask.shape[2] * mask.shape[3]
    ops = int(mask.sum())
    res = compact_schedule(mask, d1, d2, d3)
    assert res.executed_ops == ops
    assert res.cycles <= t_steps, "borrowing must never be slower than dense"
    assert res.cycles >= math.ceil(ops / slots)
    assert res.cycles >= math.ceil(t_steps / (1 + d1))
    if d2 == 0 and d3 == 0:
        assert res.borrowed_ops == 0, "no lane/PE reach means no borrowed ops"
    assert res.busy_cycles <= res.cycles


def check_no_borrowing_is_dense(mask) -> None:
    res = compact_schedule(mask, 0, 0, 0)
    assert res.cycles == mask.shape[0]


def check_dense_mask_costs_t(shape, d1: int, d2: int, d3: int) -> None:
    dense = np.ones(shape, dtype=bool)
    res = compact_schedule(dense, d1, d2, d3)
    assert res.cycles == shape[0]
    assert res.executed_ops == int(dense.sum())


def check_near_monotone(mask, base: tuple[int, int, int]) -> None:
    for axis in range(3):
        distances = list(base)
        previous = None
        for value in range(4):
            distances[axis] = value
            cycles = compact_schedule(mask, *distances).cycles
            if previous is not None:
                assert cycles <= previous + 1, (
                    f"growing d{axis + 1} to {value} regressed {previous} -> "
                    f"{cycles} cycles (more than arbitration jitter)"
                )
            previous = cycles


def check_matches_reference(
    mask, d1: int, d2: int, d3: int, front_mode: str = "stream"
) -> None:
    fast = compact_schedule(
        mask, d1, d2, d3, return_schedule=True, front_mode=front_mode
    )
    slow = compact_schedule_reference(
        mask, d1, d2, d3, return_schedule=True, front_mode=front_mode
    )
    assert fast.cycles == slow.cycles
    assert fast.busy_cycles == slow.busy_cycles
    assert fast.executed_ops == slow.executed_ops
    assert fast.borrowed_ops == slow.borrowed_ops
    # The recorded schedules must be bit-identical, not just cycle-equal:
    # downstream dual-sparsity filtering replays them element by element.
    assert fast.schedule.shape == slow.schedule.shape
    assert np.array_equal(fast.schedule, slow.schedule)
    assert fast.schedule.dtype == slow.schedule.dtype


def check_batch_matches_sequential(
    masks, d1: int, d2: int, d3: int, lane_wrap: bool = True
) -> None:
    sequential = [
        compact_schedule(m, d1, d2, d3, lane_wrap=lane_wrap) for m in masks
    ]
    batched = compact_schedule_batch(masks, d1, d2, d3, lane_wrap=lane_wrap)
    assert len(batched) == len(sequential)
    for seq, bat in zip(sequential, batched):
        assert bat.cycles == seq.cycles
        assert bat.busy_cycles == seq.busy_cycles
        assert bat.executed_ops == seq.executed_ops
        assert bat.borrowed_ops == seq.borrowed_ops


if HAVE_HYPOTHESIS:
    mask_params = st.tuples(
        st.integers(2, 14),       # T
        st.integers(1, 6),        # L
        st.integers(1, 4),        # C1
        st.integers(1, 2),        # C2
        st.floats(0.02, 0.98),    # density
        st.integers(0, 2**31),    # seed
    )
    distance = st.integers(0, 3)
    prop = settings(max_examples=60, deadline=None, derandomize=True)

    class TestHypothesisProperties:
        @prop
        @given(mask_params, distance, distance, distance)
        def test_bounds(self, params, d1, d2, d3):
            check_bounds(make_mask(*params), d1, d2, d3)

        @prop
        @given(mask_params)
        def test_no_borrowing_is_dense(self, params):
            check_no_borrowing_is_dense(make_mask(*params))

        @prop
        @given(st.tuples(st.integers(2, 14), st.integers(1, 6), st.integers(1, 4),
                         st.integers(1, 2)), distance, distance, distance)
        def test_dense_mask_costs_t(self, shape, d1, d2, d3):
            check_dense_mask_costs_t(shape, d1, d2, d3)

        @prop
        @given(mask_params, distance, distance, distance)
        def test_near_monotone(self, params, b1, b2, b3):
            check_near_monotone(make_mask(*params), (b1, b2, b3))

        @settings(max_examples=30, deadline=None, derandomize=True)
        @given(
            st.tuples(st.integers(2, 8), st.integers(1, 4), st.integers(1, 3),
                      st.integers(1, 2), st.floats(0.05, 0.95), st.integers(0, 2**31)),
            distance, distance, distance,
            st.sampled_from(["stream", "unit", "tile"]),
        )
        def test_matches_reference(self, params, d1, d2, d3, front_mode):
            check_matches_reference(make_mask(*params), d1, d2, d3, front_mode)

        @settings(max_examples=30, deadline=None, derandomize=True)
        @given(
            st.lists(
                st.tuples(st.integers(1, 12), st.floats(0.0, 1.0),
                          st.integers(0, 2**31)),
                min_size=1, max_size=6,
            ),
            st.tuples(st.integers(1, 4), st.integers(1, 3), st.integers(1, 2)),
            distance, distance, distance,
            st.booleans(),
        )
        def test_batch_matches_sequential(self, tiles, dims, d1, d2, d3, wrap):
            lanes, c1, c2 = dims
            masks = [
                make_mask(t, lanes, c1, c2, density, seed)
                for t, density, seed in tiles
            ]
            check_batch_matches_sequential(masks, d1, d2, d3, lane_wrap=wrap)


class TestSeededRandomProperties:
    """Seeded-random sweep of the same invariants (runs with or without
    hypothesis, so CI environments missing it keep the coverage)."""

    @pytest.mark.parametrize("trial", range(25))
    def test_invariants(self, trial):
        rng = np.random.default_rng(1000 + trial)
        t_steps = int(rng.integers(2, 14))
        lanes = int(rng.integers(1, 6))
        c1 = int(rng.integers(1, 4))
        c2 = int(rng.integers(1, 3))
        density = float(rng.uniform(0.02, 0.98))
        mask = make_mask(t_steps, lanes, c1, c2, density, seed=trial)
        base = tuple(int(rng.integers(0, 4)) for _ in range(3))
        check_bounds(mask, *base)
        check_no_borrowing_is_dense(mask)
        check_dense_mask_costs_t((t_steps, lanes, c1, c2), *base)
        check_near_monotone(mask, base)

    @pytest.mark.parametrize("trial", range(8))
    def test_matches_reference(self, trial):
        rng = np.random.default_rng(2000 + trial)
        mask = make_mask(
            int(rng.integers(2, 8)), int(rng.integers(1, 4)),
            int(rng.integers(1, 3)), int(rng.integers(1, 2)),
            float(rng.uniform(0.05, 0.95)), seed=trial,
        )
        mode = ("stream", "unit", "tile")[trial % 3]
        check_matches_reference(
            mask, int(rng.integers(0, 3)), int(rng.integers(0, 3)),
            int(rng.integers(0, 3)), front_mode=mode,
        )

    @pytest.mark.parametrize("trial", range(10))
    def test_batch_matches_sequential(self, trial):
        rng = np.random.default_rng(3000 + trial)
        lanes = int(rng.integers(1, 5))
        c1 = int(rng.integers(1, 4))
        c2 = int(rng.integers(1, 3))
        d1, d2, d3 = (int(rng.integers(0, 4)) for _ in range(3))
        wrap = bool(trial % 2)
        masks = []
        for i in range(int(rng.integers(1, 7))):
            t_steps = int(rng.integers(1, 16))
            # Force occasional all-zero tiles: the batch kernel short-cuts
            # them to the pure drain and must still agree with sequential.
            density = 0.0 if i % 4 == 3 else float(rng.uniform(0.0, 1.0))
            masks.append(make_mask(t_steps, lanes, c1, c2, density, seed=i))
        check_batch_matches_sequential(masks, d1, d2, d3, lane_wrap=wrap)

    def test_no_borrowing_fast_path_matches_reference(self):
        # d2 == d3 == 0 takes the closed-form path; pin it to the oracle
        # including the recorded schedule.
        for trial in range(6):
            rng = np.random.default_rng(4000 + trial)
            mask = make_mask(
                int(rng.integers(2, 12)), int(rng.integers(1, 5)),
                int(rng.integers(1, 4)), int(rng.integers(1, 3)),
                float(rng.uniform(0.0, 1.0)), seed=trial,
            )
            check_matches_reference(mask, int(rng.integers(0, 4)), 0, 0)

    def test_batch_of_one_matches_single(self):
        mask = make_mask(9, 4, 3, 2, 0.4, seed=7)
        single = compact_schedule(mask, 2, 1, 1)
        (bat,) = compact_schedule_batch([mask], 2, 1, 1)
        assert (bat.cycles, bat.busy_cycles, bat.executed_ops, bat.borrowed_ops) == (
            single.cycles, single.busy_cycles, single.executed_ops,
            single.borrowed_ops,
        )

    def test_batch_empty_list(self):
        assert compact_schedule_batch([], 2, 1, 1) == []
