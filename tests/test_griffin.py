"""Tests for Griffin morphing (Table III and Sec. IV-B)."""

import pytest

from repro.config import GRIFFIN, GriffinArch, ModelCategory, sparse_a, sparse_ab, sparse_b
from repro.core.griffin import (
    compare_morph_vs_downgrade,
    downgraded_config,
    morph_fits_provisioned_hardware,
)


class TestDowngrade:
    def test_dnn_a_downgrade(self):
        # Table III: Sparse.AB(2,0,0,2,0,1) downgrades to Sparse.A(2,0,0).
        down = downgraded_config(GRIFFIN.conf_ab, ModelCategory.A)
        assert down.notation == "A(2,0,0,on)"

    def test_dnn_b_downgrade(self):
        down = downgraded_config(GRIFFIN.conf_ab, ModelCategory.B)
        assert down.notation == "B(2,0,1,on)"

    def test_rejects_non_dual(self):
        with pytest.raises(ValueError):
            downgraded_config(sparse_b(4, 0, 1), ModelCategory.B)

    def test_rejects_non_single_category(self):
        with pytest.raises(ValueError):
            downgraded_config(GRIFFIN.conf_ab, ModelCategory.AB)


class TestTableIII:
    def test_dnn_b_row(self):
        cmp = compare_morph_vs_downgrade(GRIFFIN, ModelCategory.B)
        # conf.B(8,0,1) uses the full 9-entry ABUF vs 3 for the downgrade;
        # metadata widens from 3 bits.
        assert cmp.abuf_entries_used == (3, 9)
        meta_down, meta_morph = cmp.metadata_bits
        assert meta_down == 3 and meta_morph > meta_down

    def test_dnn_a_row(self):
        cmp = compare_morph_vs_downgrade(GRIFFIN, ModelCategory.A)
        # BMUX fan-in grows from 3 to 5 (Table III).
        assert cmp.bmux_fanin_change == (3, 5)

    def test_rejects_dual_category(self):
        with pytest.raises(ValueError):
            compare_morph_vs_downgrade(GRIFFIN, ModelCategory.AB)


class TestMorphBudget:
    def test_published_griffin_fits(self):
        checks = morph_fits_provisioned_hardware(GRIFFIN)
        assert checks == {"conf.A": True, "conf.B": True}

    def test_oversized_morph_detected(self):
        greedy = GriffinArch(
            conf_ab=sparse_ab(2, 0, 0, 2, 0, 1, shuffle=True),
            conf_b=sparse_b(12, 0, 1, shuffle=True),  # needs a 13-deep ABUF
            conf_a=sparse_a(2, 1, 1, shuffle=True),
        )
        assert not morph_fits_provisioned_hardware(greedy)["conf.B"]

    def test_adder_tree_reuse(self):
        # conf.A's da3=1 tree is exactly the dual mode's db3=1 tree.
        from repro.core.overhead import overhead_of

        assert (
            overhead_of(GRIFFIN.conf_a).adder_trees
            == overhead_of(GRIFFIN.conf_ab).adder_trees
            == 2
        )
